//! minicc: the bundled C-subset compiler front/middle end.
//!
//! The GCC/C back-end's defining cost (paper Sec. IV-B) is that the
//! query engine must *generate C source text* which the compiler then has
//! to lex and parse again (~13% of compile time), before "gimplifying"
//! into its middle-end IR. This module implements exactly that: a real
//! lexer, a recursive-descent parser with full expression grammar, a
//! symbol-table semantic layer, and SSA (re)construction into the
//! workspace IR — the GIMPLE analog.

use qc_backend::BackendError;
use qc_ir::{
    CastOp, CmpOp, ExtFuncDecl, Function, FunctionBuilder, Module, Opcode, Signature, Type, Value,
};
use std::collections::HashMap;

/// Token kinds.
#[derive(Debug, Clone, PartialEq)]
enum Tok {
    Ident(String),
    Int(i64),
    Punct(&'static str),
    Kw(&'static str),
    Eof,
}

const KEYWORDS: [&str; 9] = [
    "extern", "void", "i64", "i128", "f64", "u8", "u16", "u32", "goto",
];
const KW2: [&str; 3] = ["if", "else", "return"];

struct Lexer<'s> {
    src: &'s [u8],
    pos: usize,
}

impl Lexer<'_> {
    fn next_tok(&mut self) -> Result<Tok, BackendError> {
        loop {
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_whitespace() {
                self.pos += 1;
            }
            // Comments.
            if self.src[self.pos..].starts_with(b"/*") {
                let end = self.src[self.pos..]
                    .windows(2)
                    .position(|w| w == b"*/")
                    .ok_or_else(|| BackendError::new("unterminated comment"))?;
                self.pos += end + 2;
                continue;
            }
            break;
        }
        if self.pos >= self.src.len() {
            return Ok(Tok::Eof);
        }
        let c = self.src[self.pos];
        if c.is_ascii_alphabetic() || c == b'_' {
            let start = self.pos;
            while self.pos < self.src.len()
                && (self.src[self.pos].is_ascii_alphanumeric() || self.src[self.pos] == b'_')
            {
                self.pos += 1;
            }
            let s = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
            for k in KEYWORDS.iter().chain(KW2.iter()) {
                if s == *k {
                    return Ok(Tok::Kw(k));
                }
            }
            return Ok(Tok::Ident(s.to_string()));
        }
        if c.is_ascii_digit()
            || (c == b'-' && self.src.get(self.pos + 1).is_some_and(u8::is_ascii_digit))
        {
            let start = self.pos;
            self.pos += 1;
            while self.pos < self.src.len() && self.src[self.pos].is_ascii_digit() {
                self.pos += 1;
            }
            let s = std::str::from_utf8(&self.src[start..self.pos]).expect("ascii");
            return Ok(Tok::Int(s.parse::<i64>().map_err(|_| {
                BackendError::new(format!("bad integer literal `{s}`"))
            })?));
        }
        for p in [
            "<<", ">>", "<=", ">=", "==", "!=", "(", ")", "{", "}", ";", ",", "=", "+", "-", "*",
            "/", "%", "&", "|", "^", "<", ">", "?", ":",
        ] {
            if self.src[self.pos..].starts_with(p.as_bytes()) {
                self.pos += p.len();
                return Ok(Tok::Punct(p));
            }
        }
        Err(BackendError::new(format!(
            "unexpected character `{}` at {}",
            c as char, self.pos
        )))
    }
}

fn lex(src: &str) -> Result<Vec<Tok>, BackendError> {
    let mut l = Lexer {
        src: src.as_bytes(),
        pos: 0,
    };
    let mut out = Vec::new();
    loop {
        let t = l.next_tok()?;
        let eof = t == Tok::Eof;
        out.push(t);
        if eof {
            return Ok(out);
        }
    }
}

/// Parsed expression AST.
#[derive(Debug, Clone)]
enum Expr {
    Int(i64),
    Var(String),
    Bin(&'static str, Box<Expr>, Box<Expr>),
    Cast(&'static str, Box<Expr>), // target type name
    Ternary(Box<Expr>, Box<Expr>, Box<Expr>),
    Load(&'static str, Box<Expr>),
    Call(String, Vec<Expr>),
    AddrOf(String),
}

/// Parsed statements.
#[derive(Debug, Clone)]
enum Stmt {
    Assign(String, Expr),
    Store(&'static str, Expr, Expr), // (ty, addr, value)
    CallVoid(String, Vec<Expr>),
}

#[derive(Debug, Clone)]
enum Term {
    Goto(usize),
    Branch(String, usize, usize),
    Return(Option<String>),
    Unreachable,
}

#[derive(Debug, Default, Clone)]
struct BlockData {
    stmts: Vec<Stmt>,
    term: Option<Term>,
}

struct ParsedFunc {
    name: String,
    ret: &'static str,
    params: Vec<(String, &'static str)>,
    decls: HashMap<String, &'static str>,
    blocks: Vec<BlockData>,
}

struct ParsedUnit {
    externs: HashMap<String, (usize, bool)>,
    funcs: Vec<ParsedFunc>,
}

struct Parser {
    toks: Vec<Tok>,
    pos: usize,
}

fn tyname(s: &str) -> Option<&'static str> {
    ["i64", "i128", "f64", "u8", "u16", "u32", "void"]
        .into_iter()
        .find(|t| *t == s)
}

impl Parser {
    fn peek(&self) -> &Tok {
        &self.toks[self.pos]
    }

    fn bump(&mut self) -> Tok {
        let t = self.toks[self.pos].clone();
        self.pos += 1;
        t
    }

    fn expect_punct(&mut self, p: &str) -> Result<(), BackendError> {
        match self.bump() {
            Tok::Punct(q) if q == p => Ok(()),
            other => Err(BackendError::new(format!("expected `{p}`, got {other:?}"))),
        }
    }

    fn expect_ident(&mut self) -> Result<String, BackendError> {
        match self.bump() {
            Tok::Ident(s) => Ok(s),
            other => Err(BackendError::new(format!(
                "expected identifier, got {other:?}"
            ))),
        }
    }

    fn parse_type(&mut self) -> Result<&'static str, BackendError> {
        match self.bump() {
            Tok::Kw(k) => {
                tyname(k).ok_or_else(|| BackendError::new(format!("`{k}` is not a type")))
            }
            other => Err(BackendError::new(format!("expected type, got {other:?}"))),
        }
    }

    fn parse_unit(&mut self) -> Result<ParsedUnit, BackendError> {
        let mut unit = ParsedUnit {
            externs: HashMap::new(),
            funcs: Vec::new(),
        };
        loop {
            match self.peek() {
                Tok::Eof => return Ok(unit),
                Tok::Kw("extern") => {
                    self.bump();
                    let ret = self.parse_type()?;
                    let name = self.expect_ident()?;
                    self.expect_punct("(")?;
                    let mut arity = 0usize;
                    if !matches!(self.peek(), Tok::Punct(")")) {
                        loop {
                            self.parse_type()?;
                            arity += 1;
                            if matches!(self.peek(), Tok::Punct(",")) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect_punct(")")?;
                    self.expect_punct(";")?;
                    unit.externs.insert(name, (arity, ret != "void"));
                }
                _ => {
                    let f = self.parse_func()?;
                    unit.funcs.push(f);
                }
            }
        }
    }

    fn parse_func(&mut self) -> Result<ParsedFunc, BackendError> {
        let ret = self.parse_type()?;
        let name = self.expect_ident()?;
        self.expect_punct("(")?;
        let mut params = Vec::new();
        if !matches!(self.peek(), Tok::Punct(")")) {
            loop {
                let ty = self.parse_type()?;
                let pname = self.expect_ident()?;
                params.push((pname, ty));
                if matches!(self.peek(), Tok::Punct(",")) {
                    self.bump();
                } else {
                    break;
                }
            }
        }
        self.expect_punct(")")?;
        self.expect_punct("{")?;
        // Declarations.
        let mut decls: HashMap<String, &'static str> = HashMap::new();
        while let Tok::Kw(k) = self.peek() {
            if tyname(k).is_none() {
                break;
            }
            let ty = self.parse_type()?;
            let vname = self.expect_ident()?;
            self.expect_punct(";")?;
            decls.insert(vname, ty);
        }
        for (p, t) in &params {
            decls.insert(p.clone(), t);
        }
        // Body: labels + statements into a block graph.
        let mut blocks: Vec<BlockData> = vec![BlockData::default()];
        let mut labels: HashMap<String, usize> = HashMap::new();
        let mut cur = 0usize;
        let label_of = |labels: &mut HashMap<String, usize>,
                        blocks: &mut Vec<BlockData>,
                        name: &str|
         -> usize {
            *labels.entry(name.to_string()).or_insert_with(|| {
                blocks.push(BlockData::default());
                blocks.len() - 1
            })
        };
        loop {
            match self.peek().clone() {
                Tok::Punct("}") => {
                    self.bump();
                    break;
                }
                Tok::Ident(name)
                    if matches!(self.toks.get(self.pos + 1), Some(Tok::Punct(":"))) =>
                {
                    self.bump();
                    self.bump();
                    // A label opens a new block; alias into the initial
                    // empty entry block for the very first label.
                    if cur == 0
                        && blocks[0].stmts.is_empty()
                        && blocks[0].term.is_none()
                        && labels.is_empty()
                    {
                        labels.insert(name, 0);
                        cur = 0;
                    } else {
                        let b = label_of(&mut labels, &mut blocks, &name);
                        cur = b;
                    }
                }
                _ => {
                    let (stmt, term) = self.parse_stmt(
                        &mut |n: &str, bl: &mut Vec<BlockData>| label_of(&mut labels, bl, n),
                        &mut blocks,
                    )?;
                    if let Some(s) = stmt {
                        blocks[cur].stmts.push(s);
                    }
                    if let Some(t) = term {
                        if blocks[cur].term.is_none() {
                            blocks[cur].term = Some(t);
                        }
                    }
                }
            }
        }
        Ok(ParsedFunc {
            name,
            ret,
            params,
            decls,
            blocks,
        })
    }

    /// Parses one statement; returns (plain stmt, terminator).
    #[allow(clippy::type_complexity)]
    fn parse_stmt(
        &mut self,
        label_of: &mut dyn FnMut(&str, &mut Vec<BlockData>) -> usize,
        blocks: &mut Vec<BlockData>,
    ) -> Result<(Option<Stmt>, Option<Term>), BackendError> {
        match self.peek().clone() {
            Tok::Kw("goto") => {
                self.bump();
                let l = self.expect_ident()?;
                self.expect_punct(";")?;
                Ok((None, Some(Term::Goto(label_of(&l, blocks)))))
            }
            Tok::Kw("return") => {
                self.bump();
                if matches!(self.peek(), Tok::Punct(";")) {
                    self.bump();
                    Ok((None, Some(Term::Return(None))))
                } else {
                    let v = self.expect_ident()?;
                    self.expect_punct(";")?;
                    Ok((None, Some(Term::Return(Some(v)))))
                }
            }
            Tok::Kw("if") => {
                self.bump();
                self.expect_punct("(")?;
                let c = self.expect_ident()?;
                self.expect_punct(")")?;
                // Arm blocks hold the Φ edge copies.
                let parse_arm = |p: &mut Parser,
                                 label_of: &mut dyn FnMut(&str, &mut Vec<BlockData>) -> usize,
                                 blocks: &mut Vec<BlockData>|
                 -> Result<usize, BackendError> {
                    p.expect_punct("{")?;
                    let arm = blocks.len();
                    blocks.push(BlockData::default());
                    loop {
                        if matches!(p.peek(), Tok::Punct("}")) {
                            p.bump();
                            break;
                        }
                        if matches!(p.peek(), Tok::Kw("goto")) {
                            p.bump();
                            let l = p.expect_ident()?;
                            p.expect_punct(";")?;
                            blocks[arm].term = Some(Term::Goto(label_of(&l, blocks)));
                        } else {
                            let (s, _) = p.parse_stmt(label_of, blocks)?;
                            if let Some(s) = s {
                                blocks[arm].stmts.push(s);
                            }
                        }
                    }
                    Ok(arm)
                };
                let then_arm = parse_arm(self, label_of, blocks)?;
                match self.bump() {
                    Tok::Kw("else") => {}
                    other => {
                        return Err(BackendError::new(format!("expected else, got {other:?}")))
                    }
                }
                let else_arm = parse_arm(self, label_of, blocks)?;
                Ok((None, Some(Term::Branch(c, then_arm, else_arm))))
            }
            Tok::Punct("*") => {
                // *(ty*)(addr) = value;
                self.bump();
                self.expect_punct("(")?;
                let ty = self.parse_type()?;
                self.expect_punct("*")?;
                self.expect_punct(")")?;
                self.expect_punct("(")?;
                let addr = self.parse_expr()?;
                self.expect_punct(")")?;
                self.expect_punct("=")?;
                let value = self.parse_expr()?;
                self.expect_punct(";")?;
                Ok((Some(Stmt::Store(ty, addr, value)), None))
            }
            Tok::Ident(name) => {
                self.bump();
                match self.bump() {
                    Tok::Punct("=") => {
                        let e = self.parse_expr()?;
                        self.expect_punct(";")?;
                        if name == "__unreachable_marker" {
                            return Ok((None, Some(Term::Unreachable)));
                        }
                        Ok((Some(Stmt::Assign(name, e)), None))
                    }
                    Tok::Punct("(") => {
                        if name == "__unreachable" {
                            self.expect_punct(")")?;
                            self.expect_punct(";")?;
                            return Ok((None, Some(Term::Unreachable)));
                        }
                        let mut args = Vec::new();
                        if !matches!(self.peek(), Tok::Punct(")")) {
                            loop {
                                args.push(self.parse_expr()?);
                                if matches!(self.peek(), Tok::Punct(",")) {
                                    self.bump();
                                } else {
                                    break;
                                }
                            }
                        }
                        self.expect_punct(")")?;
                        self.expect_punct(";")?;
                        Ok((Some(Stmt::CallVoid(name, args)), None))
                    }
                    other => Err(BackendError::new(format!(
                        "expected `=` or `(` after `{name}`, got {other:?}"
                    ))),
                }
            }
            other => Err(BackendError::new(format!("unexpected token {other:?}"))),
        }
    }

    /// Full expression grammar with precedence climbing.
    fn parse_expr(&mut self) -> Result<Expr, BackendError> {
        let lhs = self.parse_bin(0)?;
        if matches!(self.peek(), Tok::Punct("?")) {
            self.bump();
            let t = self.parse_expr()?;
            self.expect_punct(":")?;
            let f = self.parse_expr()?;
            return Ok(Expr::Ternary(Box::new(lhs), Box::new(t), Box::new(f)));
        }
        Ok(lhs)
    }

    fn parse_bin(&mut self, min_prec: u8) -> Result<Expr, BackendError> {
        let mut lhs = self.parse_unary()?;
        while let Tok::Punct(p) = self.peek() {
            let (op, prec): (&'static str, u8) = match *p {
                "*" | "/" | "%" => (p, 5),
                "+" | "-" => (p, 4),
                "<<" | ">>" => (p, 3),
                "<" | "<=" | ">" | ">=" | "==" | "!=" => (p, 2),
                "&" | "^" | "|" => (p, 1),
                _ => break,
            };
            if prec < min_prec {
                break;
            }
            self.bump();
            let rhs = self.parse_bin(prec + 1)?;
            lhs = Expr::Bin(op, Box::new(lhs), Box::new(rhs));
        }
        Ok(lhs)
    }

    fn parse_unary(&mut self) -> Result<Expr, BackendError> {
        match self.peek().clone() {
            Tok::Int(v) => {
                self.bump();
                Ok(Expr::Int(v))
            }
            Tok::Punct("&") => {
                self.bump();
                let name = self.expect_ident()?;
                Ok(Expr::AddrOf(name))
            }
            Tok::Punct("*") => {
                // *(ty*)(expr)
                self.bump();
                self.expect_punct("(")?;
                let ty = self.parse_type()?;
                self.expect_punct("*")?;
                self.expect_punct(")")?;
                self.expect_punct("(")?;
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(Expr::Load(ty, Box::new(e)))
            }
            Tok::Punct("(") => {
                // Cast or parenthesized expression.
                self.bump();
                if let Tok::Kw(k) = self.peek().clone() {
                    if let Some(t) = tyname(k) {
                        self.bump();
                        self.expect_punct(")")?;
                        let inner = self.parse_unary()?;
                        return Ok(Expr::Cast(t, Box::new(inner)));
                    }
                }
                let e = self.parse_expr()?;
                self.expect_punct(")")?;
                Ok(e)
            }
            Tok::Ident(name) => {
                self.bump();
                if matches!(self.peek(), Tok::Punct("(")) {
                    self.bump();
                    let mut args = Vec::new();
                    if !matches!(self.peek(), Tok::Punct(")")) {
                        loop {
                            args.push(self.parse_expr()?);
                            if matches!(self.peek(), Tok::Punct(",")) {
                                self.bump();
                            } else {
                                break;
                            }
                        }
                    }
                    self.expect_punct(")")?;
                    Ok(Expr::Call(name, args))
                } else {
                    Ok(Expr::Var(name))
                }
            }
            other => Err(BackendError::new(format!(
                "unexpected token {other:?} in expr"
            ))),
        }
    }
}

/// Compiles C source text into an IR module ("cc1": lex + parse + sema +
/// gimplify).
///
/// # Errors
/// Returns [`BackendError`] on any lexical, syntactic, or semantic error.
pub fn compile_c(src: &str, trace: &qc_timing::TimeTrace) -> Result<Module, BackendError> {
    let unit = {
        let _t = trace.scope("cc1_parse");
        let toks = lex(src)?;
        let mut parser = Parser { toks, pos: 0 };
        parser.parse_unit()?
    };
    let _t = trace.scope("cc1_gimplify");
    let mut module = Module::new("cgen");
    let fn_index: HashMap<String, usize> = unit
        .funcs
        .iter()
        .enumerate()
        .map(|(i, f)| (f.name.clone(), i))
        .collect();
    for f in &unit.funcs {
        module.push_function(gimplify(f, &unit.externs, &fn_index)?);
    }
    Ok(module)
}

fn qty(t: &str) -> Type {
    match t {
        "i128" => Type::I128,
        "f64" => Type::F64,
        _ => Type::I64,
    }
}

struct Gim<'a> {
    b: FunctionBuilder,
    decls: &'a HashMap<String, &'static str>,
    externs: &'a HashMap<String, (usize, bool)>,
    fn_index: &'a HashMap<String, usize>,
    vars: HashMap<String, Value>,
}

fn gimplify(
    f: &ParsedFunc,
    externs: &HashMap<String, (usize, bool)>,
    fn_index: &HashMap<String, usize>,
) -> Result<Function, BackendError> {
    let sig = Signature::new(
        f.params.iter().map(|(_, t)| qty(t)).collect(),
        if f.ret == "void" {
            Type::Void
        } else {
            qty(f.ret)
        },
    );
    let nb = f.blocks.len();
    // Per-block variable liveness (over C variable names).
    let var_ids: HashMap<&str, usize> = f
        .decls
        .keys()
        .enumerate()
        .map(|(i, k)| (k.as_str(), i))
        .collect();
    let nv = var_ids.len();
    let words = nv.div_ceil(64).max(1);
    let mut uses = vec![vec![0u64; words]; nb];
    let mut defs = vec![vec![0u64; words]; nb];
    let succs: Vec<Vec<usize>> = f
        .blocks
        .iter()
        .map(|b| match &b.term {
            Some(Term::Goto(d)) => vec![*d],
            Some(Term::Branch(_, a, b)) => vec![*a, *b],
            _ => Vec::new(),
        })
        .collect();
    let mut preds: Vec<Vec<usize>> = vec![Vec::new(); nb];
    for (b, ss) in succs.iter().enumerate() {
        for &s in ss {
            preds[s].push(b);
        }
    }
    {
        let mark_use = |set: &mut Vec<u64>, name: &str| {
            if let Some(&i) = var_ids.get(name) {
                set[i / 64] |= 1 << (i % 64);
            }
        };
        for (bi, b) in f.blocks.iter().enumerate() {
            for s in &b.stmts {
                match s {
                    Stmt::Assign(name, e) => {
                        expr_vars(e, &mut |n| {
                            if defs[bi][var_ids[n] / 64] & (1 << (var_ids[n] % 64)) == 0 {
                                mark_use(&mut uses[bi], n);
                            }
                        });
                        if let Some(&i) = var_ids.get(name.as_str()) {
                            defs[bi][i / 64] |= 1 << (i % 64);
                        }
                    }
                    Stmt::Store(_, a, v) => {
                        for e in [a, v] {
                            expr_vars(e, &mut |n| {
                                if defs[bi][var_ids[n] / 64] & (1 << (var_ids[n] % 64)) == 0 {
                                    mark_use(&mut uses[bi], n);
                                }
                            });
                        }
                    }
                    Stmt::CallVoid(_, args) => {
                        for e in args {
                            expr_vars(e, &mut |n| {
                                if defs[bi][var_ids[n] / 64] & (1 << (var_ids[n] % 64)) == 0 {
                                    mark_use(&mut uses[bi], n);
                                }
                            });
                        }
                    }
                }
            }
            let term_use = match &b.term {
                Some(Term::Branch(c, _, _)) => Some(c.clone()),
                Some(Term::Return(Some(v))) => Some(v.clone()),
                _ => None,
            };
            if let Some(n) = term_use {
                if let Some(&i) = var_ids.get(n.as_str()) {
                    if defs[bi][i / 64] & (1 << (i % 64)) == 0 {
                        mark_use(&mut uses[bi], &n);
                    }
                }
            }
        }
    }
    let mut live_in = vec![vec![0u64; words]; nb];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..nb).rev() {
            let mut out = vec![0u64; words];
            for &s in &succs[b] {
                for (w, &x) in out.iter_mut().zip(&live_in[s]) {
                    *w |= x;
                }
            }
            let mut inn = out.clone();
            for w in 0..words {
                inn[w] = (inn[w] & !defs[b][w]) | uses[b][w];
            }
            if inn != live_in[b] {
                live_in[b] = inn;
                changed = true;
            }
        }
    }

    // Emit QIR with conservative Φs at join blocks.
    let mut g = Gim {
        b: FunctionBuilder::new(&f.name, sig),
        decls: &f.decls,
        externs,
        fn_index,
        vars: HashMap::new(),
    };
    for _ in 1..nb {
        g.b.create_block();
    }
    let id_to_name: HashMap<usize, &str> = var_ids.iter().map(|(n, i)| (*i, *n)).collect();
    let mut end_maps: Vec<HashMap<String, Value>> = vec![HashMap::new(); nb];
    let mut phi_fixups: Vec<(usize, String, Value)> = Vec::new(); // (block, var, phi)
                                                                  // Emission order: a single-predecessor block needs its predecessor's
                                                                  // variable map first (label ids are assigned by first reference, so
                                                                  // plain index order is not sufficient).
    let order = {
        let mut emitted = vec![false; nb];
        let mut order = Vec::with_capacity(nb);
        let mut progress = true;
        while progress {
            progress = false;
            for bi in 0..nb {
                if emitted[bi] {
                    continue;
                }
                let ready = bi == 0 || preds[bi].len() != 1 || emitted[preds[bi][0]];
                if ready {
                    emitted[bi] = true;
                    order.push(bi);
                    progress = true;
                }
            }
        }
        if order.len() != nb {
            return Err(BackendError::new("unschedulable block graph"));
        }
        order
    };
    for bi in order {
        let block = qc_ir::Block::new(bi);
        g.b.switch_to(block);
        g.vars.clear();
        if bi == 0 {
            for (i, (name, _)) in f.params.iter().enumerate() {
                let p = g.b.param(i);
                g.vars.insert(name.clone(), p);
            }
        } else if preds[bi].len() == 1 {
            g.vars = end_maps[preds[bi][0]].clone();
        } else if preds[bi].len() >= 2 {
            for (w, &word) in live_in[bi].iter().enumerate().take(words) {
                let mut bits = word;
                while bits != 0 {
                    let i = w * 64 + bits.trailing_zeros() as usize;
                    bits &= bits - 1;
                    let name = id_to_name[&i];
                    let ty = qty(f.decls[name]);
                    let phi = g.b.phi(ty, Vec::new());
                    g.vars.insert(name.to_string(), phi);
                    phi_fixups.push((bi, name.to_string(), phi));
                }
            }
        }
        if preds[bi].is_empty() && bi != 0 {
            // Unreachable block.
            g.b.unreachable();
            end_maps[bi] = g.vars.clone();
            continue;
        }
        let data = f.blocks[bi].clone();
        for s in &data.stmts {
            g.stmt(s)?;
        }
        match &data.term {
            Some(Term::Goto(d)) => g.b.jump(qc_ir::Block::new(*d)),
            Some(Term::Branch(c, t, e)) => {
                let cv = g.read(c)?;
                let zero = g.b.iconst(Type::I64, 0);
                let cond = g.b.icmp(CmpOp::Ne, Type::I64, cv, zero);
                g.b.branch(cond, qc_ir::Block::new(*t), qc_ir::Block::new(*e));
            }
            Some(Term::Return(v)) => {
                let rv = match v {
                    Some(name) => Some(g.read(name)?),
                    None => None,
                };
                g.b.ret(rv);
            }
            Some(Term::Unreachable) | None => g.b.unreachable(),
        }
        end_maps[bi] = g.vars.clone();
    }
    for (bi, name, phi) in phi_fixups {
        for &p in &preds[bi] {
            let v = end_maps[p].get(&name).copied().ok_or_else(|| {
                BackendError::new(format!("variable `{name}` undefined on a path"))
            })?;
            g.b.phi_add_incoming(phi, qc_ir::Block::new(p), v);
        }
    }
    Ok(g.b.finish())
}

fn expr_vars(e: &Expr, f: &mut impl FnMut(&str)) {
    match e {
        Expr::Var(n) => f(n),
        Expr::Int(_) | Expr::AddrOf(_) => {}
        Expr::Bin(_, a, b) => {
            expr_vars(a, f);
            expr_vars(b, f);
        }
        Expr::Cast(_, a) | Expr::Load(_, a) => expr_vars(a, f),
        Expr::Ternary(c, a, b) => {
            expr_vars(c, f);
            expr_vars(a, f);
            expr_vars(b, f);
        }
        Expr::Call(_, args) => args.iter().for_each(|a| expr_vars(a, f)),
    }
}

impl Gim<'_> {
    fn read(&mut self, name: &str) -> Result<Value, BackendError> {
        self.vars
            .get(name)
            .copied()
            .ok_or_else(|| BackendError::new(format!("use of undefined variable `{name}`")))
    }

    fn stmt(&mut self, s: &Stmt) -> Result<(), BackendError> {
        match s {
            Stmt::Assign(name, e) => {
                let want = qty(self
                    .decls
                    .get(name)
                    .ok_or_else(|| BackendError::new(format!("undeclared `{name}`")))?);
                let v = self.expr(e)?;
                let v = self.coerce(v, want)?;
                self.vars.insert(name.clone(), v);
                Ok(())
            }
            Stmt::Store(ty, addr, value) => {
                let (sty, _) = load_ty(ty);
                let a = self.expr(addr)?;
                let v = self.expr(value)?;
                let v = self.coerce_store(v, sty)?;
                self.b.store(sty, a, v, 0);
                Ok(())
            }
            Stmt::CallVoid(name, args) => {
                self.call(name, args, false)?;
                Ok(())
            }
        }
    }

    /// Narrow Bool values to the expected storage type for assignments.
    fn coerce(&mut self, v: Value, want: Type) -> Result<Value, BackendError> {
        let got = self.b.func().value_type(v);
        if got == want {
            return Ok(v);
        }
        match (got, want) {
            (Type::Bool | Type::I8 | Type::I16 | Type::I32, Type::I64) => {
                Ok(self.b.zext(Type::I64, v))
            }
            (Type::Ptr, Type::I64) | (Type::I64, Type::Ptr) => Ok(v), // same register class
            other => Err(BackendError::new(format!(
                "type mismatch in assignment: {other:?}"
            ))),
        }
    }

    fn coerce_store(&mut self, v: Value, sty: Type) -> Result<Value, BackendError> {
        let got = self.b.func().value_type(v);
        if got == sty || (sty.is_int() && got == Type::I64) || sty == Type::Ptr {
            Ok(v)
        } else {
            Err(BackendError::new(format!(
                "store type mismatch {got} vs {sty}"
            )))
        }
    }

    fn call(
        &mut self,
        name: &str,
        args: &[Expr],
        want_ret: bool,
    ) -> Result<Option<Value>, BackendError> {
        let &(arity, has_ret) = self
            .externs
            .get(name)
            .ok_or_else(|| BackendError::new(format!("call to undeclared `{name}`")))?;
        if arity != args.len() {
            return Err(BackendError::new(format!(
                "arity mismatch calling `{name}`: {} vs {arity}",
                args.len()
            )));
        }
        let _ = want_ret;
        let decl = ExtFuncDecl {
            name: name.to_string(),
            sig: Signature::new(
                vec![Type::I64; arity],
                if has_ret { Type::I64 } else { Type::Void },
            ),
        };
        let id = self.b.declare_ext_func(decl);
        let mut vals = Vec::new();
        for a in args {
            let v = self.expr(a)?;
            let v = self.coerce(v, Type::I64)?;
            vals.push(v);
        }
        Ok(self.b.call(id, vals))
    }

    #[allow(clippy::too_many_lines)]
    fn expr(&mut self, e: &Expr) -> Result<Value, BackendError> {
        match e {
            Expr::Int(v) => Ok(self.b.iconst(Type::I64, *v as i128)),
            Expr::Var(n) => self.read(n),
            Expr::AddrOf(name) => {
                let idx = name
                    .strip_prefix("__module_fn_")
                    .and_then(|s| s.parse::<usize>().ok())
                    .ok_or_else(|| {
                        BackendError::new(format!("address of unknown function `{name}`"))
                    })?;
                let _ = &self.fn_index;
                Ok(self.b.func_addr(qc_ir::FuncId::new(idx)))
            }
            Expr::Load(ty, addr) => {
                let (lty, _) = load_ty(ty);
                let a = self.expr(addr)?;
                Ok(self.b.load(lty, a, 0))
            }
            Expr::Cast(to, inner) => {
                let v = self.expr(inner)?;
                let from = self.b.func().value_type(v);
                match (*to, from) {
                    ("i128", Type::I64) => Ok(self.b.sext(Type::I128, v)),
                    ("i128", Type::I128) => Ok(v),
                    ("i64", Type::I128) => Ok(self.b.trunc(Type::I64, v)),
                    ("i64", Type::Bool) => Ok(self.b.zext(Type::I64, v)),
                    ("i64", Type::I64 | Type::Ptr) => Ok(v),
                    ("f64", Type::I64) => Ok(self.b.cast(CastOp::SiToF, Type::F64, v)),
                    ("f64", Type::F64) => Ok(v),
                    other => Err(BackendError::new(format!("unsupported cast {other:?}"))),
                }
            }
            Expr::Ternary(c, a, b) => {
                let cv = self.expr(c)?;
                let cond = if self.b.func().value_type(cv) == Type::Bool {
                    cv
                } else {
                    let zero = self.b.iconst(Type::I64, 0);
                    self.b.icmp(CmpOp::Ne, Type::I64, cv, zero)
                };
                let av = self.expr(a)?;
                let bv = self.expr(b)?;
                let ty = self.b.func().value_type(av);
                Ok(self.b.select(ty, cond, av, bv))
            }
            Expr::Call(name, args) => self.builtin_or_call(name, args),
            Expr::Bin(op, a, b) => {
                let av = self.expr(a)?;
                let bv = self.expr(b)?;
                let ty = self.b.func().value_type(av);
                let cmp = |g: &mut Self, pred: CmpOp, av: Value, bv: Value| {
                    if ty == Type::F64 {
                        g.b.fcmp(pred, av, bv)
                    } else {
                        g.b.icmp(pred, ty, av, bv)
                    }
                };
                Ok(match *op {
                    "+" if ty == Type::F64 => self.b.binary(Opcode::FAdd, ty, av, bv),
                    "-" if ty == Type::F64 => self.b.binary(Opcode::FSub, ty, av, bv),
                    "*" if ty == Type::F64 => self.b.binary(Opcode::FMul, ty, av, bv),
                    "/" if ty == Type::F64 => self.b.binary(Opcode::FDiv, ty, av, bv),
                    "+" => self.b.binary(Opcode::Add, ty, av, bv),
                    "-" => self.b.binary(Opcode::Sub, ty, av, bv),
                    "*" => self.b.binary(Opcode::Mul, ty, av, bv),
                    "/" => self.b.binary(Opcode::SDiv, ty, av, bv),
                    "%" => self.b.binary(Opcode::SRem, ty, av, bv),
                    "&" => self.b.binary(Opcode::And, ty, av, bv),
                    "|" => self.b.binary(Opcode::Or, ty, av, bv),
                    "^" => self.b.binary(Opcode::Xor, ty, av, bv),
                    "<<" => self.b.binary(Opcode::Shl, ty, av, bv),
                    ">>" => self.b.binary(Opcode::AShr, ty, av, bv),
                    "<" => cmp(self, CmpOp::SLt, av, bv),
                    "<=" => cmp(self, CmpOp::SLe, av, bv),
                    ">" => cmp(self, CmpOp::SGt, av, bv),
                    ">=" => cmp(self, CmpOp::SGe, av, bv),
                    "==" => cmp(self, CmpOp::Eq, av, bv),
                    "!=" => cmp(self, CmpOp::Ne, av, bv),
                    other => return Err(BackendError::new(format!("unknown operator `{other}`"))),
                })
            }
        }
    }

    fn builtin_or_call(&mut self, name: &str, args: &[Expr]) -> Result<Value, BackendError> {
        let bin =
            |g: &mut Self, op: Opcode, ty: Type, args: &[Expr]| -> Result<Value, BackendError> {
                let a = g.expr(&args[0])?;
                let b = g.expr(&args[1])?;
                Ok(g.b.binary(op, ty, a, b))
            };
        match name {
            "__i128" => {
                let (Expr::Int(lo), Expr::Int(hi)) = (&args[0], &args[1]) else {
                    return Err(BackendError::new("__i128 requires literals"));
                };
                let v = ((*hi as i128) << 64) | (*lo as u64 as i128);
                Ok(self.b.iconst(Type::I128, v))
            }
            "__f64bits" => {
                let Expr::Int(bits) = &args[0] else {
                    return Err(BackendError::new("__f64bits requires a literal"));
                };
                Ok(self.b.fconst(f64::from_bits(*bits as u64)))
            }
            "__saddtrap_i64" => bin(self, Opcode::SAddTrap, Type::I64, args),
            "__ssubtrap_i64" => bin(self, Opcode::SSubTrap, Type::I64, args),
            "__smultrap_i64" => bin(self, Opcode::SMulTrap, Type::I64, args),
            "__saddtrap_i128" => bin(self, Opcode::SAddTrap, Type::I128, args),
            "__ssubtrap_i128" => bin(self, Opcode::SSubTrap, Type::I128, args),
            "__smultrap_i128" => bin(self, Opcode::SMulTrap, Type::I128, args),
            "__saddovf" => bin(self, Opcode::SAddOvf, Type::I64, args),
            "__ssubovf" => bin(self, Opcode::SSubOvf, Type::I64, args),
            "__smulovf" => bin(self, Opcode::SMulOvf, Type::I64, args),
            "__udiv" => bin(self, Opcode::UDiv, Type::I64, args),
            "__urem" => bin(self, Opcode::URem, Type::I64, args),
            "__lshr" => bin(self, Opcode::LShr, Type::I64, args),
            "__rotr" => bin(self, Opcode::RotR, Type::I64, args),
            "__crc32" => {
                let a = self.expr(&args[0])?;
                let b = self.expr(&args[1])?;
                Ok(self.b.crc32(a, b))
            }
            "__lmulfold" => {
                let a = self.expr(&args[0])?;
                let b = self.expr(&args[1])?;
                Ok(self.b.long_mul_fold(a, b))
            }
            "__ult" => {
                let a = self.expr(&args[0])?;
                let b = self.expr(&args[1])?;
                Ok(self.b.icmp(CmpOp::ULt, Type::I64, a, b))
            }
            "__ule" => {
                let a = self.expr(&args[0])?;
                let b = self.expr(&args[1])?;
                Ok(self.b.icmp(CmpOp::ULe, Type::I64, a, b))
            }
            "__ftosi" => {
                let a = self.expr(&args[0])?;
                Ok(self.b.cast(CastOp::FToSi, Type::I64, a))
            }
            "__sext8" | "__sext16" | "__sext32" => {
                let bits: u32 = name[6..].parse().expect("suffix");
                let ty = match bits {
                    8 => Type::I8,
                    16 => Type::I16,
                    _ => Type::I32,
                };
                let a = self.expr(&args[0])?;
                let t = self.b.trunc(ty, a);
                Ok(self.b.sext(Type::I64, t))
            }
            "__mask8" | "__mask16" | "__mask32" => {
                let bits: u32 = name[6..].parse().expect("suffix");
                let mask = ((1u64 << bits) - 1) as i128;
                let a = self.expr(&args[0])?;
                let m = self.b.iconst(Type::I64, mask);
                Ok(self.b.binary(Opcode::And, Type::I64, a, m))
            }
            "__scmp8" | "__scmp16" | "__scmp32" => {
                let a = self.expr(&args[0])?;
                let b = self.expr(&args[1])?;
                let Expr::Int(code) = &args[2] else {
                    return Err(BackendError::new("__scmp requires a literal code"));
                };
                let bits: u32 = name[6..].parse().expect("suffix");
                let ty = match bits {
                    8 => Type::I8,
                    16 => Type::I16,
                    _ => Type::I32,
                };
                let ta = self.b.trunc(ty, a);
                let sa = self.b.sext(Type::I64, ta);
                let tb = self.b.trunc(ty, b);
                let sb = self.b.sext(Type::I64, tb);
                let pred = match code {
                    0 => CmpOp::SLt,
                    1 => CmpOp::SLe,
                    2 => CmpOp::SGt,
                    _ => CmpOp::SGe,
                };
                Ok(self.b.icmp(pred, Type::I64, sa, sb))
            }
            "__unsupported_stackaddr" => {
                Err(BackendError::new("cgen: stack slots are unsupported"))
            }
            _ => self
                .call(name, args, true)?
                .ok_or_else(|| BackendError::new(format!("`{name}` returns void"))),
        }
    }
}

fn load_ty(t: &str) -> (Type, bool) {
    match t {
        "u8" => (Type::I8, false),
        "u16" => (Type::I16, false),
        "u32" => (Type::I32, false),
        "i128" => (Type::I128, false),
        "f64" => (Type::F64, false),
        _ => (Type::I64, false),
    }
}
