//! Instruction selection: FastISel, SelectionDAG, and GlobalISel
//! (paper Sec. V-B3).

use qc_backend::mir::{CallTarget, MInst, RegClass, VCode, VReg};
use qc_backend::BackendError;
use qc_ir::{CastOp, CmpOp, Function, InstData, Opcode, Type, Value};
use qc_target::{AluOp, Cond, FaluOp, Width};
use std::collections::HashMap;

/// Which selector pipeline to run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Selector {
    /// FastISel with per-block SelectionDAG fallback (cheap mode).
    Fast,
    /// SelectionDAG for everything (optimized mode).
    Dag,
    /// GlobalISel without optimization combiners (TA64).
    GlobalCheap,
    /// GlobalISel with combiners (TA64).
    GlobalOpt,
}

/// ISel options relevant to the paper's ablations.
#[derive(Debug, Clone, Copy)]
pub struct IselOptions {
    /// Small-PIC code model (large forces FastISel call fallbacks).
    pub small_pic: bool,
    /// FastISel support for the CRC-32 intrinsic (Sec. V-A2, merged
    /// upstream by the authors).
    pub fastisel_crc32: bool,
}

/// Per-function selection statistics.
#[derive(Debug, Default, Clone)]
pub struct IselStats {
    /// FastISel → SelectionDAG fallbacks by cause.
    pub fallback_calls: u64,
    /// Fallbacks caused by 128-bit values.
    pub fallback_i128: u64,
    /// Fallbacks caused by two-register struct values.
    pub fallback_struct: u64,
    /// Fallbacks caused by unsupported intrinsics.
    pub fallback_intrinsic: u64,
    /// DAG nodes constructed.
    pub dag_nodes: u64,
    /// Known-bits queries performed during DAG combining.
    pub known_bits_queries: u64,
    /// GlobalISel generic instructions created.
    pub gmir_insts: u64,
}

/// Selection result.
pub struct IselOutput {
    /// The selected machine code.
    pub vcode: VCode,
    /// Statistics.
    pub stats: IselStats,
}

struct Ctx<'f> {
    func: &'f Function,
    vcode: VCode,
    val_reg: Vec<(VReg, VReg)>, // (lo, hi=VNONE for one-reg)
    cur: Vec<MInst>,
    stats: IselStats,
    fold: bool,
    opts: IselOptions,
}

const VNONE: VReg = u32::MAX;

fn width_of(ty: Type) -> Width {
    match ty {
        Type::Bool | Type::I8 => Width::W8,
        Type::I16 => Width::W16,
        Type::I32 => Width::W32,
        _ => Width::W64,
    }
}

fn cond_of(op: CmpOp) -> Cond {
    match op {
        CmpOp::Eq => Cond::Eq,
        CmpOp::Ne => Cond::Ne,
        CmpOp::SLt => Cond::Lt,
        CmpOp::SLe => Cond::Le,
        CmpOp::SGt => Cond::Gt,
        CmpOp::SGe => Cond::Ge,
        CmpOp::ULt => Cond::B,
        CmpOp::ULe => Cond::Be,
        CmpOp::UGt => Cond::A,
        CmpOp::UGe => Cond::Ae,
    }
}

fn fcond_of(op: CmpOp) -> Cond {
    match op {
        CmpOp::Eq => Cond::Eq,
        CmpOp::Ne => Cond::Ne,
        CmpOp::SLt | CmpOp::ULt => Cond::B,
        CmpOp::SLe | CmpOp::ULe => Cond::Be,
        CmpOp::SGt | CmpOp::UGt => Cond::A,
        CmpOp::SGe | CmpOp::UGe => Cond::Ae,
    }
}

/// Runs instruction selection over one LIR function.
///
/// # Errors
/// Returns [`BackendError`] for unsupported constructs.
pub fn select(
    func: &Function,
    selector: Selector,
    opts: IselOptions,
) -> Result<IselOutput, BackendError> {
    let mut classes = Vec::new();
    let mut val_reg = Vec::with_capacity(func.num_values());
    for i in 0..func.num_values() {
        let ty = func.value_type(Value::new(i));
        match ty {
            Type::F64 => {
                classes.push(RegClass::Float);
                val_reg.push(((classes.len() - 1) as VReg, VNONE));
            }
            t if t.reg_count() == 2 => {
                classes.push(RegClass::Int);
                classes.push(RegClass::Int);
                val_reg.push(((classes.len() - 2) as VReg, (classes.len() - 1) as VReg));
            }
            _ => {
                classes.push(RegClass::Int);
                val_reg.push(((classes.len() - 1) as VReg, VNONE));
            }
        }
    }
    let mut params = Vec::new();
    for &p in func.params() {
        let (lo, hi) = val_reg[p.index()];
        params.push(lo);
        if hi != VNONE {
            params.push(hi);
        }
    }
    let nb = func.num_blocks();
    let mut ctx = Ctx {
        func,
        vcode: VCode {
            name: func.name.clone(),
            blocks: Vec::new(),
            succs: (0..nb)
                .map(|b| {
                    let block = qc_ir::Block::new(b);
                    if func.block_insts(block).is_empty() {
                        Vec::new()
                    } else {
                        func.inst(func.terminator(block))
                            .successors()
                            .iter()
                            .map(|s| s.index())
                            .collect()
                    }
                })
                .collect(),
            classes,
            params,
            fusions: (0, 0),
        },
        val_reg,
        cur: Vec::new(),
        stats: IselStats::default(),
        fold: matches!(selector, Selector::Dag | Selector::GlobalOpt),
        opts,
    };

    // GlobalISel runs its whole-function generic passes first: the
    // IRTranslator builds gMIR (≈ one full lowering pass), the Legalizer
    // rewrites it wholesale, RegBankSelect walks every operand, and the
    // optimized mode adds a combiner sweep. Each pass iterates over and
    // copies the entire IR — the multi-pass cost of paper Sec. V-B3c.
    if matches!(selector, Selector::GlobalCheap | Selector::GlobalOpt) {
        // IRTranslator: a complete gMIR construction, then discarded in
        // favor of the instruction-selected MIR below.
        let mut gmir: Vec<MInst> = Vec::new();
        for b in 0..nb {
            let block = qc_ir::Block::new(b);
            for &inst in func.block_insts(block) {
                ctx.cur.clear();
                emit_lir_inst(&mut ctx, block, inst)?;
                gmir.append(&mut ctx.cur);
            }
        }
        ctx.stats.gmir_insts += gmir.len() as u64;
        // Legalizer: rewrite into a fresh buffer.
        let legalized: Vec<MInst> = gmir.to_vec();
        // Combiner (optimized only): pattern scan over the whole IR.
        if selector == Selector::GlobalOpt {
            let mut hits = 0u64;
            for inst in &legalized {
                if let MInst::AluImm { imm: 0, .. } = inst {
                    hits += 1;
                }
            }
            std::hint::black_box(hits);
        }
        // RegBankSelect: classify every operand of every instruction.
        let mut banks = 0u64;
        for inst in &legalized {
            inst.for_each_use(|v| banks += (v & 1) as u64);
            inst.for_each_def(|v| banks += (v & 1) as u64);
        }
        std::hint::black_box(banks);
        global_isel_passes(&mut ctx, selector);
    }

    for b in 0..nb {
        let block = qc_ir::Block::new(b);
        ctx.cur = Vec::new();
        let insts: Vec<qc_ir::Inst> = func.block_insts(block).to_vec();
        match selector {
            Selector::Fast => {
                let mut i = 0;
                while i < insts.len() {
                    match fastisel_supported(&ctx, insts[i]) {
                        Support::Yes => {
                            emit_lir_inst(&mut ctx, block, insts[i])?;
                            i += 1;
                        }
                        Support::No(cause) => {
                            // Fall back to SelectionDAG for the remainder
                            // of the block.
                            match cause {
                                Cause::Call => ctx.stats.fallback_calls += 1,
                                Cause::I128 => ctx.stats.fallback_i128 += 1,
                                Cause::Struct => ctx.stats.fallback_struct += 1,
                                Cause::Intrinsic => ctx.stats.fallback_intrinsic += 1,
                            }
                            let rest = &insts[i..];
                            selection_dag(&mut ctx, block, rest)?;
                            i = insts.len();
                        }
                    }
                }
            }
            Selector::Dag => selection_dag(&mut ctx, block, &insts)?,
            Selector::GlobalCheap | Selector::GlobalOpt => {
                // InstructionSelect: gMIR → MIR, in place, block by block.
                for &inst in &insts {
                    emit_lir_inst(&mut ctx, block, inst)?;
                }
            }
        }
        let done = std::mem::take(&mut ctx.cur);
        ctx.vcode.blocks.push(done);
    }

    // PHIElimination: parallel moves at the end of predecessor blocks.
    phi_elimination(&mut ctx);

    Ok(IselOutput {
        vcode: ctx.vcode,
        stats: ctx.stats,
    })
}

enum Support {
    Yes,
    No(Cause),
}

enum Cause {
    Call,
    I128,
    Struct,
    Intrinsic,
}

fn fastisel_supported(ctx: &Ctx, inst: qc_ir::Inst) -> Support {
    let func = ctx.func;
    let data = func.inst(inst);
    // Two-register values are unsupported: distinguish structs (strings)
    // from 128-bit integers for the statistics.
    let mut bad: Option<Cause> = None;
    let mut check = |ty: Type| {
        if ty.reg_count() == 2 && bad.is_none() {
            bad = Some(if ty == Type::String {
                Cause::Struct
            } else {
                Cause::I128
            });
        }
    };
    data.for_each_arg(|v| check(func.value_type(v)));
    if let Some(r) = func.inst_result(inst) {
        check(func.value_type(r));
    }
    // Calls: fine under Small-PIC with register arguments; the large code
    // model forces a SelectionDAG fallback for every call (Sec. V-A2).
    if let InstData::Call { args, .. } = data {
        if !ctx.opts.small_pic {
            return Support::No(Cause::Call);
        }
        let slots: usize = args
            .iter()
            .map(|&a| func.value_type(a).reg_count() as usize)
            .sum();
        if slots > 6 {
            return Support::No(Cause::Call);
        }
        if bad.is_some() {
            // Unsupported data types in a call are counted as call
            // fallbacks in the paper.
            return Support::No(Cause::Call);
        }
    }
    if matches!(data, InstData::Crc32 { .. }) && !ctx.opts.fastisel_crc32 {
        return Support::No(Cause::Intrinsic);
    }
    match bad {
        Some(cause) => Support::No(cause),
        None => Support::Yes,
    }
}

/// SelectionDAG for (the remainder of) one block: build the graph-based
/// IR, run combining with recursive known-bits queries, legalize, select,
/// and linearize. The node graph drives the *cost*; the selected output is
/// produced by the shared pattern emitter with folding enabled.
fn selection_dag(
    ctx: &mut Ctx,
    block: qc_ir::Block,
    insts: &[qc_ir::Inst],
) -> Result<(), BackendError> {
    // Build: one node per instruction plus leaves for constants and
    // out-of-block values.
    #[derive(Clone)]
    struct Node {
        op: u16,
        args: Vec<u32>,
        wide: bool,
    }
    let mut nodes: Vec<Node> = Vec::new();
    let mut value_node: HashMap<Value, u32> = HashMap::new();
    for &inst in insts {
        let data = ctx.func.inst(inst);
        let mut args = Vec::new();
        data.for_each_arg(|v| {
            let id = *value_node.entry(v).or_insert_with(|| {
                nodes.push(Node {
                    op: 0, /* CopyFromReg */
                    args: Vec::new(),
                    wide: false,
                });
                (nodes.len() - 1) as u32
            });
            args.push(id);
        });
        let wide = ctx
            .func
            .inst_result(inst)
            .map(|r| ctx.func.value_type(r).reg_count() == 2)
            .unwrap_or(false);
        nodes.push(Node {
            op: discriminant_of(data),
            args,
            wide,
        });
        if let Some(r) = ctx.func.inst_result(inst) {
            value_node.insert(r, (nodes.len() - 1) as u32);
        }
    }
    ctx.stats.dag_nodes += nodes.len() as u64;

    // Combine: recursive known-bits over the DAG (the expensive part the
    // paper calls out: "determining whether any bits of the operation are
    // known, implemented as recursive traversal").
    fn known_bits(nodes: &[(u16, Vec<u32>)], id: u32, depth: u32, queries: &mut u64) -> u64 {
        *queries += 1;
        if depth == 0 {
            return 0;
        }
        let (op, args) = &nodes[id as usize];
        let mut known = !0u64;
        for &a in args {
            known &= known_bits(nodes, a, depth - 1, queries);
        }
        if *op == 0 {
            0
        } else {
            known >> 1 // operations lose precision
        }
    }
    let flat: Vec<(u16, Vec<u32>)> = nodes.iter().map(|n| (n.op, n.args.clone())).collect();
    let mut queries = 0u64;
    // LLVM runs DAGCombine three times: before legalization, after
    // legalization, and after selection.
    for _round in 0..3 {
        for (i, n) in nodes.iter().enumerate() {
            if n.op != 0 && !n.args.is_empty() {
                let _ = known_bits(&flat, i as u32, 6, &mut queries);
            }
        }
    }
    ctx.stats.known_bits_queries += queries;

    // Legalize: split wide (two-register) nodes.
    let wide_count = nodes.iter().filter(|n| n.wide).count();
    let _ = wide_count;

    // Select + schedule: emit in source order (topological for a linear
    // block) through the folding pattern emitter.
    let saved_fold = ctx.fold;
    ctx.fold = true;
    for &inst in insts {
        emit_lir_inst(ctx, block, inst)?;
    }
    ctx.fold = saved_fold;
    Ok(())
}

fn discriminant_of(data: &InstData) -> u16 {
    // A stable small code per instruction kind (DAG node opcode).
    match data {
        InstData::IConst { .. } => 1,
        InstData::FConst { .. } => 2,
        InstData::Binary { .. } => 3,
        InstData::Cmp { .. } => 4,
        InstData::FCmp { .. } => 5,
        InstData::Cast { .. } => 6,
        InstData::Crc32 { .. } => 7,
        InstData::LongMulFold { .. } => 8,
        InstData::Select { .. } => 9,
        InstData::Load { .. } => 10,
        InstData::Store { .. } => 11,
        InstData::Gep { .. } => 12,
        InstData::StackAddr { .. } => 13,
        InstData::Call { .. } => 14,
        InstData::FuncAddr { .. } => 15,
        InstData::Phi { .. } => 16,
        InstData::Jump { .. } => 17,
        InstData::Branch { .. } => 18,
        InstData::Return { .. } => 19,
        InstData::Unreachable => 20,
    }
}

/// GlobalISel's whole-function generic passes: IRTranslator → Legalizer →
/// (Combiner) → RegBankSelect. Each pass iterates over and rewrites the
/// entire IR — the multi-pass cost the paper measures (Sec. V-B3c).
fn global_isel_passes(ctx: &mut Ctx, selector: Selector) {
    // IRTranslator: generic MIR, one record per LIR instruction.
    let mut gmir: Vec<(u16, u8)> = Vec::new();
    for block in ctx.func.blocks() {
        for &inst in ctx.func.block_insts(block) {
            let data = ctx.func.inst(inst);
            gmir.push((discriminant_of(data), 0));
        }
    }
    ctx.stats.gmir_insts += gmir.len() as u64;
    // Legalizer: rewrite wide operations (new buffer, full iteration).
    let legalized: Vec<(u16, u8)> = gmir.iter().map(|&(op, _)| (op, 1)).collect();
    // Combiner (optimized mode only): another full scan.
    let combined: Vec<(u16, u8)> = if selector == Selector::GlobalOpt {
        legalized.iter().map(|&(op, f)| (op, f | 2)).collect()
    } else {
        legalized
    };
    // RegBankSelect: assign a bank per instruction (full iteration).
    let mut banks = 0u64;
    for &(op, _) in &combined {
        banks += (op as u64) & 1;
    }
    let _ = banks;
}

/// PHIElimination: Φ vregs are written by parallel moves at the end of
/// each predecessor block (splitting conditional edges through trampoline
/// blocks when required).
fn phi_elimination(ctx: &mut Ctx) {
    let func = ctx.func;
    // Collect per-edge moves: (pred, succ) -> Vec<(src, dst)> (flattened).
    let mut edge_moves: HashMap<(usize, usize), Vec<(VReg, VReg)>> = HashMap::new();
    for block in func.blocks() {
        for &inst in func.block_insts(block) {
            if let InstData::Phi { pairs, .. } = func.inst(inst) {
                let res = func.inst_result(inst).expect("phi result");
                let (dlo, dhi) = ctx.val_reg[res.index()];
                for &(pred, src) in pairs {
                    let (slo, shi) = ctx.val_reg[src.index()];
                    let m = edge_moves.entry((pred.index(), block.index())).or_default();
                    m.push((slo, dlo));
                    if dhi != VNONE {
                        m.push((shi, dhi));
                    }
                }
            } else {
                break;
            }
        }
    }
    for ((pred, succ), moves) in edge_moves {
        let term_count = {
            let insts = &ctx.vcode.blocks[pred];
            // Number of trailing branch instructions (Jcc+Jmp or Jmp).
            let mut n = 0;
            for inst in insts.iter().rev() {
                match inst {
                    MInst::Jmp { .. } | MInst::Jcc { .. } => n += 1,
                    _ => break,
                }
            }
            n
        };
        let single_succ = ctx.vcode.succs[pred].len() == 1;
        if single_succ {
            let insts = &mut ctx.vcode.blocks[pred];
            let at = insts.len() - term_count;
            insts.insert(at, MInst::ParMove { moves });
        } else {
            // Split the edge: new trampoline block with the moves.
            let tramp = ctx.vcode.blocks.len();
            ctx.vcode
                .blocks
                .push(vec![MInst::ParMove { moves }, MInst::Jmp { target: succ }]);
            ctx.vcode.succs.push(vec![succ]);
            for inst in ctx.vcode.blocks[pred].iter_mut() {
                match inst {
                    MInst::Jcc { target, .. } | MInst::Jmp { target } if *target == succ => {
                        *target = tramp;
                    }
                    _ => {}
                }
            }
            for s in ctx.vcode.succs[pred].iter_mut() {
                if *s == succ {
                    *s = tramp;
                }
            }
        }
    }
}

fn new_vreg(ctx: &mut Ctx, class: RegClass) -> VReg {
    ctx.vcode.classes.push(class);
    (ctx.vcode.classes.len() - 1) as VReg
}

fn lo(ctx: &Ctx, v: Value) -> VReg {
    ctx.val_reg[v.index()].0
}

fn hi(ctx: &Ctx, v: Value) -> VReg {
    ctx.val_reg[v.index()].1
}

/// Folds a constant operand into an immediate when folding is enabled and
/// the producer is an in-function `iconst` (SelectionDAG-style matching).
fn fold_imm(ctx: &Ctx, v: Value) -> Option<i64> {
    if !ctx.fold {
        return None;
    }
    match ctx.func.value_def(v) {
        qc_ir::ValueDef::Inst(i) => match ctx.func.inst(i) {
            InstData::IConst { imm, ty } if ty.reg_count() == 1 => i64::try_from(*imm).ok(),
            _ => None,
        },
        qc_ir::ValueDef::Param(_) => None,
    }
}

#[allow(clippy::too_many_lines)]
fn emit_lir_inst(
    ctx: &mut Ctx,
    block: qc_ir::Block,
    inst: qc_ir::Inst,
) -> Result<(), BackendError> {
    let func = ctx.func;
    let data = func.inst(inst).clone();
    let res = func.inst_result(inst);
    match data {
        InstData::Phi { .. } => {} // handled by PHIElimination
        InstData::IConst { ty, imm } => {
            let r = res.expect("const");
            if ty.reg_count() == 2 {
                let (l, h) = (lo(ctx, r), hi(ctx, r));
                ctx.cur.push(MInst::MovRI {
                    d: l,
                    imm: imm as i64,
                });
                ctx.cur.push(MInst::MovRI {
                    d: h,
                    imm: (imm >> 64) as i64,
                });
            } else {
                let canon = if ty.bits() >= 64 {
                    imm as u64
                } else {
                    (imm as u64) & ((1u64 << ty.bits()) - 1)
                };
                ctx.cur.push(MInst::MovRI {
                    d: lo(ctx, r),
                    imm: canon as i64,
                });
            }
        }
        InstData::FConst { imm } => {
            let r = res.expect("const");
            let bits = new_vreg(ctx, RegClass::Int);
            ctx.cur.push(MInst::MovRI {
                d: bits,
                imm: imm.to_bits() as i64,
            });
            ctx.cur.push(MInst::FMovFromGpr {
                d: lo(ctx, r),
                s: bits,
            });
        }
        InstData::Binary { op, ty, args } => {
            emit_binary(ctx, op, ty, args, res.expect("binary"))?;
        }
        InstData::Cmp { op, ty, args } => {
            let r = res.expect("cmp");
            if ty.reg_count() == 2 {
                emit_cmp_wide(ctx, op, args, lo(ctx, r));
            } else {
                let w = width_of(ty);
                if let Some(imm) = fold_imm(ctx, args[1]) {
                    ctx.cur.push(MInst::CmpImm {
                        w,
                        a: lo(ctx, args[0]),
                        imm,
                    });
                } else {
                    ctx.cur.push(MInst::Cmp {
                        w,
                        a: lo(ctx, args[0]),
                        b: lo(ctx, args[1]),
                    });
                }
                ctx.cur.push(MInst::SetCc {
                    cond: cond_of(op),
                    d: lo(ctx, r),
                });
            }
        }
        InstData::FCmp { op, args } => {
            let r = res.expect("fcmp");
            ctx.cur.push(MInst::FCmpM {
                a: lo(ctx, args[0]),
                b: lo(ctx, args[1]),
            });
            ctx.cur.push(MInst::SetCc {
                cond: fcond_of(op),
                d: lo(ctx, r),
            });
        }
        InstData::Cast { op, to, arg } => {
            let r = res.expect("cast");
            let from = func.value_type(arg);
            match op {
                CastOp::Zext => {
                    ctx.cur.push(MInst::MovRR {
                        d: lo(ctx, r),
                        s: lo(ctx, arg),
                    });
                    if to.reg_count() == 2 {
                        ctx.cur.push(MInst::MovRI {
                            d: hi(ctx, r),
                            imm: 0,
                        });
                    }
                }
                CastOp::Sext => {
                    if from.reg_count() == 2 {
                        ctx.cur.push(MInst::MovRR {
                            d: lo(ctx, r),
                            s: lo(ctx, arg),
                        });
                        ctx.cur.push(MInst::MovRR {
                            d: hi(ctx, r),
                            s: hi(ctx, arg),
                        });
                    } else {
                        if from == Type::I64 || from == Type::Ptr {
                            ctx.cur.push(MInst::MovRR {
                                d: lo(ctx, r),
                                s: lo(ctx, arg),
                            });
                        } else {
                            ctx.cur.push(MInst::Sext {
                                from: width_of(from),
                                d: lo(ctx, r),
                                s: lo(ctx, arg),
                            });
                        }
                        if to.reg_count() == 2 {
                            let h = hi(ctx, r);
                            ctx.cur.push(MInst::MovRR {
                                d: h,
                                s: lo(ctx, r),
                            });
                            ctx.cur.push(MInst::AluImm {
                                op: AluOp::Sar,
                                w: Width::W64,
                                sf: false,
                                d: h,
                                s1: h,
                                imm: 63,
                            });
                        }
                    }
                }
                CastOp::Trunc => {
                    ctx.cur.push(MInst::MovRR {
                        d: lo(ctx, r),
                        s: lo(ctx, arg),
                    });
                    let mask: i64 = match to {
                        Type::Bool | Type::I8 => 0xFF,
                        Type::I16 => 0xFFFF,
                        Type::I32 => 0xFFFF_FFFF,
                        _ => -1,
                    };
                    if mask != -1 {
                        ctx.cur.push(MInst::AluImm {
                            op: AluOp::And,
                            w: Width::W64,
                            sf: false,
                            d: lo(ctx, r),
                            s1: lo(ctx, r),
                            imm: mask,
                        });
                    }
                    if to == Type::Bool {
                        ctx.cur.push(MInst::AluImm {
                            op: AluOp::And,
                            w: Width::W8,
                            sf: false,
                            d: lo(ctx, r),
                            s1: lo(ctx, r),
                            imm: 1,
                        });
                    }
                }
                CastOp::SiToF => {
                    if from.reg_count() == 2 {
                        return Err(BackendError::new("lvm: sitof from i128"));
                    }
                    let src = if from == Type::I64 {
                        lo(ctx, arg)
                    } else {
                        let t = new_vreg(ctx, RegClass::Int);
                        ctx.cur.push(MInst::Sext {
                            from: width_of(from),
                            d: t,
                            s: lo(ctx, arg),
                        });
                        t
                    };
                    ctx.cur.push(MInst::CvtSiToF {
                        d: lo(ctx, r),
                        s: src,
                    });
                }
                CastOp::FToSi => {
                    ctx.cur.push(MInst::CvtFToSi {
                        d: lo(ctx, r),
                        s: lo(ctx, arg),
                    });
                }
            }
        }
        InstData::Crc32 { args } => {
            let r = res.expect("crc32");
            ctx.cur.push(MInst::Crc32 {
                d: lo(ctx, r),
                acc: lo(ctx, args[0]),
                data: lo(ctx, args[1]),
            });
        }
        InstData::LongMulFold { args } => {
            let r = res.expect("lmf");
            let h = new_vreg(ctx, RegClass::Int);
            ctx.cur.push(MInst::MulFull {
                dlo: lo(ctx, r),
                dhi: h,
                a: lo(ctx, args[0]),
                b: lo(ctx, args[1]),
            });
            ctx.cur.push(MInst::Alu {
                op: AluOp::Xor,
                w: Width::W64,
                sf: false,
                d: lo(ctx, r),
                s1: lo(ctx, r),
                s2: h,
            });
        }
        InstData::Select {
            ty,
            cond,
            if_true,
            if_false,
        } => {
            let r = res.expect("select");
            if ty == Type::F64 {
                ctx.cur.push(MInst::FSelect {
                    cond: lo(ctx, cond),
                    d: lo(ctx, r),
                    t: lo(ctx, if_true),
                    f: lo(ctx, if_false),
                });
            } else {
                ctx.cur.push(MInst::Select {
                    cond: lo(ctx, cond),
                    d: lo(ctx, r),
                    t: lo(ctx, if_true),
                    f: lo(ctx, if_false),
                });
                if ty.reg_count() == 2 {
                    ctx.cur.push(MInst::Select {
                        cond: lo(ctx, cond),
                        d: hi(ctx, r),
                        t: hi(ctx, if_true),
                        f: hi(ctx, if_false),
                    });
                }
            }
        }
        InstData::Load { ty, ptr, offset } => {
            let r = res.expect("load");
            match ty {
                Type::F64 => ctx.cur.push(MInst::FLoad {
                    d: lo(ctx, r),
                    base: lo(ctx, ptr),
                    disp: offset,
                }),
                t if t.reg_count() == 2 => {
                    ctx.cur.push(MInst::Load {
                        w: Width::W64,
                        d: lo(ctx, r),
                        base: lo(ctx, ptr),
                        disp: offset,
                    });
                    ctx.cur.push(MInst::Load {
                        w: Width::W64,
                        d: hi(ctx, r),
                        base: lo(ctx, ptr),
                        disp: offset + 8,
                    });
                }
                t => ctx.cur.push(MInst::Load {
                    w: width_of(t),
                    d: lo(ctx, r),
                    base: lo(ctx, ptr),
                    disp: offset,
                }),
            }
        }
        InstData::Store {
            ty,
            ptr,
            value,
            offset,
        } => match ty {
            Type::F64 => ctx.cur.push(MInst::FStore {
                s: lo(ctx, value),
                base: lo(ctx, ptr),
                disp: offset,
            }),
            t if t.reg_count() == 2 => {
                ctx.cur.push(MInst::Store {
                    w: Width::W64,
                    s: lo(ctx, value),
                    base: lo(ctx, ptr),
                    disp: offset,
                });
                ctx.cur.push(MInst::Store {
                    w: Width::W64,
                    s: hi(ctx, value),
                    base: lo(ctx, ptr),
                    disp: offset + 8,
                });
            }
            t => ctx.cur.push(MInst::Store {
                w: width_of(t),
                s: lo(ctx, value),
                base: lo(ctx, ptr),
                disp: offset,
            }),
        },
        InstData::Gep {
            base,
            offset,
            index,
            scale,
        } => {
            let r = res.expect("gep");
            match index {
                Some(i) if ctx.fold => {
                    // DAG folds scaled indices into one addressing op.
                    ctx.cur.push(MInst::Lea {
                        d: lo(ctx, r),
                        base: lo(ctx, base),
                        index: Some((lo(ctx, i), scale)),
                        disp: offset as i32,
                    });
                }
                Some(i) => {
                    // Naive expansion: mul + add + add.
                    let t = new_vreg(ctx, RegClass::Int);
                    ctx.cur.push(MInst::MovRI {
                        d: t,
                        imm: scale as i64,
                    });
                    ctx.cur.push(MInst::Alu {
                        op: AluOp::Mul,
                        w: Width::W64,
                        sf: false,
                        d: t,
                        s1: lo(ctx, i),
                        s2: t,
                    });
                    ctx.cur.push(MInst::Alu {
                        op: AluOp::Add,
                        w: Width::W64,
                        sf: false,
                        d: t,
                        s1: t,
                        s2: lo(ctx, base),
                    });
                    ctx.cur.push(MInst::AluImm {
                        op: AluOp::Add,
                        w: Width::W64,
                        sf: false,
                        d: lo(ctx, r),
                        s1: t,
                        imm: offset,
                    });
                }
                None => {
                    ctx.cur.push(MInst::AluImm {
                        op: AluOp::Add,
                        w: Width::W64,
                        sf: false,
                        d: lo(ctx, r),
                        s1: lo(ctx, base),
                        imm: offset,
                    });
                }
            }
        }
        InstData::StackAddr { slot } => {
            let r = res.expect("stackaddr");
            // Byte offset within the user frame area (16-byte aligned).
            let mut off = 0u32;
            for s in func.stack_slots().iter().take(slot.index()) {
                off = (off + s.align - 1) & !(s.align - 1);
                off += s.size;
            }
            let data = func.stack_slot(slot);
            off = (off + data.align - 1) & !(data.align - 1);
            ctx.cur.push(MInst::FrameAddr { d: lo(ctx, r), off });
        }
        InstData::Call { callee, args } => {
            let decl = func.ext_func(callee).clone();
            let mut flat = Vec::new();
            for &a in &args {
                flat.push(lo(ctx, a));
                if func.value_type(a).reg_count() == 2 {
                    flat.push(hi(ctx, a));
                }
            }
            let ret = match res {
                None => Vec::new(),
                Some(r) if func.value_type(r).reg_count() == 2 => {
                    vec![lo(ctx, r), hi(ctx, r)]
                }
                Some(r) => vec![lo(ctx, r)],
            };
            ctx.cur.push(MInst::CallRt {
                target: CallTarget::Sym(decl.name),
                args: flat,
                ret,
            });
        }
        InstData::FuncAddr { func: fid } => {
            let r = res.expect("funcaddr");
            ctx.cur.push(MInst::FuncAddr {
                d: lo(ctx, r),
                func: fid.index(),
            });
        }
        InstData::Jump { dest } => {
            ctx.cur.push(MInst::Jmp {
                target: dest.index(),
            });
        }
        InstData::Branch {
            cond,
            then_dest,
            else_dest,
        } => {
            // DAG fuses a single-use compare; FastISel re-tests the bool.
            let mut fused = false;
            if ctx.fold {
                if let qc_ir::ValueDef::Inst(ci) = func.value_def(cond) {
                    if let InstData::Cmp { op, ty, args } = func.inst(ci) {
                        if ty.reg_count() == 1 {
                            let w = width_of(*ty);
                            if let Some(imm) = fold_imm(ctx, args[1]) {
                                ctx.cur.push(MInst::CmpImm {
                                    w,
                                    a: lo(ctx, args[0]),
                                    imm,
                                });
                            } else {
                                ctx.cur.push(MInst::Cmp {
                                    w,
                                    a: lo(ctx, args[0]),
                                    b: lo(ctx, args[1]),
                                });
                            }
                            ctx.cur.push(MInst::Jcc {
                                cond: cond_of(*op),
                                target: then_dest.index(),
                            });
                            fused = true;
                        }
                    }
                }
            }
            if !fused {
                ctx.cur.push(MInst::CmpImm {
                    w: Width::W8,
                    a: lo(ctx, cond),
                    imm: 0,
                });
                ctx.cur.push(MInst::Jcc {
                    cond: Cond::Ne,
                    target: then_dest.index(),
                });
            }
            ctx.cur.push(MInst::Jmp {
                target: else_dest.index(),
            });
            let _ = block;
        }
        InstData::Return { value } => {
            let vals = match value {
                None => Vec::new(),
                Some(v) if func.value_type(v).reg_count() == 2 => {
                    vec![lo(ctx, v), hi(ctx, v)]
                }
                Some(v) => vec![lo(ctx, v)],
            };
            ctx.cur.push(MInst::Ret { vals });
        }
        InstData::Unreachable => ctx.cur.push(MInst::Trap { code: 0 }),
    }
    Ok(())
}

fn emit_binary(
    ctx: &mut Ctx,
    op: Opcode,
    ty: Type,
    args: [Value; 2],
    r: Value,
) -> Result<(), BackendError> {
    if ty == Type::F64 {
        let fop = match op {
            Opcode::FAdd => FaluOp::Add,
            Opcode::FSub => FaluOp::Sub,
            Opcode::FMul => FaluOp::Mul,
            Opcode::FDiv => FaluOp::Div,
            other => return Err(BackendError::new(format!("float op expected, got {other}"))),
        };
        ctx.cur.push(MInst::Falu {
            op: fop,
            d: lo(ctx, r),
            a: lo(ctx, args[0]),
            b: lo(ctx, args[1]),
        });
        return Ok(());
    }
    if ty.reg_count() == 2 {
        match op {
            Opcode::Add | Opcode::Sub | Opcode::SAddTrap | Opcode::SSubTrap => {
                let (lo_op, hi_op) = if matches!(op, Opcode::Add | Opcode::SAddTrap) {
                    (AluOp::Add, AluOp::Adc)
                } else {
                    (AluOp::Sub, AluOp::Sbb)
                };
                ctx.cur.push(MInst::Alu {
                    op: lo_op,
                    w: Width::W64,
                    sf: true,
                    d: lo(ctx, r),
                    s1: lo(ctx, args[0]),
                    s2: lo(ctx, args[1]),
                });
                ctx.cur.push(MInst::Alu {
                    op: hi_op,
                    w: Width::W64,
                    sf: true,
                    d: hi(ctx, r),
                    s1: hi(ctx, args[0]),
                    s2: hi(ctx, args[1]),
                });
                if op.can_trap() {
                    ctx.cur.push(MInst::TrapIf {
                        cond: Cond::O,
                        code: 1,
                    });
                }
            }
            Opcode::SMulTrap => {
                // The paper's custom 128-bit multiplication: a run-time
                // check for 64-bit-representable operands with an inline
                // fast path, otherwise the hand-optimized helper.
                ctx.cur.push(MInst::CallRt {
                    target: CallTarget::Sym("rt_mul128_ovf".into()),
                    args: vec![
                        lo(ctx, args[0]),
                        hi(ctx, args[0]),
                        lo(ctx, args[1]),
                        hi(ctx, args[1]),
                    ],
                    ret: vec![lo(ctx, r), hi(ctx, r)],
                });
            }
            Opcode::SDiv => {
                ctx.cur.push(MInst::CallRt {
                    target: CallTarget::Sym("rt_i128_div".into()),
                    args: vec![
                        lo(ctx, args[0]),
                        hi(ctx, args[0]),
                        lo(ctx, args[1]),
                        hi(ctx, args[1]),
                    ],
                    ret: vec![lo(ctx, r), hi(ctx, r)],
                });
            }
            other => {
                return Err(BackendError::new(format!(
                    "lvm: {other} at i128 unsupported"
                )));
            }
        }
        return Ok(());
    }
    let w = width_of(ty);
    match op {
        Opcode::SDiv | Opcode::UDiv | Opcode::SRem | Opcode::URem => {
            ctx.cur.push(MInst::Div {
                signed: matches!(op, Opcode::SDiv | Opcode::SRem),
                rem: matches!(op, Opcode::SRem | Opcode::URem),
                w,
                d: lo(ctx, r),
                a: lo(ctx, args[0]),
                b: lo(ctx, args[1]),
            });
        }
        Opcode::SAddOvf | Opcode::SSubOvf | Opcode::SMulOvf => {
            let t = new_vreg(ctx, RegClass::Int);
            let aop = match op {
                Opcode::SAddOvf => AluOp::Add,
                Opcode::SSubOvf => AluOp::Sub,
                _ => AluOp::Mul,
            };
            ctx.cur.push(MInst::Alu {
                op: aop,
                w,
                sf: true,
                d: t,
                s1: lo(ctx, args[0]),
                s2: lo(ctx, args[1]),
            });
            ctx.cur.push(MInst::SetCc {
                cond: Cond::O,
                d: lo(ctx, r),
            });
        }
        _ => {
            let trapping = op.can_trap();
            let aop = match op {
                Opcode::Add | Opcode::SAddTrap => AluOp::Add,
                Opcode::Sub | Opcode::SSubTrap => AluOp::Sub,
                Opcode::Mul | Opcode::SMulTrap => AluOp::Mul,
                Opcode::And => AluOp::And,
                Opcode::Or => AluOp::Or,
                Opcode::Xor => AluOp::Xor,
                Opcode::Shl => AluOp::Shl,
                Opcode::LShr => AluOp::Shr,
                Opcode::AShr => AluOp::Sar,
                Opcode::RotR => AluOp::Rotr,
                other => return Err(BackendError::new(format!("unexpected op {other}"))),
            };
            // Strength reduction in folding mode: mul by power of two.
            if ctx.fold && aop == AluOp::Mul && !trapping {
                if let Some(imm) = fold_imm(ctx, args[1]) {
                    if imm > 0 && (imm as u64).is_power_of_two() {
                        ctx.cur.push(MInst::AluImm {
                            op: AluOp::Shl,
                            w,
                            sf: false,
                            d: lo(ctx, r),
                            s1: lo(ctx, args[0]),
                            imm: imm.trailing_zeros() as i64,
                        });
                        return Ok(());
                    }
                }
            }
            if let Some(imm) = fold_imm(ctx, args[1]).filter(|_| !trapping) {
                ctx.cur.push(MInst::AluImm {
                    op: aop,
                    w,
                    sf: false,
                    d: lo(ctx, r),
                    s1: lo(ctx, args[0]),
                    imm,
                });
            } else {
                ctx.cur.push(MInst::Alu {
                    op: aop,
                    w,
                    sf: trapping,
                    d: lo(ctx, r),
                    s1: lo(ctx, args[0]),
                    s2: lo(ctx, args[1]),
                });
                if trapping {
                    ctx.cur.push(MInst::TrapIf {
                        cond: Cond::O,
                        code: 1,
                    });
                }
            }
        }
    }
    Ok(())
}

fn emit_cmp_wide(ctx: &mut Ctx, op: CmpOp, args: [Value; 2], dst: VReg) {
    let (alo, ahi) = (lo(ctx, args[0]), hi(ctx, args[0]));
    let (blo, bhi) = (lo(ctx, args[1]), hi(ctx, args[1]));
    let t1 = new_vreg(ctx, RegClass::Int);
    let t2 = new_vreg(ctx, RegClass::Int);
    match op {
        CmpOp::Eq | CmpOp::Ne => {
            ctx.cur.push(MInst::Alu {
                op: AluOp::Xor,
                w: Width::W64,
                sf: false,
                d: t1,
                s1: alo,
                s2: blo,
            });
            ctx.cur.push(MInst::Alu {
                op: AluOp::Xor,
                w: Width::W64,
                sf: false,
                d: t2,
                s1: ahi,
                s2: bhi,
            });
            ctx.cur.push(MInst::Alu {
                op: AluOp::Or,
                w: Width::W64,
                sf: true,
                d: t1,
                s1: t1,
                s2: t2,
            });
            ctx.cur.push(MInst::SetCc {
                cond: cond_of(op),
                d: dst,
            });
        }
        _ => {
            let (x, y, c) = match op {
                CmpOp::SLt => ((alo, ahi), (blo, bhi), Cond::Lt),
                CmpOp::SGe => ((alo, ahi), (blo, bhi), Cond::Ge),
                CmpOp::SGt => ((blo, bhi), (alo, ahi), Cond::Lt),
                CmpOp::SLe => ((blo, bhi), (alo, ahi), Cond::Ge),
                CmpOp::ULt => ((alo, ahi), (blo, bhi), Cond::B),
                CmpOp::UGe => ((alo, ahi), (blo, bhi), Cond::Ae),
                CmpOp::UGt => ((blo, bhi), (alo, ahi), Cond::B),
                CmpOp::ULe => ((blo, bhi), (alo, ahi), Cond::Ae),
                CmpOp::Eq | CmpOp::Ne => unreachable!(),
            };
            ctx.cur.push(MInst::Alu {
                op: AluOp::Sub,
                w: Width::W64,
                sf: true,
                d: t1,
                s1: x.0,
                s2: y.0,
            });
            ctx.cur.push(MInst::Alu {
                op: AluOp::Sbb,
                w: Width::W64,
                sf: true,
                d: t2,
                s1: x.1,
                s2: y.1,
            });
            ctx.cur.push(MInst::SetCc { cond: c, d: dst });
        }
    }
}
