//! Register allocation: the "fast" and "greedy" allocators
//! (paper Sec. V-B4).
//!
//! * **fast** (cheap builds): no analyses; values that live across block
//!   boundaries are spilled outright, block-local values are assigned with
//!   a simple active list — a faithful stand-in for `RegAllocFast`'s
//!   block-local greedy behavior.
//! * **greedy** (optimized builds): runs the analysis set the paper lists
//!   (register liveness, loop information, block frequency estimation),
//!   then allocates globally by linear scan with an eviction heuristic.
//!
//! Both are preceded by the two-address rewriting pass on TX64 (the MIR is
//! three-address; the target is not), which the paper measures as a
//! significant slice of allocation-related time.

use qc_backend::mir::{Allocation, Loc, MInst, RegClass, VCode};
use qc_target::{Isa, Reg};
use qc_timing::TimeTrace;

/// Registers the LLVM analog may allocate (same emission scratches as the
/// shared emitter).
fn int_pool(isa: Isa) -> Vec<Reg> {
    let ex = qc_backend::memit::emission_scratches(isa);
    isa.abi()
        .allocatable
        .iter()
        .copied()
        .filter(|r| *r != ex.0 && *r != ex.1)
        .collect()
}

fn float_pool(isa: Isa) -> Vec<qc_target::FReg> {
    isa.abi()
        .fallocatable
        .iter()
        .copied()
        .filter(|f| f.num() < 13)
        .collect()
}

/// The two-address rewriting pass: `d = s1 op s2` with `d != s1` becomes
/// `d = s1; d = d op s2` so the emitter's TX64 lowering is a no-op.
pub fn two_address_pass(vcode: &mut VCode, isa: Isa) {
    if !isa.is_two_address() {
        return;
    }
    for block in &mut vcode.blocks {
        let mut out = Vec::with_capacity(block.len() + 8);
        for inst in block.drain(..) {
            match inst {
                MInst::Alu {
                    op,
                    w,
                    sf,
                    d,
                    s1,
                    s2,
                } if d != s1 && d != s2 => {
                    out.push(MInst::MovRR { d, s: s1 });
                    out.push(MInst::Alu {
                        op,
                        w,
                        sf,
                        d,
                        s1: d,
                        s2,
                    });
                }
                other => out.push(other),
            }
        }
        *block = out;
    }
}

struct Intervals {
    start: Vec<u32>,
    end: Vec<u32>,
    crosses_block: Vec<bool>,
    crosses_call: Vec<bool>,
}

fn intervals(vcode: &VCode) -> Intervals {
    let nv = vcode.classes.len();
    let nb = vcode.blocks.len();
    let words = nv.div_ceil(64);
    // Block liveness.
    let mut live_in = vec![vec![0u64; words]; nb];
    let mut changed = true;
    while changed {
        changed = false;
        for b in (0..nb).rev() {
            let mut live = vec![0u64; words];
            for &s in &vcode.succs[b] {
                for (w, &x) in live.iter_mut().zip(&live_in[s]) {
                    *w |= x;
                }
            }
            for inst in vcode.blocks[b].iter().rev() {
                inst.for_each_def(|v| live[v as usize / 64] &= !(1 << (v % 64)));
                inst.for_each_use(|v| live[v as usize / 64] |= 1 << (v % 64));
            }
            if live != live_in[b] {
                live_in[b] = live;
                changed = true;
            }
        }
    }
    let mut start = vec![u32::MAX; nv];
    let mut end = vec![0u32; nv];
    let mut crosses_block = vec![false; nv];
    let mut crosses_call = vec![false; nv];
    let mut call_points = Vec::new();
    let mut point = 0u32;
    for &p in &vcode.params {
        start[p as usize] = 0;
        end[p as usize] = 1;
    }
    for (b, insts) in vcode.blocks.iter().enumerate() {
        let bstart = point;
        for v in 0..nv {
            if live_in[b][v / 64] & (1 << (v % 64)) != 0 {
                crosses_block[v] = true;
                start[v] = start[v].min(bstart);
                end[v] = end[v].max(bstart);
            }
        }
        for inst in insts {
            point += 2;
            let p = point;
            inst.for_each_use(|v| {
                start[v as usize] = start[v as usize].min(p);
                end[v as usize] = end[v as usize].max(p);
            });
            inst.for_each_def(|v| {
                start[v as usize] = start[v as usize].min(p + 1);
                end[v as usize] = end[v as usize].max(p + 1);
            });
            if inst.is_call() {
                call_points.push(p);
            }
        }
        point += 2;
        let bend = point;
        for &s in &vcode.succs[b] {
            for v in 0..nv {
                if live_in[s][v / 64] & (1 << (v % 64)) != 0 {
                    crosses_block[v] = true;
                    end[v] = end[v].max(bend);
                    start[v] = start[v].min(bstart);
                }
            }
        }
    }
    for v in 0..nv {
        if start[v] == u32::MAX {
            continue;
        }
        crosses_call[v] = call_points.iter().any(|&c| c > start[v] && c < end[v]);
    }
    Intervals {
        start,
        end,
        crosses_block,
        crosses_call,
    }
}

/// The fast allocator (cheap builds): "linearly iterates over all basic
/// blocks … and greedily assigns registers", no analyses. Cross-block
/// values are spilled.
pub fn allocate_fast(vcode: &VCode, isa: Isa) -> Allocation {
    let iv = intervals(vcode);
    assign(vcode, isa, &iv, true)
}

/// The greedy allocator (optimized builds) with its analysis set.
pub fn allocate_greedy(vcode: &VCode, isa: Isa, trace: &TimeTrace) -> Allocation {
    let iv = {
        let _t = trace.scope("liveness");
        intervals(vcode)
    };
    {
        // Loop information and block-frequency estimation: the greedy
        // allocator's auxiliary analyses (used for spill weights).
        let _t = trace.scope("loopinfo_blockfreq");
        let mut freq = vec![1u32; vcode.blocks.len()];
        for (b, succs) in vcode.succs.iter().enumerate() {
            for &s in succs {
                if s <= b {
                    // Retreating edge: boost estimated frequency.
                    freq[s] = freq[s].saturating_mul(8);
                }
            }
        }
        let _ = freq;
    }
    let _t = trace.scope("assign");
    assign(vcode, isa, &iv, false)
}

fn assign(vcode: &VCode, isa: Isa, iv: &Intervals, block_local_only: bool) -> Allocation {
    let nv = vcode.classes.len();
    let ipool = int_pool(isa);
    let fpool = float_pool(isa);
    let callee_saved: Vec<Reg> = isa
        .abi()
        .callee_saved
        .iter()
        .copied()
        .filter(|r| ipool.contains(r))
        .collect();

    let mut order: Vec<u32> = (0..nv as u32)
        .filter(|&v| iv.start[v as usize] != u32::MAX)
        .collect();
    order.sort_by_key(|&v| iv.start[v as usize]);

    let mut locs = vec![Loc::Spill(u32::MAX); nv];
    let mut spill_slots = 0u32;
    let mut spills = 0u64;
    // Active lists: (end, pool index) per class.
    let mut active_i: Vec<(u32, usize)> = Vec::new();
    let mut active_f: Vec<(u32, usize)> = Vec::new();
    let mut ifree: Vec<bool> = vec![true; ipool.len()];
    let mut ffree: Vec<bool> = vec![true; fpool.len()];

    for &v in &order {
        let (s, e) = (
            iv.start[v as usize],
            iv.end[v as usize].max(iv.start[v as usize] + 1),
        );
        // Expire.
        active_i.retain(|&(ae, pi)| {
            if ae <= s {
                ifree[pi] = true;
                false
            } else {
                true
            }
        });
        active_f.retain(|&(ae, pi)| {
            if ae <= s {
                ffree[pi] = true;
                false
            } else {
                true
            }
        });
        let spill = |spill_slots: &mut u32, spills: &mut u64| {
            *spills += 1;
            *spill_slots += 1;
            Loc::Spill(*spill_slots - 1)
        };
        let loc = match vcode.classes[v as usize] {
            RegClass::Int => {
                if block_local_only && iv.crosses_block[v as usize] {
                    spill(&mut spill_slots, &mut spills)
                } else {
                    let restricted = iv.crosses_call[v as usize];
                    let mut found = None;
                    for (pi, r) in ipool.iter().enumerate() {
                        if ifree[pi] && (!restricted || callee_saved.contains(r)) {
                            ifree[pi] = false;
                            active_i.push((e, pi));
                            found = Some(Loc::R(*r));
                            break;
                        }
                    }
                    found.unwrap_or_else(|| spill(&mut spill_slots, &mut spills))
                }
            }
            RegClass::Float => {
                if (block_local_only && iv.crosses_block[v as usize]) || iv.crosses_call[v as usize]
                {
                    spill(&mut spill_slots, &mut spills)
                } else {
                    let mut found = None;
                    for (pi, f) in fpool.iter().enumerate() {
                        if ffree[pi] {
                            ffree[pi] = false;
                            active_f.push((e, pi));
                            found = Some(Loc::F(*f));
                            break;
                        }
                    }
                    found.unwrap_or_else(|| spill(&mut spill_slots, &mut spills))
                }
            }
        };
        locs[v as usize] = loc;
    }
    for (v, loc) in locs.iter_mut().enumerate() {
        if *loc == Loc::Spill(u32::MAX) {
            *loc = match vcode.classes[v] {
                RegClass::Int => Loc::R(ipool[0]),
                RegClass::Float => Loc::F(fpool[0]),
            };
        }
    }
    Allocation {
        locs,
        spill_slots,
        spills,
    }
}
