//! LIR: the LLVM-analog IR, plus its optimization passes.
//!
//! LIR reuses the workspace SSA structures (builder-based, Φ-nodes) but is
//! a **separate copy** constructed from Umbra IR — the paper times this
//! construction and the later destruction explicitly. Two construction
//! modes mirror the Sec. V-A2 ablation:
//!
//! * [`PairRepr::Scalars`] — 16-byte strings become two separate `i64`
//!   values (the paper's optimized representation),
//! * [`PairRepr::Struct`] — strings stay single two-register values, which
//!   later forces FastISel fallbacks ("every occurrence of this struct
//!   type would trigger a fallback").
//!
//! `i128` stays native in both modes, as in the paper.

pub use qc_ir::opt::{pass_cse, pass_dce, pass_instcombine, pass_licm};
use qc_ir::{
    Block, ExtFuncDecl, Function, FunctionBuilder, InstData, Module, Signature, Type, Value,
};
use std::collections::HashMap;

/// The `{i64,i64}` representation ablation (paper Sec. V-A2).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairRepr {
    /// Two separate `i64` values (optimized; the default).
    Scalars,
    /// One struct-like two-register value.
    Struct,
}

/// Builds the LIR module from the input module (timed as "irgen").
pub fn construct(module: &Module, repr: PairRepr) -> Module {
    let mut out = Module::new(&module.name);
    for func in module.functions() {
        out.push_function(construct_func(func, repr));
    }
    out
}

fn flatten_sig(sig: &Signature, repr: PairRepr) -> Signature {
    if repr == PairRepr::Struct {
        return sig.clone();
    }
    let mut params = Vec::new();
    for &p in &sig.params {
        if p == Type::String {
            params.push(Type::I64);
            params.push(Type::I64);
        } else {
            params.push(p);
        }
    }
    // Return values keep the pair type: "structures are the only way to
    // represent functions with multiple return values".
    Signature::new(params, sig.ret)
}

#[derive(Clone, Copy)]
enum M {
    One(Value),
    Pair(Value, Value),
}

fn construct_func(func: &Function, repr: PairRepr) -> Function {
    let sig = flatten_sig(&func.sig, repr);
    let mut b = FunctionBuilder::new(&func.name, sig);
    let mut map: HashMap<Value, M> = HashMap::new();

    // Parameters.
    let mut slot = 0usize;
    for &p in func.params() {
        if func.value_type(p) == Type::String && repr == PairRepr::Scalars {
            map.insert(p, M::Pair(b.param(slot), b.param(slot + 1)));
            slot += 2;
        } else {
            map.insert(p, M::One(b.param(slot)));
            slot += 1;
        }
    }
    // Blocks.
    for _ in func.blocks().skip(1) {
        b.create_block();
    }
    // Stack slots / ext funcs copy.
    let mut slot_map = Vec::new();
    for s in func.stack_slots() {
        slot_map.push(b.stack_slot(s.size));
    }
    let mut ext_map = Vec::new();
    for d in func.ext_funcs() {
        ext_map.push(b.declare_ext_func(ExtFuncDecl {
            name: d.name.clone(),
            sig: flatten_sig(&d.sig, repr),
        }));
    }

    // Phi pre-creation (types possibly expanded).
    for block in func.blocks() {
        b.switch_to(block);
        for &inst in func.block_insts(block) {
            if let InstData::Phi { ty, .. } = func.inst(inst) {
                let res = func.inst_result(inst).expect("phi result");
                if *ty == Type::String && repr == PairRepr::Scalars {
                    let lo = b.phi(Type::I64, Vec::new());
                    let hi = b.phi(Type::I64, Vec::new());
                    map.insert(res, M::Pair(lo, hi));
                } else {
                    let v = b.phi(*ty, Vec::new());
                    map.insert(res, M::One(v));
                }
            } else {
                break;
            }
        }
    }

    let one = |map: &HashMap<Value, M>, v: Value| match map[&v] {
        M::One(x) => x,
        M::Pair(..) => panic!("pair where scalar expected"),
    };

    let mut phi_fixups: Vec<(Value, Vec<(Block, Value)>)> = Vec::new();
    for block in func.blocks() {
        b.switch_to(block);
        for &inst in func.block_insts(block) {
            let data = func.inst(inst).clone();
            let res = func.inst_result(inst);
            match data {
                InstData::Phi { pairs, .. } => {
                    // Defer incoming edges: back-edge operands are
                    // translated later.
                    phi_fixups.push((res.expect("phi result"), pairs));
                }
                InstData::Load {
                    ty: Type::String,
                    ptr,
                    offset,
                } if repr == PairRepr::Scalars => {
                    let p = one(&map, ptr);
                    let lo = b.load(Type::I64, p, offset);
                    let hi = b.load(Type::I64, p, offset + 8);
                    map.insert(res.expect("load result"), M::Pair(lo, hi));
                }
                InstData::Store {
                    ty: Type::String,
                    ptr,
                    value,
                    offset,
                } if repr == PairRepr::Scalars => {
                    let p = one(&map, ptr);
                    let M::Pair(lo, hi) = map[&value] else {
                        panic!("pair store")
                    };
                    b.store(Type::I64, p, lo, offset);
                    b.store(Type::I64, p, hi, offset + 8);
                }
                InstData::Select {
                    ty: Type::String,
                    cond,
                    if_true,
                    if_false,
                } if repr == PairRepr::Scalars => {
                    let c = one(&map, cond);
                    let M::Pair(tl, th) = map[&if_true] else {
                        panic!()
                    };
                    let M::Pair(fl, fh) = map[&if_false] else {
                        panic!()
                    };
                    let lo = b.select(Type::I64, c, tl, fl);
                    let hi = b.select(Type::I64, c, th, fh);
                    map.insert(res.expect("select result"), M::Pair(lo, hi));
                }
                InstData::Call { callee, args } => {
                    let mut flat = Vec::new();
                    for a in args {
                        match map[&a] {
                            M::One(x) => flat.push(x),
                            M::Pair(lo, hi) => {
                                flat.push(lo);
                                flat.push(hi);
                            }
                        }
                    }
                    let r = b.call(ext_map[callee.index()], flat);
                    if let Some(orig) = res {
                        let r = r.expect("call result");
                        // String-returning calls don't occur in query code;
                        // map scalar results directly.
                        map.insert(orig, M::One(r));
                    }
                }
                InstData::Return { value: Some(v) } => match map[&v] {
                    M::One(x) => b.ret(Some(x)),
                    M::Pair(lo, hi) => {
                        // Multiple return values need the struct form: pack
                        // the halves back into one two-register value.
                        // Represented by a synthetic string-typed reload
                        // via a stack slot would be costly; instead keep
                        // functions returning strings unexpanded.
                        let _ = (lo, hi);
                        unreachable!("query code never returns strings");
                    }
                },
                other => {
                    // Structural copy with operand remapping.
                    let remapped = remap(&other, &map, &slot_map, &ext_map);
                    let (_, r) = b.append(remapped);
                    if let (Some(orig), Some(new)) = (res, r) {
                        map.insert(orig, M::One(new));
                    }
                }
            }
        }
    }
    for (orig, pairs) in phi_fixups {
        match map[&orig] {
            M::One(p) => {
                for (pred, v) in pairs {
                    let src = one(&map, v);
                    b.phi_add_incoming(p, pred, src);
                }
            }
            M::Pair(plo, phi_hi) => {
                for (pred, v) in pairs {
                    let M::Pair(lo, hi) = map[&v] else {
                        panic!("pair phi")
                    };
                    b.phi_add_incoming(plo, pred, lo);
                    b.phi_add_incoming(phi_hi, pred, hi);
                }
            }
        }
    }
    b.finish()
}

fn remap(
    data: &InstData,
    map: &HashMap<Value, M>,
    slot_map: &[qc_ir::StackSlot],
    ext_map: &[qc_ir::ExtFuncId],
) -> InstData {
    let m = |v: Value| match map[&v] {
        M::One(x) => x,
        M::Pair(lo, _) => lo, // struct mode: pairs stay single values
    };
    match data.clone() {
        InstData::IConst { ty, imm } => InstData::IConst { ty, imm },
        InstData::FConst { imm } => InstData::FConst { imm },
        InstData::Binary { op, ty, args } => InstData::Binary {
            op,
            ty,
            args: [m(args[0]), m(args[1])],
        },
        InstData::Cmp { op, ty, args } => InstData::Cmp {
            op,
            ty,
            args: [m(args[0]), m(args[1])],
        },
        InstData::FCmp { op, args } => InstData::FCmp {
            op,
            args: [m(args[0]), m(args[1])],
        },
        InstData::Cast { op, to, arg } => InstData::Cast {
            op,
            to,
            arg: m(arg),
        },
        InstData::Crc32 { args } => InstData::Crc32 {
            args: [m(args[0]), m(args[1])],
        },
        InstData::LongMulFold { args } => InstData::LongMulFold {
            args: [m(args[0]), m(args[1])],
        },
        InstData::Select {
            ty,
            cond,
            if_true,
            if_false,
        } => InstData::Select {
            ty,
            cond: m(cond),
            if_true: m(if_true),
            if_false: m(if_false),
        },
        InstData::Load { ty, ptr, offset } => InstData::Load {
            ty,
            ptr: m(ptr),
            offset,
        },
        InstData::Store {
            ty,
            ptr,
            value,
            offset,
        } => InstData::Store {
            ty,
            ptr: m(ptr),
            value: m(value),
            offset,
        },
        InstData::Gep {
            base,
            offset,
            index,
            scale,
        } => InstData::Gep {
            base: m(base),
            offset,
            index: index.map(m),
            scale,
        },
        InstData::StackAddr { slot } => InstData::StackAddr {
            slot: slot_map[slot.index()],
        },
        InstData::Call { callee, args } => InstData::Call {
            callee: ext_map[callee.index()],
            args: args.into_iter().map(m).collect(),
        },
        InstData::FuncAddr { func } => InstData::FuncAddr { func },
        InstData::Jump { dest } => InstData::Jump { dest },
        InstData::Branch {
            cond,
            then_dest,
            else_dest,
        } => InstData::Branch {
            cond: m(cond),
            then_dest,
            else_dest,
        },
        InstData::Return { value } => InstData::Return {
            value: value.map(m),
        },
        InstData::Unreachable => InstData::Unreachable,
        InstData::Phi { .. } => unreachable!("phis handled separately"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qc_ir::{verify_function, CmpOp, Opcode};

    fn sample_with_redundancy() -> Function {
        let mut b = FunctionBuilder::new("f", Signature::new(vec![Type::I64], Type::I64));
        let e = b.entry_block();
        b.switch_to(e);
        let x = b.param(0);
        let a = b.add(Type::I64, x, x);
        let a2 = b.add(Type::I64, x, x); // CSE target
        let zero = b.iconst(Type::I64, 0);
        let a3 = b.add(Type::I64, a2, zero); // InstCombine target
        let dead = b.mul(Type::I64, a, a); // DCE target
        let _ = dead;
        let s = b.add(Type::I64, a, a3);
        b.ret(Some(s));
        b.finish()
    }

    #[test]
    fn cse_removes_duplicates() {
        let f = sample_with_redundancy();
        let g = pass_cse(&f);
        verify_function(&g).unwrap();
        assert!(g.num_insts() < f.num_insts());
    }

    #[test]
    fn instcombine_folds_identities() {
        let f = sample_with_redundancy();
        let g = pass_instcombine(&f);
        verify_function(&g).unwrap();
        assert!(g.num_insts() < f.num_insts());
    }

    #[test]
    fn dce_drops_dead_code() {
        let f = sample_with_redundancy();
        let g = pass_dce(&f);
        verify_function(&g).unwrap();
        assert!(g.num_insts() < f.num_insts());
    }

    #[test]
    fn licm_hoists_invariants() {
        let mut b = FunctionBuilder::new("l", Signature::new(vec![Type::I64], Type::I64));
        let entry = b.entry_block();
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        let zero = b.iconst(Type::I64, 0);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, zero)]);
        let n = b.param(0);
        let c = b.icmp(CmpOp::SLt, Type::I64, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        // Loop-invariant: n * 3.
        let three = b.iconst(Type::I64, 3);
        let inv = b.mul(Type::I64, n, three);
        let i2 = b.add(Type::I64, i, inv);
        b.phi_add_incoming(i, body, i2);
        b.jump(header);
        b.switch_to(exit);
        b.ret(Some(i));
        let f = b.finish();
        let g = pass_licm(&f);
        verify_function(&g).unwrap();
        // The multiply must now be outside the loop body (block 2).
        let body_insts = g.block_insts(Block::new(2));
        let muls_in_body = body_insts
            .iter()
            .filter(|&&i| {
                matches!(
                    g.inst(i),
                    InstData::Binary {
                        op: Opcode::Mul,
                        ..
                    }
                )
            })
            .count();
        assert_eq!(muls_in_body, 0, "{}", qc_ir::print_function(&g));
    }

    #[test]
    fn construct_scalars_expands_strings() {
        let mut b = FunctionBuilder::new(
            "s",
            Signature::new(vec![Type::Ptr, Type::String], Type::Void),
        );
        let e = b.entry_block();
        b.switch_to(e);
        let p = b.param(0);
        let s = b.param(1);
        b.store(Type::String, p, s, 0);
        let l = b.load(Type::String, p, 16);
        b.store(Type::String, p, l, 32);
        b.ret(None);
        let f = b.finish();
        let mut m = Module::new("m");
        m.push_function(f);
        let scalars = construct(&m, PairRepr::Scalars);
        verify_function(&scalars.functions()[0]).unwrap();
        assert_eq!(scalars.functions()[0].sig.params.len(), 3); // ptr + 2×i64
        let structs = construct(&m, PairRepr::Struct);
        verify_function(&structs.functions()[0]).unwrap();
        assert_eq!(structs.functions()[0].sig.params.len(), 2);
    }
}
