//! LVM: the LLVM-analog multi-pass optimizing back-end (paper Sec. V).
//!
//! The pipeline reproduces the cost structure of LLVM's ORC JIT flow and
//! the breakdowns of Figures 2 and 3:
//!
//! 1. **TargetMachine** construction (parsing an architecture description;
//!    optionally cached per thread — a Sec. V-A2 optimization),
//! 2. **IR construction** — Umbra-IR → LIR, with the `{i64,i64}`-struct
//!    vs. two-scalars representation ablation,
//! 3. **optimization passes** (-O2 only): CSE, instruction combining,
//!    LICM (computing the dominator tree and loop info twice), DCE —
//!    each pass rewrites the IR wholesale,
//! 4. **pre-ISel IR passes** that scan the whole IR for constructs query
//!    code never contains (large-division expansion, constant intrinsics,
//!    vector lowering, AMX types) — pure overhead by design,
//! 5. **instruction selection**: FastISel (with per-block SelectionDAG
//!    fallback and per-cause statistics), SelectionDAG (graph IR with
//!    recursive known-bits combining), or GlobalISel (whole-function
//!    generic-MIR passes; TA64),
//! 6. **register allocation**: two-address rewriting, then the fast or
//!    greedy allocator,
//! 7. **AsmPrinter**: per-instruction MC lowering through virtual-dispatch
//!    emission hooks and string-keyed labels, into an in-memory object,
//! 8. **ORC-style linking** in four phases, with per-module **PLT+GOT**
//!    under the Small-PIC code model,
//! 9. **IR destruction**, measured separately (Sec. V-B1).

mod isel;
mod lir;
mod ra;

pub use isel::{IselOptions, IselStats, Selector};
pub use lir::PairRepr;

use qc_backend::memit::MirEmitter;
use qc_backend::mir::{CallTarget, MInst};
use qc_backend::{
    Backend, BackendError, CodeArtifact, CompileStats, Executable, NativeArtifact, NativeExecutable,
};
use qc_ir::Module;
use qc_runtime::resolve_runtime;
use qc_target::{ImageBuilder, Isa, SymbolRef, UnwindEntry};
use qc_timing::TimeTrace;
use std::cell::RefCell;
use std::collections::{HashMap, HashSet};

/// An AsmPrinter emission hook, invoked for every machine instruction
/// (the paper's "hooks for relocations/unwind are virtual calls").
type EmitHook<'a> = Box<dyn FnMut(&MInst) + 'a>;

/// Optimization mode (paper Sec. V).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum OptMode {
    /// -O0 + FastISel.
    Cheap,
    /// -O2 + SelectionDAG.
    Optimized,
}

/// Full option set including the paper's ablations.
#[derive(Debug, Clone, Copy)]
pub struct LvmOptions {
    /// Target ISA.
    pub isa: Isa,
    /// Optimization mode.
    pub mode: OptMode,
    /// String/pair representation in LIR (Sec. V-A2 ablation).
    pub pair_repr: PairRepr,
    /// Small-PIC code model (vs. large; Sec. V-A2 ablation).
    pub small_pic: bool,
    /// FastISel CRC-32 intrinsic support (Sec. V-A2 ablation).
    pub fastisel_crc32: bool,
    /// Cache the TargetMachine per thread (Sec. V-A2 ablation).
    pub cache_target_machine: bool,
    /// Use GlobalISel instead of FastISel/SelectionDAG (TA64 only).
    pub global_isel: bool,
}

impl LvmOptions {
    /// The paper's tuned defaults for `isa` and `mode`.
    pub fn defaults(isa: Isa, mode: OptMode) -> Self {
        LvmOptions {
            isa,
            mode,
            pair_repr: PairRepr::Scalars,
            small_pic: true,
            fastisel_crc32: true,
            cache_target_machine: true,
            global_isel: false,
        }
    }
}

/// The LLVM-analog back-end.
#[derive(Debug)]
pub struct LvmBackend {
    options: LvmOptions,
}

impl LvmBackend {
    /// Creates the back-end with tuned defaults.
    pub fn new(isa: Isa, mode: OptMode) -> Self {
        Self::with_options(LvmOptions::defaults(isa, mode))
    }

    /// Creates the back-end with full option control.
    pub fn with_options(options: LvmOptions) -> Self {
        LvmBackend { options }
    }
}

/// A parsed architecture description (feature strings, register costs).
/// Construction is deliberately non-trivial: the paper caches it per
/// thread because rebuilding it per compilation is measurable.
#[derive(Debug, Clone)]
struct TargetMachine {
    #[allow(dead_code)]
    features: Vec<(String, u32)>,
}

fn build_target_machine(isa: Isa) -> TargetMachine {
    // Parse a synthetic architecture description string.
    let desc = match isa {
        Isa::Tx64 => {
            "arch=tx64;gpr=16;flags=true;crc32=native;mul128=native;\
             enc=var;sse=4.1;cmov=false;addr=base+index*scale+disp32;\
             callconv=r0-r5;ret=r0:r1;sp=r15;align=16"
        }
        Isa::Ta64 => {
            "arch=ta64;gpr=31;flags=true;crc32=native;mul128=native;\
             enc=fixed4;neon=base;addr=base+imm12|base+index;\
             callconv=r0-r7;ret=r0:r1;sp=r31;align=16"
        }
    };
    let mut features = Vec::new();
    for chunk in desc.split(';') {
        let (k, v) = chunk.split_once('=').unwrap_or((chunk, ""));
        let weight = v.bytes().map(|b| b as u32).sum::<u32>() ^ (k.len() as u32);
        features.push((k.to_string(), weight));
    }
    // Derived register-cost tables (more "parsing" work).
    for i in 0..64u32 {
        features.push((format!("regcost{i}"), i * 7 % 13));
    }
    TargetMachine { features }
}

thread_local! {
    static TM_CACHE: RefCell<HashMap<&'static str, TargetMachine>> =
        RefCell::new(HashMap::new());
}

impl Backend for LvmBackend {
    fn name(&self) -> &'static str {
        match self.options.mode {
            OptMode::Cheap => "LVM-cheap",
            OptMode::Optimized => "LVM-opt",
        }
    }

    fn isa(&self) -> Isa {
        self.options.isa
    }

    fn config_fingerprint(&self) -> u64 {
        let o = self.options;
        u64::from(o.pair_repr == PairRepr::Struct)
            | u64::from(o.small_pic) << 1
            | u64::from(o.fastisel_crc32) << 2
            | u64::from(o.global_isel) << 3
    }

    fn compile(
        &self,
        module: &Module,
        trace: &TimeTrace,
    ) -> Result<Box<dyn Executable>, BackendError> {
        let Parts {
            image,
            mut stats,
            func_names,
            used_syms,
            lir,
        } = self
            .build_parts(module, trace)
            .map_err(|e| e.in_backend(self.name()))?;

        // --- ORC-style 4-phase link ---
        let linked = {
            let _t = trace.scope("link");
            {
                let _p1 = trace.scope("phase1_alloc");
                // Recover/prune symbols: hash every defined symbol name.
                let mut h = 0u64;
                for n in &func_names {
                    h = h.wrapping_mul(31).wrapping_add(n.len() as u64);
                }
                std::hint::black_box(h);
            }
            {
                let _p2 = trace.scope("phase2_resolve");
                for s in &used_syms {
                    std::hint::black_box(resolve_runtime(s));
                }
            }
            let img = {
                let _p3 = trace.scope("phase3_apply");
                image
                    .link(&|name| resolve_runtime(name))
                    .map_err(|e| BackendError::new(e.to_string()).in_backend(self.name()))?
            };
            {
                let _p4 = trace.scope("phase4_lookup");
                for n in &func_names {
                    std::hint::black_box(img.addr_of(n));
                }
            }
            img
        };

        // --- IR destruction, measured separately. ---
        {
            let _t = trace.scope("irdtor");
            drop(lir);
        }

        stats.code_bytes = linked.len();
        Ok(Box::new(NativeExecutable::new(linked, stats)))
    }

    fn compile_artifact(
        &self,
        module: &Module,
        trace: &TimeTrace,
    ) -> Result<Option<Box<dyn CodeArtifact>>, BackendError> {
        let Parts {
            image, stats, lir, ..
        } = self
            .build_parts(module, trace)
            .map_err(|e| e.in_backend(self.name()))?;
        {
            let _t = trace.scope("irdtor");
            drop(lir);
        }
        Ok(Some(Box::new(NativeArtifact::new(image, stats))))
    }
}

/// Everything [`LvmBackend::build_parts`] produces before the ORC link:
/// the unlinked image plus the side data the 4-phase link ceremony
/// consumes.
struct Parts {
    image: ImageBuilder,
    stats: CompileStats,
    func_names: Vec<String>,
    used_syms: HashSet<String>,
    lir: Module,
}

impl LvmBackend {
    /// Pipeline phases 1–8 short of linking (TargetMachine through
    /// AsmPrinter and PLT+GOT synthesis); `compile` follows with the
    /// ORC link, `compile_artifact` defers linking to instantiation.
    #[allow(clippy::too_many_lines)]
    fn build_parts(&self, module: &Module, trace: &TimeTrace) -> Result<Parts, BackendError> {
        let o = self.options;
        if o.global_isel && o.isa != Isa::Ta64 {
            return Err(BackendError::new("GlobalISel is only supported on TA64"));
        }
        let mut stats = CompileStats::default();

        // --- TargetMachine ---
        {
            let _t = trace.scope("targetmachine");
            if o.cache_target_machine {
                TM_CACHE.with(|c| {
                    c.borrow_mut()
                        .entry(o.isa.name())
                        .or_insert_with(|| build_target_machine(o.isa));
                });
            } else {
                let tm = build_target_machine(o.isa);
                std::hint::black_box(&tm);
            }
        }

        // --- IR construction ---
        let mut lir = {
            let _t = trace.scope("irgen");
            lir::construct(module, o.pair_repr)
        };

        // --- Optimization passes (-O2), each a full IR rewrite, driven by
        // a legacy-style pass manager that tracks analyses. ---
        if o.mode == OptMode::Optimized {
            let _t = trace.scope("opt");
            let mut analyses: HashMap<&'static str, bool> = HashMap::new();
            let mut run_pass =
                |name: &'static str,
                 needs: &[&'static str],
                 lir: &mut Module,
                 f: &dyn Fn(&qc_ir::Function) -> qc_ir::Function| {
                    // Legacy pass-manager bookkeeping (Sec. V-B8: ~5% of time).
                    for n in needs {
                        analyses.entry(n).or_insert(true);
                    }
                    let _t = trace.scope(name);
                    let mut out = Module::new(&lir.name);
                    for func in lir.functions() {
                        out.push_function(f(func));
                    }
                    analyses.clear(); // transformation invalidates analyses
                    *lir = out;
                };
            run_pass("cse", &["domtree"], &mut lir, &lir::pass_cse);
            run_pass("instcombine", &[], &mut lir, &lir::pass_instcombine);
            run_pass("licm", &["domtree", "loops"], &mut lir, &lir::pass_licm);
            run_pass("dce", &[], &mut lir, &lir::pass_dce);
            // -O2 revisits the scalar passes after LICM exposes new
            // opportunities (LLVM runs InstCombine several times).
            run_pass("cse2", &["domtree"], &mut lir, &lir::pass_cse);
            run_pass("instcombine2", &[], &mut lir, &lir::pass_instcombine);
            run_pass("dce2", &[], &mut lir, &lir::pass_dce);
        }

        // --- Pre-ISel IR passes: scan for constructs that never occur. ---
        {
            let _t = trace.scope("irpasses");
            let mut matches = 0u64;
            for pass in [
                "div128expand",
                "constintrinsics",
                "vectorcombine",
                "amxlower",
            ] {
                let _t = trace.scope(pass);
                for func in lir.functions() {
                    for block in func.blocks() {
                        for &inst in func.block_insts(block) {
                            // Pattern checks that never fire on query code.
                            let data = func.inst(inst);
                            if matches!(
                                data,
                                qc_ir::InstData::Binary {
                                    op: qc_ir::Opcode::URem,
                                    ty: qc_ir::Type::I128,
                                    ..
                                }
                            ) {
                                matches += 1;
                            }
                        }
                    }
                }
            }
            stats.bump("preisel_matches", matches);
        }

        let selector = match (o.mode, o.global_isel) {
            (OptMode::Cheap, false) => Selector::Fast,
            (OptMode::Optimized, false) => Selector::Dag,
            (OptMode::Cheap, true) => Selector::GlobalCheap,
            (OptMode::Optimized, true) => Selector::GlobalOpt,
        };
        let iopts = IselOptions {
            small_pic: o.small_pic,
            fastisel_crc32: o.fastisel_crc32,
        };

        let mut image = ImageBuilder::new(o.isa);
        let func_names: Vec<String> = lir.functions().iter().map(|f| f.name.clone()).collect();
        let mut used_syms: HashSet<String> = HashSet::new();

        for func in lir.functions() {
            // --- Instruction selection ---
            let out = {
                let _t = trace.scope("isel");
                let sub = match selector {
                    Selector::Fast => "fastisel",
                    Selector::Dag => "selectiondag",
                    Selector::GlobalCheap | Selector::GlobalOpt => "globalisel",
                };
                let _t2 = trace.scope(sub);
                isel::select(func, selector, iopts)?
            };
            stats.bump("fallback_calls", out.stats.fallback_calls);
            stats.bump("fallback_i128", out.stats.fallback_i128);
            stats.bump("fallback_struct", out.stats.fallback_struct);
            stats.bump("fallback_intrinsic", out.stats.fallback_intrinsic);
            stats.bump("dag_nodes", out.stats.dag_nodes);
            stats.bump("known_bits_queries", out.stats.known_bits_queries);
            stats.bump("gmir_insts", out.stats.gmir_insts);
            let mut vcode = out.vcode;

            // --- Register allocation (with two-address rewriting) ---
            let alloc = {
                let _t = trace.scope("regalloc");
                {
                    let _t2 = trace.scope("twoaddr");
                    ra::two_address_pass(&mut vcode, o.isa);
                }
                match o.mode {
                    OptMode::Cheap => ra::allocate_fast(&vcode, o.isa),
                    OptMode::Optimized => ra::allocate_greedy(&vcode, o.isa, trace),
                }
            };
            stats.bump("spilled", alloc.spills);

            // --- Other back-end passes: prologue/epilogue insertion
            // (frame finalization) plus assorted small passes. ---
            {
                let _t = trace.scope("otherpasses");
                let mut frame_refs = 0u64;
                for insts in &vcode.blocks {
                    for inst in insts {
                        if matches!(inst, MInst::FrameAddr { .. }) {
                            frame_refs += 1;
                        }
                        inst.for_each_use(|v| {
                            if matches!(alloc.locs[v as usize], qc_backend::mir::Loc::Spill(_)) {
                                frame_refs += 1;
                            }
                        });
                    }
                }
                stats.bump("frame_refs", frame_refs);
            }

            // --- AsmPrinter: MC lowering with hooks and string labels ---
            let (code, relocs, frame) = {
                let _t = trace.scope("asmprinter");
                // Frame area for QIR stack slots (byte-offset addressed).
                let user_frame: u32 = func.stack_slots().iter().fold(0u32, |acc, s| {
                    ((acc + s.align - 1) & !(s.align - 1)) + s.size
                });
                let mut emitter =
                    MirEmitter::new(o.isa, &alloc, &func_names, vcode.blocks.len(), user_frame);
                // String-keyed labels, as in LLVM's MC layer (Sec. V-B6).
                let mut label_names: HashMap<String, usize> = HashMap::new();
                for b in 0..vcode.blocks.len() {
                    label_names.insert(format!("{}_bb{}", func.name, b), b);
                }
                // Emission hooks (virtual calls per instruction); the
                // unwind plug-in counts call sites.
                let mut call_sites = 0u64;
                let mut hooks: Vec<EmitHook<'_>> = vec![Box::new(|inst: &MInst| {
                    if inst.is_call() {
                        call_sites += 1;
                    }
                })];
                emitter.prologue(&vcode.params);
                for (b, insts) in vcode.blocks.iter().enumerate() {
                    // Label lookup through the string map.
                    let key = format!("{}_bb{}", func.name, b);
                    let bb = *label_names.get(&key).expect("label");
                    emitter.bind_block(bb);
                    for inst in insts {
                        for h in &mut hooks {
                            h(inst);
                        }
                        // MC lowering: route calls per code model.
                        match inst {
                            MInst::CallRt {
                                target: CallTarget::Sym(name),
                                args,
                                ret,
                            } => {
                                used_syms.insert(name.clone());
                                let routed = if o.small_pic {
                                    MInst::CallRt {
                                        target: CallTarget::Sym(format!("plt${name}")),
                                        args: args.clone(),
                                        ret: ret.clone(),
                                    }
                                } else {
                                    let addr = resolve_runtime(name).ok_or_else(|| {
                                        BackendError::new(format!("unknown symbol {name}"))
                                    })?;
                                    MInst::CallRt {
                                        target: CallTarget::Abs(addr),
                                        args: args.clone(),
                                        ret: ret.clone(),
                                    }
                                };
                                emitter.emit_inst(&routed)?;
                            }
                            other => emitter.emit_inst(other)?,
                        }
                    }
                }
                drop(hooks);
                stats.bump("unwind_call_sites", call_sites);
                emitter.finish()
            };
            let len = code.len();
            let off = image.add_function(&func.name, code, relocs);
            // Unwind registration plug-in.
            image.add_unwind(
                off,
                UnwindEntry {
                    start: 0,
                    end: len,
                    frame_size: frame,
                    synchronous_only: false,
                },
            );
        }

        // --- PLT + GOT (Small-PIC): one pair per module. ---
        if o.small_pic {
            let _t = trace.scope("asmprinter");
            let mut syms: Vec<String> = used_syms.iter().cloned().collect();
            syms.sort();
            for name in &syms {
                // GOT slot holding the absolute runtime address.
                let got = format!("got${name}");
                image.add_data(
                    &got,
                    vec![0u8; 8],
                    8,
                    vec![qc_target::Reloc {
                        offset: 0,
                        kind: qc_target::RelocKind::Abs64,
                        sym: SymbolRef::named(name),
                        addend: 0,
                    }],
                );
                // PLT stub: load the GOT slot, jump through it.
                let mut masm = qc_target::new_masm(o.isa);
                let scratch = o.isa.abi().scratch;
                masm.mov_sym(scratch, SymbolRef::named(&got));
                masm.load(qc_target::Width::W64, scratch, scratch, None, 0);
                // A jump, not a call: the PLT is entered by a near call.
                match o.isa {
                    Isa::Tx64 | Isa::Ta64 => masm.call_ind(scratch),
                }
                masm.ret();
                let (code, relocs) = Box::new(masm).finish();
                image.add_function(&format!("plt${name}"), code, relocs);
            }
            stats.bump("plt_entries", syms.len() as u64);
        }

        stats.functions = module.len();
        Ok(Parts {
            image,
            stats,
            func_names,
            used_syms,
            lir,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qc_ir::{CmpOp, FunctionBuilder, Opcode, Signature, Type};
    use qc_runtime::RuntimeState;
    use qc_target::Trap;

    fn run_with(
        options: LvmOptions,
        build: impl FnOnce(&mut FunctionBuilder),
        sig: Signature,
        args: &[u64],
    ) -> Result<[u64; 2], Trap> {
        let mut b = FunctionBuilder::new("f", sig);
        build(&mut b);
        let f = b.finish();
        qc_ir::verify_function(&f).unwrap();
        let mut m = Module::new("m");
        m.push_function(f);
        let backend = LvmBackend::with_options(options);
        let mut exe = match backend.compile(&m, &TimeTrace::disabled()) {
            Ok(e) => e,
            Err(e) => panic!("{e}"),
        };
        let mut state = RuntimeState::new();
        exe.call(&mut state, "f", args)
    }

    fn matrix() -> Vec<LvmOptions> {
        let mut out = Vec::new();
        for isa in [Isa::Tx64, Isa::Ta64] {
            for mode in [OptMode::Cheap, OptMode::Optimized] {
                out.push(LvmOptions::defaults(isa, mode));
            }
        }
        // GlobalISel variants (TA64).
        for mode in [OptMode::Cheap, OptMode::Optimized] {
            let mut o = LvmOptions::defaults(Isa::Ta64, mode);
            o.global_isel = true;
            out.push(o);
        }
        // Struct-pair + large-model ablations.
        let mut o = LvmOptions::defaults(Isa::Tx64, OptMode::Cheap);
        o.pair_repr = PairRepr::Struct;
        out.push(o);
        let mut o = LvmOptions::defaults(Isa::Tx64, OptMode::Cheap);
        o.small_pic = false;
        out.push(o);
        out
    }

    #[test]
    fn loop_with_phis_across_option_matrix() {
        let sig = Signature::new(vec![Type::I64], Type::I64);
        for options in matrix() {
            let r = run_with(
                options,
                |b| {
                    let entry = b.entry_block();
                    let header = b.create_block();
                    let body = b.create_block();
                    let exit = b.create_block();
                    b.switch_to(entry);
                    let zero = b.iconst(Type::I64, 0);
                    b.jump(header);
                    b.switch_to(header);
                    let i = b.phi(Type::I64, vec![(entry, zero)]);
                    let s = b.phi(Type::I64, vec![(entry, zero)]);
                    let n = b.param(0);
                    let c = b.icmp(CmpOp::SLt, Type::I64, i, n);
                    b.branch(c, body, exit);
                    b.switch_to(body);
                    let s2 = b.add(Type::I64, s, i);
                    let one = b.iconst(Type::I64, 1);
                    let i2 = b.add(Type::I64, i, one);
                    b.phi_add_incoming(i, body, i2);
                    b.phi_add_incoming(s, body, s2);
                    b.jump(header);
                    b.switch_to(exit);
                    b.ret(Some(s));
                },
                sig.clone(),
                &[100],
            )
            .unwrap_or_else(|t| panic!("{options:?}: {t}"));
            assert_eq!(r[0], 4950, "{options:?}");
        }
    }

    #[test]
    fn i128_and_overflow_across_modes() {
        let sig = Signature::new(vec![Type::I64, Type::I64], Type::I128);
        for options in matrix() {
            let r = run_with(
                options,
                |b| {
                    let e = b.entry_block();
                    b.switch_to(e);
                    let (x, y) = (b.param(0), b.param(1));
                    let wx = b.sext(Type::I128, x);
                    let wy = b.sext(Type::I128, y);
                    let s = b.binary(Opcode::SAddTrap, Type::I128, wx, wy);
                    let p = b.binary(Opcode::SMulTrap, Type::I128, s, wy);
                    b.ret(Some(p));
                },
                sig.clone(),
                &[100, 200],
            )
            .unwrap_or_else(|t| panic!("{options:?}: {t}"));
            assert_eq!(r[0], 60_000, "{options:?}");
        }
    }

    #[test]
    fn global_isel_is_rejected_on_tx64() {
        let sig = Signature::new(vec![Type::I64], Type::I64);
        let mut b = FunctionBuilder::new("f", sig);
        let e = b.entry_block();
        b.switch_to(e);
        let x = b.param(0);
        b.ret(Some(x));
        let mut m = Module::new("m");
        m.push_function(b.finish());
        let mut o = LvmOptions::defaults(Isa::Tx64, OptMode::Cheap);
        o.global_isel = true;
        let err = LvmBackend::with_options(o)
            .compile(&m, &TimeTrace::disabled())
            .err()
            .expect("must be rejected");
        assert!(err.to_string().contains("GlobalISel"), "{err}");
    }

    #[test]
    fn large_code_model_turns_calls_into_fallbacks() {
        // The historical behavior the paper fixed with Small-PIC: under
        // the large model every call is a FastISel fallback.
        let sig = Signature::new(vec![Type::I64], Type::I64);
        let build = || {
            let mut b = FunctionBuilder::new("f", sig.clone());
            let ext = b.declare_ext_func(qc_ir::ExtFuncDecl {
                name: "rt_alloc".into(),
                sig: Signature::new(vec![Type::I64], Type::Ptr),
            });
            let e = b.entry_block();
            b.switch_to(e);
            let x = b.param(0);
            let p = b.call(ext, vec![x]).unwrap();
            b.store(Type::I64, p, x, 0);
            let v = b.load(Type::I64, p, 0);
            b.ret(Some(v));
            let mut m = Module::new("m");
            m.push_function(b.finish());
            m
        };
        let mut state = RuntimeState::new();
        for (small_pic, expect_fallbacks) in [(true, false), (false, true)] {
            let mut o = LvmOptions::defaults(Isa::Tx64, OptMode::Cheap);
            o.small_pic = small_pic;
            let m = build();
            let mut exe = LvmBackend::with_options(o)
                .compile(&m, &TimeTrace::disabled())
                .unwrap();
            let calls = exe
                .compile_stats()
                .counters
                .get("fallback_calls")
                .copied()
                .unwrap_or(0);
            assert_eq!(calls > 0, expect_fallbacks, "small_pic={small_pic}");
            // Either way the code must run correctly.
            let r = exe.call(&mut state, "f", &[64]).unwrap();
            assert_eq!(r[0], 64, "small_pic={small_pic}");
        }
    }

    #[test]
    fn fastisel_counts_i128_fallbacks() {
        let sig = Signature::new(vec![Type::I64], Type::I128);
        let mut b = FunctionBuilder::new("f", sig);
        let e = b.entry_block();
        b.switch_to(e);
        let x = b.param(0);
        let w = b.sext(Type::I128, x);
        let s = b.binary(Opcode::SAddTrap, Type::I128, w, w);
        b.ret(Some(s));
        let mut m = Module::new("m");
        m.push_function(b.finish());
        let backend = LvmBackend::new(Isa::Tx64, OptMode::Cheap);
        let exe = backend.compile(&m, &TimeTrace::disabled()).unwrap();
        assert!(
            exe.compile_stats()
                .counters
                .get("fallback_i128")
                .copied()
                .unwrap_or(0)
                > 0,
            "{:?}",
            exe.compile_stats().counters
        );
    }

    #[test]
    fn strings_fall_back_in_struct_mode_only() {
        let mut state = RuntimeState::new();
        let s1 = state.intern_string("lvm string beyond the inline size");
        let sig = Signature::new(vec![Type::String], Type::I64);
        let build = |b: &mut FunctionBuilder| {
            let ext = b.declare_ext_func(qc_ir::ExtFuncDecl {
                name: "rt_str_hash".into(),
                sig: Signature::new(vec![Type::String], Type::I64),
            });
            let e = b.entry_block();
            b.switch_to(e);
            let s = b.param(0);
            let h = b.call(ext, vec![s]).unwrap();
            b.ret(Some(h));
        };
        let mut fallbacks = Vec::new();
        for repr in [PairRepr::Scalars, PairRepr::Struct] {
            let mut bld = FunctionBuilder::new("f", sig.clone());
            build(&mut bld);
            let mut m = Module::new("m");
            m.push_function(bld.finish());
            let mut o = LvmOptions::defaults(Isa::Tx64, OptMode::Cheap);
            o.pair_repr = repr;
            let mut exe = LvmBackend::with_options(o)
                .compile(&m, &TimeTrace::disabled())
                .unwrap();
            let c = exe.compile_stats().counters.clone();
            fallbacks.push(
                c.get("fallback_struct").copied().unwrap_or(0)
                    + c.get("fallback_calls").copied().unwrap_or(0),
            );
            let r = exe.call(&mut state, "f", &[s1.lo, s1.hi]).unwrap();
            assert_eq!(r[0], qc_runtime::hash_string(&s1), "{repr:?}");
        }
        assert_eq!(fallbacks[0], 0, "scalar mode must not fall back");
        assert!(fallbacks[1] > 0, "struct mode must fall back");
    }

    #[test]
    fn phase_trace_matches_figure2_structure() {
        let sig = Signature::new(vec![Type::I64], Type::I64);
        let mut b = FunctionBuilder::new("f", sig);
        let e = b.entry_block();
        b.switch_to(e);
        let x = b.param(0);
        let y = b.add(Type::I64, x, x);
        b.ret(Some(y));
        let mut m = Module::new("m");
        m.push_function(b.finish());
        let trace = TimeTrace::new();
        let _ = LvmBackend::new(Isa::Tx64, OptMode::Optimized)
            .compile(&m, &trace)
            .unwrap();
        let report = trace.report();
        for phase in [
            "targetmachine",
            "irgen",
            "opt",
            "irpasses",
            "isel",
            "regalloc",
            "otherpasses",
            "asmprinter",
            "link",
            "irdtor",
        ] {
            assert!(report.total(phase).is_some(), "missing phase {phase}");
        }
        assert!(report.total("link/phase3_apply").is_some());
        assert!(report.total("isel/selectiondag").is_some());
    }

    #[test]
    fn optimized_code_is_smaller_or_equal() {
        // CSE + folding should not produce more code than cheap mode.
        let sig = Signature::new(vec![Type::I64], Type::I64);
        let build = |b: &mut FunctionBuilder| {
            let e = b.entry_block();
            b.switch_to(e);
            let x = b.param(0);
            let a = b.add(Type::I64, x, x);
            let a2 = b.add(Type::I64, x, x);
            let s = b.add(Type::I64, a, a2);
            let four = b.iconst(Type::I64, 4);
            let m = b.mul(Type::I64, s, four);
            b.ret(Some(m));
        };
        let mut sizes = Vec::new();
        for mode in [OptMode::Cheap, OptMode::Optimized] {
            let mut bld = FunctionBuilder::new("f", sig.clone());
            build(&mut bld);
            let mut m = Module::new("m");
            m.push_function(bld.finish());
            let exe = LvmBackend::new(Isa::Tx64, mode)
                .compile(&m, &TimeTrace::disabled())
                .unwrap();
            sizes.push(exe.compile_stats().code_bytes);
        }
        assert!(
            sizes[1] <= sizes[0],
            "opt {} vs cheap {}",
            sizes[1],
            sizes[0]
        );
    }
}
