//! IR verifier: structural, type, and SSA-dominance checks.

use crate::cfg::{Cfg, ReversePostorder};
use crate::domtree::DomTree;
use crate::entities::{Block, Inst, Value};
use crate::function::{Function, Module, ValueDef};
use crate::instr::{CastOp, InstData};
use crate::types::Type;
use std::error::Error;
use std::fmt;

/// Error produced by [`verify_function`] / [`verify_module`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct VerifyError {
    /// Function name the error occurred in.
    pub func: String,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for VerifyError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "verification of @{} failed: {}", self.func, self.message)
    }
}

impl Error for VerifyError {}

struct Verifier<'a> {
    func: &'a Function,
    cfg: Cfg,
    dt: DomTree,
    rpo: ReversePostorder,
    /// block each instruction belongs to
    inst_block: Vec<Option<Block>>,
    /// position of each instruction within its block
    inst_pos: Vec<usize>,
}

impl<'a> Verifier<'a> {
    fn fail(&self, message: impl Into<String>) -> VerifyError {
        VerifyError {
            func: self.func.name.clone(),
            message: message.into(),
        }
    }

    fn check_structure(&mut self) -> Result<(), VerifyError> {
        for block in self.func.blocks() {
            let insts = self.func.block_insts(block);
            if insts.is_empty() {
                return Err(self.fail(format!("block {block} is empty")));
            }
            let mut seen_non_phi = false;
            for (pos, &inst) in insts.iter().enumerate() {
                if self.inst_block[inst.index()].is_some() {
                    return Err(self.fail(format!("instruction {inst} appears twice")));
                }
                self.inst_block[inst.index()] = Some(block);
                self.inst_pos[inst.index()] = pos;
                let data = self.func.inst(inst);
                let is_last = pos + 1 == insts.len();
                if data.is_terminator() != is_last {
                    return Err(self.fail(format!(
                        "block {block}: terminator placement wrong at {inst} ({})",
                        data.name()
                    )));
                }
                match data {
                    InstData::Phi { .. } if seen_non_phi => {
                        return Err(self.fail(format!(
                            "block {block}: phi {inst} after non-phi instruction"
                        )));
                    }
                    InstData::Phi { .. } => {}
                    _ => seen_non_phi = true,
                }
            }
        }
        Ok(())
    }

    fn ty_of(&self, v: Value) -> Type {
        self.func.value_type(v)
    }

    fn expect_ty(&self, inst: Inst, v: Value, ty: Type) -> Result<(), VerifyError> {
        let got = self.ty_of(v);
        // Pointers and 64-bit integers are interchangeable (the C back-end
        // round-trips addresses through plain integers, like CIR).
        let compat = got == ty
            || (matches!(got, Type::I64 | Type::Ptr) && matches!(ty, Type::I64 | Type::Ptr));
        if !compat {
            return Err(self.fail(format!(
                "{inst} ({}): operand {v} has type {}, expected {ty}",
                self.func.inst(inst).name(),
                self.ty_of(v)
            )));
        }
        Ok(())
    }

    fn check_types(&self) -> Result<(), VerifyError> {
        for block in self.func.blocks() {
            for &inst in self.func.block_insts(block) {
                self.check_inst_types(block, inst)?;
            }
        }
        Ok(())
    }

    fn check_inst_types(&self, block: Block, inst: Inst) -> Result<(), VerifyError> {
        let data = self.func.inst(inst);
        match data {
            InstData::IConst { ty, .. } => {
                if !ty.is_int() {
                    return Err(self.fail(format!("{inst}: iconst of non-integer type {ty}")));
                }
            }
            InstData::FConst { .. } => {}
            InstData::Binary { op, ty, args } => {
                if op.is_float() {
                    if *ty != Type::F64 {
                        return Err(self.fail(format!("{inst}: float op on {ty}")));
                    }
                } else if !ty.is_int() || *ty == Type::Bool || *ty == Type::Ptr {
                    return Err(self.fail(format!("{inst}: integer op on {ty}")));
                }
                self.expect_ty(inst, args[0], *ty)?;
                self.expect_ty(inst, args[1], *ty)?;
            }
            InstData::Cmp { ty, args, .. } => {
                if !ty.is_int() {
                    return Err(self.fail(format!("{inst}: cmp on non-integer {ty}")));
                }
                self.expect_ty(inst, args[0], *ty)?;
                self.expect_ty(inst, args[1], *ty)?;
            }
            InstData::FCmp { args, .. } => {
                self.expect_ty(inst, args[0], Type::F64)?;
                self.expect_ty(inst, args[1], Type::F64)?;
            }
            InstData::Cast { op, to, arg } => {
                let from = self.ty_of(*arg);
                match op {
                    CastOp::Zext | CastOp::Sext => {
                        if !from.is_int() || !to.is_int() || to.bits() < from.bits() {
                            return Err(
                                self.fail(format!("{inst}: invalid extension {from} -> {to}"))
                            );
                        }
                    }
                    CastOp::Trunc => {
                        if !from.is_int() || !to.is_int() || to.bits() > from.bits() {
                            return Err(
                                self.fail(format!("{inst}: invalid truncation {from} -> {to}"))
                            );
                        }
                    }
                    CastOp::SiToF => {
                        if !from.is_int() {
                            return Err(self.fail(format!("{inst}: sitof from {from}")));
                        }
                    }
                    CastOp::FToSi => {
                        if from != Type::F64 || !to.is_int() {
                            return Err(self.fail(format!("{inst}: ftosi {from} -> {to}")));
                        }
                    }
                }
            }
            InstData::Crc32 { args } | InstData::LongMulFold { args } => {
                self.expect_ty(inst, args[0], Type::I64)?;
                self.expect_ty(inst, args[1], Type::I64)?;
            }
            InstData::Select {
                ty,
                cond,
                if_true,
                if_false,
            } => {
                self.expect_ty(inst, *cond, Type::Bool)?;
                self.expect_ty(inst, *if_true, *ty)?;
                self.expect_ty(inst, *if_false, *ty)?;
            }
            InstData::Load { ty, ptr, .. } => {
                if *ty == Type::Void {
                    return Err(self.fail(format!("{inst}: load of void")));
                }
                self.expect_ty(inst, *ptr, Type::Ptr)?;
            }
            InstData::Store { ty, ptr, value, .. } => {
                self.expect_ty(inst, *ptr, Type::Ptr)?;
                self.expect_ty(inst, *value, *ty)?;
            }
            InstData::Gep {
                base, index, scale, ..
            } => {
                self.expect_ty(inst, *base, Type::Ptr)?;
                if let Some(i) = index {
                    self.expect_ty(inst, *i, Type::I64)?;
                }
                if !matches!(scale, 1 | 2 | 4 | 8 | 16) {
                    return Err(self.fail(format!("{inst}: invalid gep scale {scale}")));
                }
            }
            InstData::StackAddr { slot } => {
                if slot.index() >= self.func.stack_slots().len() {
                    return Err(self.fail(format!("{inst}: undeclared stack slot {slot}")));
                }
            }
            InstData::Call { callee, args } => {
                if callee.index() >= self.func.ext_funcs().len() {
                    return Err(self.fail(format!("{inst}: undeclared ext func {callee}")));
                }
                let sig = &self.func.ext_func(*callee).sig;
                if sig.params.len() != args.len() {
                    return Err(self.fail(format!(
                        "{inst}: call arity {} != {}",
                        args.len(),
                        sig.params.len()
                    )));
                }
                for (&arg, &ty) in args.iter().zip(&sig.params) {
                    self.expect_ty(inst, arg, ty)?;
                }
            }
            InstData::FuncAddr { .. } => {}
            InstData::Phi { ty, pairs } => {
                let mut preds: Vec<Block> = self.cfg.preds(block).to_vec();
                preds.sort_unstable();
                preds.dedup();
                let mut phi_preds: Vec<Block> = pairs.iter().map(|&(b, _)| b).collect();
                phi_preds.sort_unstable();
                let dup = phi_preds.windows(2).any(|w| w[0] == w[1]);
                if dup {
                    return Err(self.fail(format!("{inst}: duplicate phi predecessor")));
                }
                if phi_preds != preds {
                    return Err(self.fail(format!(
                        "{inst}: phi predecessors {phi_preds:?} do not match CFG preds {preds:?}"
                    )));
                }
                for &(_, v) in pairs {
                    self.expect_ty(inst, v, *ty)?;
                }
            }
            InstData::Branch { cond, .. } => {
                self.expect_ty(inst, *cond, Type::Bool)?;
            }
            InstData::Jump { .. } | InstData::Unreachable => {}
            InstData::Return { value } => match (value, self.func.sig.ret) {
                (None, Type::Void) => {}
                (Some(_), Type::Void) => {
                    return Err(self.fail(format!("{inst}: return value in void function")))
                }
                (None, ret) => {
                    return Err(self.fail(format!("{inst}: missing return value of type {ret}")))
                }
                (Some(v), ret) => self.expect_ty(inst, *v, ret)?,
            },
        }
        // Branch/jump targets must exist.
        for succ in data.successors() {
            if succ.index() >= self.func.num_blocks() {
                return Err(self.fail(format!("{inst}: branch to undefined block {succ}")));
            }
        }
        Ok(())
    }

    fn def_site(&self, v: Value) -> Option<(Block, usize)> {
        match self.func.value_def(v) {
            ValueDef::Param(_) => Some((self.func.entry_block(), 0)),
            ValueDef::Inst(i) => self.inst_block[i.index()].map(|b| (b, self.inst_pos[i.index()])),
        }
    }

    fn check_dominance(&self) -> Result<(), VerifyError> {
        for block in self.func.blocks() {
            if !self.rpo.is_reachable(block) {
                continue;
            }
            for &inst in self.func.block_insts(block) {
                let data = self.func.inst(inst);
                if let InstData::Phi { pairs, .. } = data {
                    for &(pred, v) in pairs {
                        let Some((db, _)) = self.def_site(v) else {
                            return Err(
                                self.fail(format!("{inst}: phi operand {v} defined in dead code"))
                            );
                        };
                        if self.rpo.is_reachable(pred) && !self.dt.dominates(db, pred) {
                            return Err(self.fail(format!(
                                "{inst}: phi operand {v} (defined in {db}) does not dominate edge from {pred}"
                            )));
                        }
                    }
                    continue;
                }
                let pos = self.inst_pos[inst.index()];
                let mut bad = None;
                data.for_each_arg(|v| {
                    if bad.is_some() {
                        return;
                    }
                    match self.def_site(v) {
                        None => bad = Some((v, "defined in dead code".to_string())),
                        Some((db, dp)) => {
                            let param = matches!(self.func.value_def(v), ValueDef::Param(_));
                            let ok = if db == block && !param {
                                dp < pos
                            } else {
                                self.dt.dominates(db, block)
                            };
                            if !ok {
                                bad = Some((
                                    v,
                                    format!("defined in {db} which does not dominate use"),
                                ));
                            }
                        }
                    }
                });
                if let Some((v, why)) = bad {
                    return Err(self.fail(format!("{inst}: use of {v} {why}")));
                }
            }
        }
        Ok(())
    }
}

/// Verifies a single function.
///
/// Checks performed: every block has exactly one trailing terminator,
/// Φ-instructions are at block starts and their predecessor lists match the
/// CFG, all operands have the expected types, and every use is dominated by
/// its definition.
///
/// # Errors
/// Returns the first violated invariant.
pub fn verify_function(func: &Function) -> Result<(), VerifyError> {
    let cfg = Cfg::compute(func);
    let rpo = ReversePostorder::compute(func, &cfg);
    let dt = DomTree::compute(func, &cfg, &rpo);
    let mut v = Verifier {
        func,
        cfg,
        dt,
        rpo,
        inst_block: vec![None; func.num_insts()],
        inst_pos: vec![0; func.num_insts()],
    };
    v.check_structure()?;
    v.check_types()?;
    v.check_dominance()
}

/// Verifies every function of a module.
///
/// # Errors
/// Returns the first violated invariant, with the function name attached.
pub fn verify_module(module: &Module) -> Result<(), VerifyError> {
    for func in module.functions() {
        verify_function(func)?;
    }
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::Signature;
    use crate::instr::CmpOp;

    #[test]
    fn accepts_valid_function() {
        let mut b = FunctionBuilder::new("ok", Signature::new(vec![Type::I64], Type::I64));
        let e = b.entry_block();
        b.switch_to(e);
        let x = b.param(0);
        let y = b.add(Type::I64, x, x);
        b.ret(Some(y));
        verify_function(&b.finish()).unwrap();
    }

    #[test]
    fn rejects_type_mismatch() {
        let mut b = FunctionBuilder::new("bad", Signature::new(vec![Type::I32], Type::I64));
        let e = b.entry_block();
        b.switch_to(e);
        let x = b.param(0);
        // i32 op declared as i64.
        let y = b.add(Type::I64, x, x);
        b.ret(Some(y));
        let err = verify_function(&b.finish()).unwrap_err();
        assert!(err.message.contains("expected i64"), "{err}");
    }

    #[test]
    fn rejects_return_type_mismatch() {
        let mut b = FunctionBuilder::new("bad", Signature::new(vec![Type::I32], Type::I64));
        let e = b.entry_block();
        b.switch_to(e);
        let x = b.param(0);
        b.ret(Some(x));
        assert!(verify_function(&b.finish()).is_err());
    }

    #[test]
    fn rejects_use_not_dominating() {
        // merge uses a value defined only on the `then` path.
        let mut b = FunctionBuilder::new("bad", Signature::new(vec![Type::Bool], Type::I64));
        let entry = b.entry_block();
        let t = b.create_block();
        let f = b.create_block();
        let m = b.create_block();
        b.switch_to(entry);
        let c = b.param(0);
        b.branch(c, t, f);
        b.switch_to(t);
        let v = b.iconst(Type::I64, 1);
        b.jump(m);
        b.switch_to(f);
        b.jump(m);
        b.switch_to(m);
        b.ret(Some(v));
        let err = verify_function(&b.finish()).unwrap_err();
        assert!(err.message.contains("does not dominate"), "{err}");
    }

    #[test]
    fn rejects_phi_with_wrong_preds() {
        let mut b = FunctionBuilder::new("bad", Signature::new(vec![Type::Bool], Type::I64));
        let entry = b.entry_block();
        let m = b.create_block();
        b.switch_to(entry);
        let one = b.iconst(Type::I64, 1);
        b.jump(m);
        b.switch_to(m);
        // phi lists a non-existent predecessor.
        let p = b.phi(Type::I64, vec![(entry, one), (m, one)]);
        b.ret(Some(p));
        let err = verify_function(&b.finish()).unwrap_err();
        assert!(err.message.contains("do not match CFG preds"), "{err}");
    }

    #[test]
    fn rejects_empty_block() {
        let mut b = FunctionBuilder::new("bad", Signature::new(vec![], Type::Void));
        let _dead = b.create_block();
        let e = b.entry_block();
        b.switch_to(e);
        b.ret(None);
        let err = verify_function(&b.finish()).unwrap_err();
        assert!(err.message.contains("empty"), "{err}");
    }

    #[test]
    fn rejects_bool_arithmetic() {
        let mut b = FunctionBuilder::new("bad", Signature::new(vec![Type::Bool], Type::Bool));
        let e = b.entry_block();
        b.switch_to(e);
        let x = b.param(0);
        let y = b.add(Type::Bool, x, x);
        b.ret(Some(y));
        assert!(verify_function(&b.finish()).is_err());
    }

    #[test]
    fn phi_operand_may_come_from_later_block() {
        // Loop back-edge: operand defined after the phi, still valid.
        let mut b = FunctionBuilder::new("loop", Signature::new(vec![], Type::Void));
        let entry = b.entry_block();
        let h = b.create_block();
        b.switch_to(entry);
        let zero = b.iconst(Type::I64, 0);
        b.jump(h);
        b.switch_to(h);
        let i = b.phi(Type::I64, vec![(entry, zero)]);
        let one = b.iconst(Type::I64, 1);
        let i2 = b.add(Type::I64, i, one);
        b.phi_add_incoming(i, h, i2);
        let c = b.icmp(CmpOp::SLt, Type::I64, i2, one);
        let exit = b.create_block();
        b.branch(c, h, exit);
        b.switch_to(exit);
        b.ret(None);
        verify_function(&b.finish()).unwrap();
    }
}
