//! Value types of the IR.

use std::fmt;

/// The type of an SSA value.
///
/// The set mirrors the needs of compiled query code (paper Sec. III-A):
/// scalar integers up to 128 bits (SQL decimals are `I128`), double-precision
/// floats, raw pointers, and the 16-byte by-value `String` descriptor that is
/// "passed very frequently by-value to and from runtime functions".
///
/// `I128` and `String` occupy two 64-bit machine registers; this is exactly
/// the property that makes them awkward for fast instruction selectors (the
/// paper's FastISel falls back to SelectionDAG on them, Sec. V-B3b).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Type {
    /// A boolean, stored as one byte in memory.
    Bool,
    /// 8-bit integer.
    I8,
    /// 16-bit integer.
    I16,
    /// 32-bit integer.
    I32,
    /// 64-bit integer.
    I64,
    /// 128-bit integer (SQL decimal representation).
    I128,
    /// 64-bit IEEE float.
    F64,
    /// An untyped pointer into the runtime address space.
    Ptr,
    /// A 16-byte string descriptor (length + prefix + pointer), by value.
    String,
    /// The absence of a value; only valid as a function return type.
    Void,
}

impl Type {
    /// Size of the type in memory, in bytes.
    ///
    /// # Panics
    /// Panics for [`Type::Void`], which has no size.
    pub fn bytes(self) -> u32 {
        match self {
            Type::Bool | Type::I8 => 1,
            Type::I16 => 2,
            Type::I32 => 4,
            Type::I64 | Type::F64 | Type::Ptr => 8,
            Type::I128 | Type::String => 16,
            Type::Void => panic!("void has no size"),
        }
    }

    /// Number of 64-bit machine registers a value of this type occupies.
    pub fn reg_count(self) -> u32 {
        match self {
            Type::Void => 0,
            Type::I128 | Type::String => 2,
            _ => 1,
        }
    }

    /// Whether this is an integer type (including [`Type::Bool`] and
    /// [`Type::Ptr`], which all back-ends treat as integers).
    pub fn is_int(self) -> bool {
        !matches!(self, Type::F64 | Type::Void)
    }

    /// Whether the type is a scalar integer of at most 64 bits, i.e. fits
    /// a single machine register ("register-sized" in FastISel terms).
    pub fn is_reg_sized_int(self) -> bool {
        self.is_int() && self.reg_count() == 1
    }

    /// Bit width for integer types.
    ///
    /// # Panics
    /// Panics for non-integer types.
    pub fn bits(self) -> u32 {
        assert!(self.is_int(), "bits() on non-integer type {self}");
        if self == Type::Bool {
            1
        } else {
            self.bytes() * 8
        }
    }

    /// All types, for exhaustive property tests.
    pub fn all() -> [Type; 10] {
        [
            Type::Bool,
            Type::I8,
            Type::I16,
            Type::I32,
            Type::I64,
            Type::I128,
            Type::F64,
            Type::Ptr,
            Type::String,
            Type::Void,
        ]
    }

    /// Parses the textual name used by the printer.
    pub fn from_name(s: &str) -> Option<Type> {
        Some(match s {
            "bool" => Type::Bool,
            "i8" => Type::I8,
            "i16" => Type::I16,
            "i32" => Type::I32,
            "i64" => Type::I64,
            "i128" => Type::I128,
            "f64" => Type::F64,
            "ptr" => Type::Ptr,
            "string" => Type::String,
            "void" => Type::Void,
            _ => return None,
        })
    }
}

impl fmt::Display for Type {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            Type::Bool => "bool",
            Type::I8 => "i8",
            Type::I16 => "i16",
            Type::I32 => "i32",
            Type::I64 => "i64",
            Type::I128 => "i128",
            Type::F64 => "f64",
            Type::Ptr => "ptr",
            Type::String => "string",
            Type::Void => "void",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sizes_and_register_counts() {
        assert_eq!(Type::I32.bytes(), 4);
        assert_eq!(Type::I128.bytes(), 16);
        assert_eq!(Type::String.bytes(), 16);
        assert_eq!(Type::I64.reg_count(), 1);
        assert_eq!(Type::I128.reg_count(), 2);
        assert_eq!(Type::String.reg_count(), 2);
        assert_eq!(Type::Void.reg_count(), 0);
    }

    #[test]
    fn int_classification() {
        assert!(Type::Bool.is_int());
        assert!(Type::Ptr.is_int());
        assert!(!Type::F64.is_int());
        assert!(!Type::Void.is_int());
        assert!(Type::I64.is_reg_sized_int());
        assert!(!Type::I128.is_reg_sized_int());
        assert!(!Type::String.is_reg_sized_int());
    }

    #[test]
    fn bit_widths() {
        assert_eq!(Type::Bool.bits(), 1);
        assert_eq!(Type::I8.bits(), 8);
        assert_eq!(Type::I128.bits(), 128);
    }

    #[test]
    #[should_panic(expected = "void has no size")]
    fn void_has_no_size() {
        let _ = Type::Void.bytes();
    }

    #[test]
    fn names_roundtrip() {
        for ty in Type::all() {
            assert_eq!(Type::from_name(&ty.to_string()), Some(ty));
        }
        assert_eq!(Type::from_name("i7"), None);
    }
}
