//! Stable structural hashing of IR, keying the engine's compile-result
//! cache.
//!
//! Two modules hash equal exactly when a back-end would emit identical
//! code for them: same functions in the same order, each with the same
//! signature, blocks, instructions, operands, stack slots, and external
//! references. The hash deliberately *excludes* the module name — the
//! code generator derives it from the query name, and two differently
//! named queries with structurally identical pipelines compile to the
//! same machine code (string literals are resolved through the context
//! block at run time, not baked into the IR).
//!
//! The hash walks the dense entity storage directly in layout order, so
//! it is deterministic across processes and platforms (FNV-1a over
//! little-endian field encodings, no pointer values, no `HashMap`
//! iteration order).

use crate::entities::{Block, Value};
use crate::function::{Function, Module, Signature};
use crate::instr::InstData;
use crate::types::Type;

const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Incremental FNV-1a writer over typed fields.
struct Fnv(u64);

impl Fnv {
    fn new() -> Fnv {
        Fnv(FNV_OFFSET)
    }

    fn bytes(&mut self, bytes: &[u8]) {
        for &b in bytes {
            self.0 ^= u64::from(b);
            self.0 = self.0.wrapping_mul(FNV_PRIME);
        }
    }

    fn u8(&mut self, v: u8) {
        self.bytes(&[v]);
    }

    fn u32(&mut self, v: u32) {
        self.bytes(&v.to_le_bytes());
    }

    fn u64(&mut self, v: u64) {
        self.bytes(&v.to_le_bytes());
    }

    fn i128(&mut self, v: i128) {
        self.bytes(&v.to_le_bytes());
    }

    fn str(&mut self, s: &str) {
        // Length prefix keeps ("ab","c") distinct from ("a","bc").
        self.u64(s.len() as u64);
        self.bytes(s.as_bytes());
    }

    fn ty(&mut self, ty: Type) {
        self.u8(ty as u8);
    }

    fn value(&mut self, v: Value) {
        self.u32(v.index() as u32);
    }

    fn block(&mut self, b: Block) {
        self.u32(b.index() as u32);
    }

    fn sig(&mut self, sig: &Signature) {
        self.u64(sig.params.len() as u64);
        for &p in &sig.params {
            self.ty(p);
        }
        self.ty(sig.ret);
    }
}

/// Per-variant tags; explicit so reordering the `InstData` enum cannot
/// silently change hashes between builds.
fn inst_tag(data: &InstData) -> u8 {
    match data {
        InstData::IConst { .. } => 1,
        InstData::FConst { .. } => 2,
        InstData::Binary { .. } => 3,
        InstData::Cmp { .. } => 4,
        InstData::FCmp { .. } => 5,
        InstData::Cast { .. } => 6,
        InstData::Crc32 { .. } => 7,
        InstData::LongMulFold { .. } => 8,
        InstData::Select { .. } => 9,
        InstData::Load { .. } => 10,
        InstData::Store { .. } => 11,
        InstData::Gep { .. } => 12,
        InstData::StackAddr { .. } => 13,
        InstData::Call { .. } => 14,
        InstData::FuncAddr { .. } => 15,
        InstData::Phi { .. } => 16,
        InstData::Jump { .. } => 17,
        InstData::Branch { .. } => 18,
        InstData::Return { .. } => 19,
        InstData::Unreachable => 20,
    }
}

fn hash_inst(h: &mut Fnv, data: &InstData) {
    h.u8(inst_tag(data));
    match data {
        InstData::IConst { ty, imm } => {
            h.ty(*ty);
            h.i128(*imm);
        }
        InstData::FConst { imm } => h.u64(imm.to_bits()),
        InstData::Binary { op, ty, args } => {
            h.u8(*op as u8);
            h.ty(*ty);
            h.value(args[0]);
            h.value(args[1]);
        }
        InstData::Cmp { op, ty, args } => {
            h.u8(*op as u8);
            h.ty(*ty);
            h.value(args[0]);
            h.value(args[1]);
        }
        InstData::FCmp { op, args } => {
            h.u8(*op as u8);
            h.value(args[0]);
            h.value(args[1]);
        }
        InstData::Cast { op, to, arg } => {
            h.u8(*op as u8);
            h.ty(*to);
            h.value(*arg);
        }
        InstData::Crc32 { args } | InstData::LongMulFold { args } => {
            h.value(args[0]);
            h.value(args[1]);
        }
        InstData::Select {
            ty,
            cond,
            if_true,
            if_false,
        } => {
            h.ty(*ty);
            h.value(*cond);
            h.value(*if_true);
            h.value(*if_false);
        }
        InstData::Load { ty, ptr, offset } => {
            h.ty(*ty);
            h.value(*ptr);
            h.u32(*offset as u32);
        }
        InstData::Store {
            ty,
            ptr,
            value,
            offset,
        } => {
            h.ty(*ty);
            h.value(*ptr);
            h.value(*value);
            h.u32(*offset as u32);
        }
        InstData::Gep {
            base,
            offset,
            index,
            scale,
        } => {
            h.value(*base);
            h.u64(*offset as u64);
            match index {
                Some(i) => {
                    h.u8(1);
                    h.value(*i);
                }
                None => h.u8(0),
            }
            h.u8(*scale);
        }
        InstData::StackAddr { slot } => h.u32(slot.index() as u32),
        InstData::Call { callee, args } => {
            h.u32(callee.index() as u32);
            h.u64(args.len() as u64);
            for &a in args {
                h.value(a);
            }
        }
        InstData::FuncAddr { func } => h.u32(func.index() as u32),
        InstData::Phi { ty, pairs } => {
            h.ty(*ty);
            h.u64(pairs.len() as u64);
            for &(b, v) in pairs {
                h.block(b);
                h.value(v);
            }
        }
        InstData::Jump { dest } => h.block(*dest),
        InstData::Branch {
            cond,
            then_dest,
            else_dest,
        } => {
            h.value(*cond);
            h.block(*then_dest);
            h.block(*else_dest);
        }
        InstData::Return { value } => match value {
            Some(v) => {
                h.u8(1);
                h.value(*v);
            }
            None => h.u8(0),
        },
        InstData::Unreachable => {}
    }
}

fn hash_function_into(h: &mut Fnv, func: &Function) {
    h.str(&func.name);
    h.sig(&func.sig);
    h.u64(func.stack_slots().len() as u64);
    for slot in func.stack_slots() {
        h.u32(slot.size);
        h.u32(slot.align);
    }
    h.u64(func.ext_funcs().len() as u64);
    for decl in func.ext_funcs() {
        h.str(&decl.name);
        h.sig(&decl.sig);
    }
    h.u64(func.num_blocks() as u64);
    for block in func.blocks() {
        let insts = func.block_insts(block);
        h.u64(insts.len() as u64);
        for &inst in insts {
            hash_inst(h, func.inst(inst));
        }
    }
}

/// Stable FNV-1a hash of a raw byte string — the same primitive the
/// structural hash builds on, exported for callers that need a
/// platform-independent content checksum (the engine's persistent
/// artifact store uses it to detect corrupt or truncated files).
pub fn fnv1a_64(bytes: &[u8]) -> u64 {
    let mut h = Fnv::new();
    h.bytes(bytes);
    h.0
}

/// Stable structural hash of one function (name, signature, stack
/// slots, external declarations, and every instruction in block layout
/// order).
pub fn function_structural_hash(func: &Function) -> u64 {
    let mut h = Fnv::new();
    hash_function_into(&mut h, func);
    h.0
}

/// Stable structural hash of a module: its functions in order, each
/// hashed as by [`function_structural_hash`]. The module *name* is
/// excluded (see the module docs).
pub fn module_structural_hash(module: &Module) -> u64 {
    let mut h = Fnv::new();
    h.u64(module.len() as u64);
    for func in module.functions() {
        hash_function_into(&mut h, func);
    }
    h.0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::instr::{CmpOp, Opcode};

    fn sample(name: &str, konst: i64) -> Function {
        let sig = Signature::new(vec![Type::I64, Type::I64], Type::I64);
        let mut b = FunctionBuilder::new(name, sig);
        let entry = b.entry_block();
        let t = b.create_block();
        let e = b.create_block();
        b.switch_to(entry);
        let (x, y) = (b.param(0), b.param(1));
        let k = b.iconst(Type::I64, konst.into());
        let s = b.add(Type::I64, x, k);
        let c = b.icmp(CmpOp::SLt, Type::I64, s, y);
        b.branch(c, t, e);
        b.switch_to(t);
        let d = b.binary(Opcode::SMulTrap, Type::I64, s, y);
        b.ret(Some(d));
        b.switch_to(e);
        b.ret(Some(s));
        b.finish()
    }

    #[test]
    fn identical_builds_hash_equal() {
        let a = sample("f", 7);
        let b = sample("f", 7);
        assert_eq!(function_structural_hash(&a), function_structural_hash(&b));
    }

    #[test]
    fn constant_perturbation_changes_hash() {
        let a = sample("f", 7);
        let b = sample("f", 8);
        assert_ne!(function_structural_hash(&a), function_structural_hash(&b));
    }

    #[test]
    fn function_name_is_part_of_the_hash() {
        // Function names become link symbols, so they are structural.
        let a = sample("f", 7);
        let b = sample("g", 7);
        assert_ne!(function_structural_hash(&a), function_structural_hash(&b));
    }

    #[test]
    fn module_name_is_not_part_of_the_hash() {
        let mut m1 = Module::new("q1_pipeline0");
        m1.push_function(sample("main", 7));
        let mut m2 = Module::new("q2_pipeline0");
        m2.push_function(sample("main", 7));
        assert_eq!(module_structural_hash(&m1), module_structural_hash(&m2));
    }

    #[test]
    fn function_order_matters() {
        let mut m1 = Module::new("m");
        m1.push_function(sample("a", 1));
        m1.push_function(sample("b", 2));
        let mut m2 = Module::new("m");
        m2.push_function(sample("b", 2));
        m2.push_function(sample("a", 1));
        assert_ne!(module_structural_hash(&m1), module_structural_hash(&m2));
    }

    #[test]
    fn hash_is_stable_across_clones() {
        let mut m = Module::new("m");
        m.push_function(sample("f", 42));
        let h1 = module_structural_hash(&m);
        let h2 = module_structural_hash(&m.clone());
        assert_eq!(h1, h2);
    }
}
