//! Functions, modules, and their dense storage.

use crate::entities::{Block, ExtFuncId, FuncId, Inst, StackSlot, Value};
use crate::instr::{CastOp, InstData};
use crate::types::Type;

/// A function signature: parameter types and a single return type
/// (`void` for no return value; two-register types like `i128`/`string`
/// are allowed and returned in a register pair).
#[derive(Debug, Clone, PartialEq, Eq, Hash)]
pub struct Signature {
    /// Parameter types, in order.
    pub params: Vec<Type>,
    /// Return type.
    pub ret: Type,
}

impl Signature {
    /// Creates a signature.
    pub fn new(params: Vec<Type>, ret: Type) -> Self {
        Signature { params, ret }
    }
}

/// Declaration of an external (runtime) function referenced by generated
/// code. The actual address is resolved at link time through the symbol
/// name (LLVM back-end) or hard-wired (Cranelift back-end) — both handled
/// by the back-ends, not the IR.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ExtFuncDecl {
    /// Symbol name, e.g. `"rt_hashtable_insert"`.
    pub name: String,
    /// Call signature.
    pub sig: Signature,
}

/// A stack slot declared on the function, allocated outside the
/// instruction stream (addressed via [`InstData::StackAddr`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct StackSlotData {
    /// Slot size in bytes.
    pub size: u32,
    /// Required alignment in bytes (power of two).
    pub align: u32,
}

/// How a value is defined.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ValueDef {
    /// The `n`-th function parameter.
    Param(u32),
    /// The result of an instruction.
    Inst(Inst),
}

#[derive(Debug, Clone)]
pub(crate) struct ValueData {
    ty: Type,
    def: ValueDef,
}

#[derive(Debug, Clone, Default)]
pub(crate) struct BlockData {
    pub(crate) insts: Vec<Inst>,
}

/// A function in SSA form.
///
/// All storage is dense and append-only: blocks, instructions and values
/// are `u32` entities indexing flat vectors,
/// matching the paper's description of Umbra IR as "optimized for fast
/// generation and linear traversal".
///
/// Use [`crate::FunctionBuilder`] to construct functions.
#[derive(Debug, Clone)]
pub struct Function {
    /// Function name (unique within its module).
    pub name: String,
    /// Signature.
    pub sig: Signature,
    pub(crate) params: Vec<Value>,
    pub(crate) blocks: Vec<BlockData>,
    pub(crate) insts: Vec<InstData>,
    pub(crate) results: Vec<Option<Value>>,
    pub(crate) values: Vec<ValueData>,
    pub(crate) stack_slots: Vec<StackSlotData>,
    pub(crate) ext_funcs: Vec<ExtFuncDecl>,
}

impl Function {
    pub(crate) fn with_signature(name: &str, sig: Signature) -> Self {
        let mut f = Function {
            name: name.to_string(),
            sig,
            params: Vec::new(),
            blocks: vec![BlockData::default()],
            insts: Vec::new(),
            results: Vec::new(),
            values: Vec::new(),
            stack_slots: Vec::new(),
            ext_funcs: Vec::new(),
        };
        for (i, &ty) in f.sig.params.clone().iter().enumerate() {
            let v = Value::new(f.values.len());
            f.values.push(ValueData {
                ty,
                def: ValueDef::Param(i as u32),
            });
            f.params.push(v);
        }
        f
    }

    /// The entry block (always block 0).
    pub fn entry_block(&self) -> Block {
        Block::new(0)
    }

    /// Number of basic blocks.
    pub fn num_blocks(&self) -> usize {
        self.blocks.len()
    }

    /// Number of instructions.
    pub fn num_insts(&self) -> usize {
        self.insts.len()
    }

    /// Number of SSA values (parameters + instruction results).
    pub fn num_values(&self) -> usize {
        self.values.len()
    }

    /// Iterator over all blocks in layout order.
    pub fn blocks(&self) -> impl Iterator<Item = Block> + '_ {
        (0..self.blocks.len()).map(Block::new)
    }

    /// Instructions of `block` in order.
    pub fn block_insts(&self, block: Block) -> &[Inst] {
        &self.blocks[block.index()].insts
    }

    /// Instruction data.
    pub fn inst(&self, inst: Inst) -> &InstData {
        &self.insts[inst.index()]
    }

    /// Result value of an instruction, if it produces one.
    pub fn inst_result(&self, inst: Inst) -> Option<Value> {
        self.results[inst.index()]
    }

    /// Parameter values, in order.
    pub fn params(&self) -> &[Value] {
        &self.params
    }

    /// The type of a value.
    pub fn value_type(&self, value: Value) -> Type {
        self.values[value.index()].ty
    }

    /// How a value is defined.
    pub fn value_def(&self, value: Value) -> ValueDef {
        self.values[value.index()].def
    }

    /// Declared stack slots.
    pub fn stack_slots(&self) -> &[StackSlotData] {
        &self.stack_slots
    }

    /// One stack slot.
    pub fn stack_slot(&self, slot: StackSlot) -> StackSlotData {
        self.stack_slots[slot.index()]
    }

    /// Declared external functions.
    pub fn ext_funcs(&self) -> &[ExtFuncDecl] {
        &self.ext_funcs
    }

    /// One external function declaration.
    pub fn ext_func(&self, id: ExtFuncId) -> &ExtFuncDecl {
        &self.ext_funcs[id.index()]
    }

    /// The terminator instruction of `block`.
    ///
    /// # Panics
    /// Panics if the block is empty (unterminated blocks are rejected by
    /// the verifier).
    pub fn terminator(&self, block: Block) -> Inst {
        *self.blocks[block.index()]
            .insts
            .last()
            .expect("block has no terminator")
    }

    /// The result type an instruction produces (`void` for none).
    pub fn inst_result_type(&self, data: &InstData) -> Type {
        match data {
            InstData::IConst { ty, .. } => *ty,
            InstData::FConst { .. } => Type::F64,
            InstData::Binary { op, ty, .. } => {
                if op.produces_flag() {
                    Type::Bool
                } else {
                    *ty
                }
            }
            InstData::Cmp { .. } | InstData::FCmp { .. } => Type::Bool,
            InstData::Cast { op, to, .. } => match op {
                CastOp::SiToF => Type::F64,
                _ => *to,
            },
            InstData::Crc32 { .. } | InstData::LongMulFold { .. } => Type::I64,
            InstData::Select { ty, .. } => *ty,
            InstData::Load { ty, .. } => *ty,
            InstData::Gep { .. } | InstData::StackAddr { .. } | InstData::FuncAddr { .. } => {
                Type::Ptr
            }
            InstData::Call { callee, .. } => self.ext_funcs[callee.index()].sig.ret,
            InstData::Phi { ty, .. } => *ty,
            InstData::Store { .. }
            | InstData::Jump { .. }
            | InstData::Branch { .. }
            | InstData::Return { .. }
            | InstData::Unreachable => Type::Void,
        }
    }

    /// Appends an instruction to a block, creating its result value.
    /// Used by the builder; back-ends treat functions as immutable.
    pub(crate) fn append_inst(&mut self, block: Block, data: InstData) -> (Inst, Option<Value>) {
        let ty = self.inst_result_type(&data);
        let inst = Inst::new(self.insts.len());
        self.insts.push(data);
        let result = if ty == Type::Void {
            None
        } else {
            let v = Value::new(self.values.len());
            self.values.push(ValueData {
                ty,
                def: ValueDef::Inst(inst),
            });
            Some(v)
        };
        self.results.push(result);
        self.blocks[block.index()].insts.push(inst);
        (inst, result)
    }

    pub(crate) fn add_block(&mut self) -> Block {
        let b = Block::new(self.blocks.len());
        self.blocks.push(BlockData::default());
        b
    }

    pub(crate) fn add_stack_slot(&mut self, data: StackSlotData) -> StackSlot {
        let s = StackSlot::new(self.stack_slots.len());
        self.stack_slots.push(data);
        s
    }

    pub(crate) fn declare_ext_func(&mut self, decl: ExtFuncDecl) -> ExtFuncId {
        if let Some(pos) = self.ext_funcs.iter().position(|d| *d == decl) {
            return ExtFuncId::new(pos);
        }
        let id = ExtFuncId::new(self.ext_funcs.len());
        self.ext_funcs.push(decl);
        id
    }
}

/// A module: an ordered collection of functions compiled together.
///
/// In the database, one module corresponds to one query pipeline plus its
/// small setup/cleanup helpers (paper Sec. III: "compiling a pipeline also
/// involves some other small functions").
#[derive(Debug, Clone)]
pub struct Module {
    /// Module name (e.g. `"q17_pipeline3"`).
    pub name: String,
    functions: Vec<Function>,
}

impl Module {
    /// Creates an empty module.
    pub fn new(name: &str) -> Self {
        Module {
            name: name.to_string(),
            functions: Vec::new(),
        }
    }

    /// Appends a function, returning its module-level id.
    pub fn push_function(&mut self, func: Function) -> FuncId {
        let id = FuncId::new(self.functions.len());
        self.functions.push(func);
        id
    }

    /// All functions in order.
    pub fn functions(&self) -> &[Function] {
        &self.functions
    }

    /// One function.
    pub fn function(&self, id: FuncId) -> &Function {
        &self.functions[id.index()]
    }

    /// Looks up a function by name.
    pub fn function_by_name(&self, name: &str) -> Option<(FuncId, &Function)> {
        self.functions
            .iter()
            .enumerate()
            .find(|(_, f)| f.name == name)
            .map(|(i, f)| (FuncId::new(i), f))
    }

    /// Number of functions.
    pub fn len(&self) -> usize {
        self.functions.len()
    }

    /// Whether the module has no functions.
    pub fn is_empty(&self) -> bool {
        self.functions.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;

    fn sample() -> Function {
        let sig = Signature::new(vec![Type::I64, Type::I64], Type::I64);
        let mut b = FunctionBuilder::new("f", sig);
        let entry = b.entry_block();
        b.switch_to(entry);
        let x = b.param(0);
        let y = b.param(1);
        let s = b.add(Type::I64, x, y);
        b.ret(Some(s));
        b.finish()
    }

    #[test]
    fn params_are_values_with_types() {
        let f = sample();
        assert_eq!(f.params().len(), 2);
        assert_eq!(f.value_type(f.params()[0]), Type::I64);
        assert_eq!(f.value_def(f.params()[1]), ValueDef::Param(1));
    }

    #[test]
    fn instruction_results_are_typed() {
        let f = sample();
        let insts = f.block_insts(f.entry_block());
        assert_eq!(insts.len(), 2);
        let add = insts[0];
        let res = f.inst_result(add).unwrap();
        assert_eq!(f.value_type(res), Type::I64);
        assert_eq!(f.value_def(res), ValueDef::Inst(add));
        assert!(f.inst_result(insts[1]).is_none());
    }

    #[test]
    fn terminator_is_last_inst() {
        let f = sample();
        let t = f.terminator(f.entry_block());
        assert!(f.inst(t).is_terminator());
    }

    #[test]
    fn ext_func_declarations_dedupe() {
        let sig = Signature::new(vec![], Type::Void);
        let mut b = FunctionBuilder::new("f", sig);
        let d = ExtFuncDecl {
            name: "rt_x".into(),
            sig: Signature::new(vec![Type::I64], Type::I64),
        };
        let a = b.declare_ext_func(d.clone());
        let c = b.declare_ext_func(d);
        assert_eq!(a, c);
        let entry = b.entry_block();
        b.switch_to(entry);
        b.ret(None);
        assert_eq!(b.finish().ext_funcs().len(), 1);
    }

    #[test]
    fn module_lookup_by_name() {
        let mut m = Module::new("m");
        let id = m.push_function(sample());
        assert_eq!(m.len(), 1);
        assert_eq!(m.function_by_name("f").unwrap().0, id);
        assert!(m.function_by_name("g").is_none());
    }
}
