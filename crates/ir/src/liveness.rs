//! Block-granularity liveness analysis.

use crate::cfg::Cfg;
use crate::entities::{Block, Value};
use crate::function::Function;
use crate::instr::InstData;

/// A dense bitset over SSA values.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ValueSet {
    words: Vec<u64>,
}

impl ValueSet {
    /// Creates an empty set for `n` values.
    pub fn new(n: usize) -> Self {
        ValueSet {
            words: vec![0; n.div_ceil(64)],
        }
    }

    /// Inserts a value; returns whether it was newly inserted.
    pub fn insert(&mut self, v: Value) -> bool {
        let (w, b) = (v.index() / 64, v.index() % 64);
        let old = self.words[w];
        self.words[w] |= 1 << b;
        old & (1 << b) == 0
    }

    /// Removes a value.
    pub fn remove(&mut self, v: Value) {
        let (w, b) = (v.index() / 64, v.index() % 64);
        self.words[w] &= !(1 << b);
    }

    /// Membership test.
    pub fn contains(&self, v: Value) -> bool {
        let (w, b) = (v.index() / 64, v.index() % 64);
        self.words[w] & (1 << b) != 0
    }

    /// Unions `other` into `self`; returns whether anything changed.
    pub fn union_with(&mut self, other: &ValueSet) -> bool {
        let mut changed = false;
        for (a, b) in self.words.iter_mut().zip(&other.words) {
            let new = *a | b;
            changed |= new != *a;
            *a = new;
        }
        changed
    }

    /// Iterates over the members in increasing index order.
    pub fn iter(&self) -> impl Iterator<Item = Value> + '_ {
        self.words.iter().enumerate().flat_map(|(wi, &w)| {
            (0..64)
                .filter(move |b| w & (1 << b) != 0)
                .map(move |b| Value::new(wi * 64 + b))
        })
    }

    /// Number of members.
    pub fn count(&self) -> usize {
        self.words.iter().map(|w| w.count_ones() as usize).sum()
    }
}

/// Backward data-flow liveness at basic-block granularity.
///
/// This is the analysis the paper identifies as the dominant cost of
/// DirectEmit's analysis pass (≈75%, Sec. VII-B) and one of the more
/// expensive helpers of both register allocators.
///
/// Φ-operands are treated as live-out of the corresponding predecessor
/// (they are conceptually evaluated on the edge), and Φ-results as defined
/// at the head of the block.
#[derive(Debug, Clone)]
pub struct Liveness {
    live_in: Vec<ValueSet>,
    live_out: Vec<ValueSet>,
}

impl Liveness {
    /// Computes liveness with the standard iterative backward fixpoint.
    pub fn compute(func: &Function, cfg: &Cfg) -> Self {
        let nb = func.num_blocks();
        let nv = func.num_values();
        // use[b] / def[b].
        let mut use_set = vec![ValueSet::new(nv); nb];
        let mut def_set = vec![ValueSet::new(nv); nb];
        // Φ-uses are per-edge: record (pred, value) as live-out of pred.
        let mut phi_out = vec![ValueSet::new(nv); nb];

        for block in func.blocks() {
            let bi = block.index();
            for &inst in func.block_insts(block) {
                let data = func.inst(inst);
                if let InstData::Phi { pairs, .. } = data {
                    for &(pred, val) in pairs {
                        phi_out[pred.index()].insert(val);
                    }
                } else {
                    data.for_each_arg(|v| {
                        if !def_set[bi].contains(v) {
                            use_set[bi].insert(v);
                        }
                    });
                }
                if let Some(res) = func.inst_result(inst) {
                    def_set[bi].insert(res);
                }
            }
        }

        let mut live_in = vec![ValueSet::new(nv); nb];
        let mut live_out = vec![ValueSet::new(nv); nb];
        let mut changed = true;
        while changed {
            changed = false;
            // Iterate in reverse layout order; close enough to post-order
            // that the fixpoint converges quickly. Sets grow monotonically,
            // so updating in place (no clones) is sound.
            for bi in (0..nb).rev() {
                let block = Block::new(bi);
                let mut c = live_out[bi].union_with(&phi_out[bi]);
                for &succ in cfg.succs(block) {
                    c |= live_out[bi].union_with(&live_in[succ.index()]);
                }
                // live_in = (live_out \ defs) | uses, grown in place.
                let snapshot = live_out[bi].clone();
                let mut grew = false;
                for v in snapshot.iter() {
                    if !def_set[bi].contains(v) {
                        grew |= live_in[bi].insert(v);
                    }
                }
                grew |= live_in[bi].union_with(&use_set[bi]);
                changed |= c | grew;
            }
        }
        Liveness { live_in, live_out }
    }

    /// Values live at the entry of `block`.
    pub fn live_in(&self, block: Block) -> &ValueSet {
        &self.live_in[block.index()]
    }

    /// Values live at the exit of `block` (including Φ-operands consumed
    /// by successors).
    pub fn live_out(&self, block: Block) -> &ValueSet {
        &self.live_out[block.index()]
    }

    /// Whether `v` is live across (out of) `block`.
    pub fn is_live_out(&self, block: Block, v: Value) -> bool {
        self.live_out[block.index()].contains(v)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::Signature;
    use crate::instr::CmpOp;
    use crate::types::Type;

    #[test]
    fn valueset_basics() {
        let mut s = ValueSet::new(130);
        assert!(s.insert(Value::new(0)));
        assert!(s.insert(Value::new(129)));
        assert!(!s.insert(Value::new(0)));
        assert!(s.contains(Value::new(129)));
        assert_eq!(s.count(), 2);
        s.remove(Value::new(0));
        assert!(!s.contains(Value::new(0)));
        let members: Vec<_> = s.iter().collect();
        assert_eq!(members, vec![Value::new(129)]);
    }

    #[test]
    fn valueset_union() {
        let mut a = ValueSet::new(10);
        let mut b = ValueSet::new(10);
        a.insert(Value::new(1));
        b.insert(Value::new(2));
        assert!(a.union_with(&b));
        assert!(!a.union_with(&b));
        assert_eq!(a.count(), 2);
    }

    #[test]
    fn loop_variable_live_across_body() {
        // The loop counter must be live-out of the body (back edge to phi).
        let mut b = FunctionBuilder::new("l", Signature::new(vec![Type::I64], Type::I64));
        let entry = b.entry_block();
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        let zero = b.iconst(Type::I64, 0);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, zero)]);
        let n = b.param(0);
        let c = b.icmp(CmpOp::SLt, Type::I64, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let one = b.iconst(Type::I64, 1);
        let i2 = b.add(Type::I64, i, one);
        b.phi_add_incoming(i, body, i2);
        b.jump(header);
        b.switch_to(exit);
        b.ret(Some(i));
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let live = Liveness::compute(&f, &cfg);

        // n (param) is live into header and body.
        assert!(live.live_in(header).contains(n));
        // i2 is a phi-operand on the back edge: live out of body.
        assert!(live.is_live_out(body, i2));
        // i is live out of header (used in exit).
        assert!(live.is_live_out(header, i));
        // zero is a phi operand on the entry edge: live out of entry,
        // but not live into header (phi uses are edge uses).
        assert!(live.is_live_out(entry, zero));
        assert!(!live.live_in(header).contains(zero));
    }

    #[test]
    fn dead_value_not_live_anywhere() {
        let mut b = FunctionBuilder::new("d", Signature::new(vec![], Type::Void));
        let e = b.entry_block();
        b.switch_to(e);
        let dead = b.iconst(Type::I64, 42);
        b.ret(None);
        let f = b.finish();
        let cfg = Cfg::compute(&f);
        let live = Liveness::compute(&f, &cfg);
        assert!(!live.is_live_out(e, dead));
        assert!(!live.live_in(e).contains(dead));
    }
}
