//! An SSA intermediate representation for compiled database queries.
//!
//! This crate is the reproduction's analog of **Umbra IR** (paper Sec. III-B,
//! \[14\]): a custom SSA-based IR "optimized for fast generation and linear
//! traversal". Its salient properties, all preserved here:
//!
//! * dense, arena-backed storage: functions, blocks, instructions and values
//!   are `u32` indices into flat vectors; a back-end can attach side data in
//!   plain arrays without hash tables,
//! * a small instruction set tailored to query code: overflow-checked
//!   arithmetic that **traps** (implicit control flow), `crc32` and
//!   `long-mul-fold` hash primitives, `rotr`, 128-bit integers for SQL
//!   decimals, a 16-byte by-value `string` type, `getelementptr`-style
//!   address arithmetic, and calls to external runtime functions,
//! * Φ-instructions for SSA joins (all back-ends perform SSA destruction),
//! * explicit stack slots allocated outside the instruction stream.
//!
//! The crate also contains the standard analyses the back-ends need:
//! predecessor/successor maps, reverse post-order, dominator tree, natural
//! loop detection, and block-granularity liveness — the exact analysis set
//! the paper's DirectEmit back-end computes in its single analysis pass
//! (Sec. VII).
//!
//! # Example
//!
//! ```
//! use qc_ir::{FunctionBuilder, Module, Signature, Type};
//!
//! let mut module = Module::new("demo");
//! let sig = Signature::new(vec![Type::I64, Type::I64], Type::I64);
//! let mut b = FunctionBuilder::new("add3", sig);
//! let entry = b.entry_block();
//! b.switch_to(entry);
//! let (x, y) = (b.param(0), b.param(1));
//! let s = b.add(Type::I64, x, y);
//! let c = b.iconst(Type::I64, 3);
//! let s3 = b.add(Type::I64, s, c);
//! b.ret(Some(s3));
//! let func = b.finish();
//! assert!(qc_ir::verify_function(&func).is_ok());
//! module.push_function(func);
//! ```

mod builder;
mod cfg;
mod domtree;
mod entities;
mod function;
mod hash;
mod instr;
mod liveness;
mod loops;
pub mod opt;
mod parser;
mod printer;
mod types;
mod verify;

pub use builder::FunctionBuilder;
pub use cfg::{Cfg, ReversePostorder};
pub use domtree::DomTree;
pub use entities::{Block, EntityMap, ExtFuncId, FuncId, Inst, StackSlot, Value};
pub use function::{ExtFuncDecl, Function, Module, Signature, StackSlotData, ValueDef};
pub use hash::{fnv1a_64, function_structural_hash, module_structural_hash};
pub use instr::{CastOp, CmpOp, InstData, Opcode};
pub use liveness::{Liveness, ValueSet};
pub use loops::{LoopInfo, Loops};
pub use parser::{parse_function, parse_module, ParseError};
pub use printer::{print_function, print_module};
pub use types::Type;
pub use verify::{verify_function, verify_module, VerifyError};
