//! Textual IR output (see paper Listings 1–2 for the style being mirrored).

use crate::entities::Value;
use crate::function::{Function, Module};
use crate::instr::InstData;
use std::fmt::Write;

/// Prints a module in textual form.
pub fn print_module(module: &Module) -> String {
    let mut out = String::new();
    writeln!(out, "module {}", module.name).unwrap();
    for func in module.functions() {
        out.push('\n');
        out.push_str(&print_function(func));
    }
    out
}

/// Prints a function in textual form. The output round-trips through
/// [`crate::parse_function`].
pub fn print_function(func: &Function) -> String {
    let mut out = String::new();
    let params: Vec<String> = func
        .params()
        .iter()
        .map(|&v| format!("{} {}", func.value_type(v), v))
        .collect();
    writeln!(
        out,
        "define {} @{}({}) {{",
        func.sig.ret,
        func.name,
        params.join(", ")
    )
    .unwrap();
    for (i, slot) in func.stack_slots().iter().enumerate() {
        writeln!(
            out,
            "  stackslot ss{}, size {}, align {}",
            i, slot.size, slot.align
        )
        .unwrap();
    }
    for (i, ext) in func.ext_funcs().iter().enumerate() {
        let tys: Vec<String> = ext.sig.params.iter().map(|t| t.to_string()).collect();
        writeln!(
            out,
            "  extfunc ext{} @{}({}) -> {}",
            i,
            ext.name,
            tys.join(", "),
            ext.sig.ret
        )
        .unwrap();
    }
    for block in func.blocks() {
        writeln!(out, "{block}:").unwrap();
        for &inst in func.block_insts(block) {
            let data = func.inst(inst);
            out.push_str("  ");
            if let Some(res) = func.inst_result(inst) {
                write!(out, "{res} = ").unwrap();
            }
            print_inst(&mut out, data);
            out.push('\n');
        }
    }
    out.push_str("}\n");
    out
}

fn print_value_list(out: &mut String, args: &[Value]) {
    for (i, a) in args.iter().enumerate() {
        if i > 0 {
            out.push_str(", ");
        }
        write!(out, "{a}").unwrap();
    }
}

fn print_inst(out: &mut String, data: &InstData) {
    match data {
        InstData::IConst { ty, imm } => write!(out, "iconst {ty} {imm}").unwrap(),
        InstData::FConst { imm } => write!(out, "fconst {imm:?}").unwrap(),
        InstData::Binary { op, ty, args } => {
            write!(out, "{op} {ty} {}, {}", args[0], args[1]).unwrap()
        }
        InstData::Cmp { op, ty, args } => {
            write!(out, "cmp {op} {ty} {}, {}", args[0], args[1]).unwrap()
        }
        InstData::FCmp { op, args } => write!(out, "fcmp {op} {}, {}", args[0], args[1]).unwrap(),
        InstData::Cast { op, to, arg } => write!(out, "{op} {to} {arg}").unwrap(),
        InstData::Crc32 { args } => write!(out, "crc32 {}, {}", args[0], args[1]).unwrap(),
        InstData::LongMulFold { args } => write!(out, "lmulfold {}, {}", args[0], args[1]).unwrap(),
        InstData::Select {
            ty,
            cond,
            if_true,
            if_false,
        } => write!(out, "select {ty} {cond}, {if_true}, {if_false}").unwrap(),
        InstData::Load { ty, ptr, offset } => {
            write!(out, "load {ty} {ptr}, offset {offset}").unwrap()
        }
        InstData::Store {
            ty,
            ptr,
            value,
            offset,
        } => write!(out, "store {ty} {ptr}, {value}, offset {offset}").unwrap(),
        InstData::Gep {
            base,
            offset,
            index,
            scale,
        } => {
            write!(out, "gep {base}, offset {offset}").unwrap();
            if let Some(i) = index {
                write!(out, ", index {i}, scale {scale}").unwrap();
            }
        }
        InstData::StackAddr { slot } => write!(out, "stackaddr {slot}").unwrap(),
        InstData::Call { callee, args } => {
            write!(out, "call {callee}(").unwrap();
            print_value_list(out, args);
            out.push(')');
        }
        InstData::FuncAddr { func } => write!(out, "funcaddr {func}").unwrap(),
        InstData::Phi { ty, pairs } => {
            write!(out, "phi {ty}").unwrap();
            for (i, (block, value)) in pairs.iter().enumerate() {
                write!(out, "{} [{block} {value}]", if i == 0 { " " } else { ", " }).unwrap();
            }
        }
        InstData::Jump { dest } => write!(out, "jump {dest}").unwrap(),
        InstData::Branch {
            cond,
            then_dest,
            else_dest,
        } => write!(out, "br {cond} {then_dest} {else_dest}").unwrap(),
        InstData::Return { value } => match value {
            Some(v) => write!(out, "ret {v}").unwrap(),
            None => out.push_str("ret"),
        },
        InstData::Unreachable => out.push_str("unreachable"),
    }
}

/// Helper for tests: asserts the printed form contains a line.
#[cfg(test)]
pub(crate) fn assert_printed_contains(func: &Function, needle: &str) {
    let text = print_function(func);
    assert!(
        text.contains(needle),
        "printed IR missing {needle:?}:\n{text}"
    );
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::{ExtFuncDecl, Signature};
    use crate::instr::CmpOp;
    use crate::types::Type;

    #[test]
    fn prints_listing_style_function() {
        let sig = Signature::new(vec![Type::Ptr, Type::I32], Type::I32);
        let mut b = FunctionBuilder::new("filter", sig);
        let e = b.entry_block();
        let t = b.create_block();
        let f = b.create_block();
        b.switch_to(e);
        let count = b.param(1);
        let zero = b.iconst(Type::I32, 0);
        let c = b.icmp(CmpOp::Eq, Type::I32, count, zero);
        b.branch(c, t, f);
        b.switch_to(t);
        b.ret(Some(zero));
        b.switch_to(f);
        let one = b.iconst(Type::I32, 1);
        b.ret(Some(one));
        let func = b.finish();
        let text = print_function(&func);
        assert!(text.contains("define i32 @filter(ptr %0, i32 %1)"));
        assert!(text.contains("%3 = cmp eq i32 %1, %2"));
        assert!(text.contains("br %3 b1 b2"));
        assert!(text.contains("ret %4"));
    }

    #[test]
    fn prints_special_instructions() {
        let mut b = FunctionBuilder::new("h", Signature::new(vec![Type::I64], Type::I64));
        let slot = b.stack_slot(16);
        let ext = b.declare_ext_func(ExtFuncDecl {
            name: "rt_throw_overflow".into(),
            sig: Signature::new(vec![], Type::Void),
        });
        let e = b.entry_block();
        b.switch_to(e);
        let x = b.param(0);
        let h = b.crc32(x, x);
        let m = b.long_mul_fold(h, x);
        let addr = b.stack_addr(slot);
        b.store(Type::I64, addr, m, 0);
        let l = b.load(Type::I64, addr, 0);
        b.call(ext, vec![]);
        let g = b.gep_indexed(addr, 8, l, 8);
        let v = b.load(Type::I64, g, 0);
        b.ret(Some(v));
        let func = b.finish();
        assert_printed_contains(&func, "crc32 %0, %0");
        assert_printed_contains(&func, "lmulfold %1, %0");
        assert_printed_contains(&func, "stackslot ss0, size 16, align 16");
        assert_printed_contains(&func, "extfunc ext0 @rt_throw_overflow() -> void");
        assert_printed_contains(&func, "call ext0()");
        assert_printed_contains(&func, "gep %3, offset 8, index %4, scale 8");
    }

    #[test]
    fn prints_module_header() {
        let mut m = Module::new("q1_p0");
        let mut b = FunctionBuilder::new("f", Signature::new(vec![], Type::Void));
        let e = b.entry_block();
        b.switch_to(e);
        b.ret(None);
        m.push_function(b.finish());
        let text = print_module(&m);
        assert!(text.starts_with("module q1_p0"));
        assert!(text.contains("define void @f()"));
    }
}
