//! Dense entity references: typed `u32` indices into function arenas.

use std::fmt;

macro_rules! entity {
    ($(#[$doc:meta])* $name:ident, $prefix:literal) => {
        $(#[$doc])*
        #[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        pub struct $name(u32);

        impl $name {
            /// Creates a reference from a raw index.
            pub fn new(index: usize) -> Self {
                debug_assert!(index < u32::MAX as usize);
                $name(index as u32)
            }

            /// The raw index, usable to address plain side arrays.
            pub fn index(self) -> usize {
                self.0 as usize
            }
        }

        impl fmt::Debug for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }

        impl fmt::Display for $name {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                write!(f, concat!($prefix, "{}"), self.0)
            }
        }
    };
}

entity! {
    /// An SSA value: a function parameter or an instruction result.
    Value, "%"
}
entity! {
    /// A basic block within a function.
    Block, "b"
}
entity! {
    /// An instruction within a function.
    Inst, "i"
}
entity! {
    /// A function within a module.
    FuncId, "fn"
}
entity! {
    /// A declared external (runtime) function within a module.
    ExtFuncId, "ext"
}
entity! {
    /// A stack slot declared on a function, outside the instruction stream.
    StackSlot, "ss"
}

/// A dense secondary map from an entity to a value, backed by a `Vec`.
///
/// This is the "free variable slot" idiom the paper highlights for
/// DirectEmit (Sec. VII-A2): because entities are linearly increasing
/// integers, per-entity side data lives in arrays, avoiding hash tables.
#[derive(Debug, Clone)]
pub struct EntityMap<V> {
    items: Vec<V>,
}

impl<V: Clone + Default> EntityMap<V> {
    /// Creates a map with `len` default-initialized entries.
    pub fn with_len(len: usize) -> Self {
        EntityMap {
            items: vec![V::default(); len],
        }
    }
}

impl<V> EntityMap<V> {
    /// Number of entries.
    pub fn len(&self) -> usize {
        self.items.len()
    }

    /// Whether the map is empty.
    pub fn is_empty(&self) -> bool {
        self.items.is_empty()
    }

    /// Immutable access by raw index.
    pub fn get(&self, index: usize) -> &V {
        &self.items[index]
    }

    /// Mutable access by raw index.
    pub fn get_mut(&mut self, index: usize) -> &mut V {
        &mut self.items[index]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entity_roundtrip_and_display() {
        let v = Value::new(7);
        assert_eq!(v.index(), 7);
        assert_eq!(format!("{v}"), "%7");
        assert_eq!(format!("{:?}", Block::new(3)), "b3");
        assert_eq!(format!("{}", Inst::new(0)), "i0");
        assert_eq!(format!("{}", StackSlot::new(2)), "ss2");
    }

    #[test]
    fn entity_ordering_follows_index() {
        assert!(Value::new(1) < Value::new(2));
        assert_eq!(Value::new(5), Value::new(5));
    }

    #[test]
    fn entity_map_defaults_and_mutation() {
        let mut m: EntityMap<u64> = EntityMap::with_len(4);
        assert_eq!(m.len(), 4);
        assert_eq!(*m.get(2), 0);
        *m.get_mut(2) = 42;
        assert_eq!(*m.get(2), 42);
        assert!(!m.is_empty());
    }
}
