//! Parser for the textual IR form produced by [`crate::print_function`].
//!
//! The parser exists for tests and tooling; it assumes the printer's dense
//! value numbering (parameters first, then instruction results in order)
//! and validates that assumption while parsing.

use crate::entities::{Block, ExtFuncId, FuncId, StackSlot, Value};
use crate::function::{ExtFuncDecl, Function, Module, Signature, StackSlotData};
use crate::instr::{CastOp, CmpOp, InstData, Opcode};
use crate::types::Type;
use std::error::Error;
use std::fmt;

/// Error produced when parsing textual IR fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseError {
    /// 1-based line number.
    pub line: usize,
    /// Problem description.
    pub message: String,
}

impl fmt::Display for ParseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "parse error at line {}: {}", self.line, self.message)
    }
}

impl Error for ParseError {}

/// Parses a module printed by [`crate::print_module`].
///
/// # Errors
/// Returns a [`ParseError`] describing the first offending line.
pub fn parse_module(text: &str) -> Result<Module, ParseError> {
    let mut lines = text.lines().enumerate().peekable();
    let (ln, first) = lines.next().ok_or_else(|| err(1, "empty input"))?;
    let name = first
        .trim()
        .strip_prefix("module ")
        .ok_or_else(|| err(ln + 1, "expected `module <name>`"))?;
    let mut module = Module::new(name.trim());
    let mut chunk = String::new();
    let mut chunk_start = 0;
    for (ln, line) in lines {
        if line.trim_start().starts_with("define ") && !chunk.trim().is_empty() {
            module.push_function(parse_function_at(&chunk, chunk_start)?);
            chunk.clear();
        }
        if chunk.trim().is_empty() && !line.trim().is_empty() {
            chunk_start = ln;
        }
        chunk.push_str(line);
        chunk.push('\n');
    }
    if !chunk.trim().is_empty() {
        module.push_function(parse_function_at(&chunk, chunk_start)?);
    }
    Ok(module)
}

/// Parses a single function printed by [`crate::print_function`].
///
/// # Errors
/// Returns a [`ParseError`] describing the first offending line.
pub fn parse_function(text: &str) -> Result<Function, ParseError> {
    parse_function_at(text, 0)
}

fn err(line: usize, message: impl Into<String>) -> ParseError {
    ParseError {
        line,
        message: message.into(),
    }
}

fn parse_type(tok: &str, line: usize) -> Result<Type, ParseError> {
    Type::from_name(tok).ok_or_else(|| err(line, format!("unknown type `{tok}`")))
}

fn parse_value(tok: &str, line: usize) -> Result<Value, ParseError> {
    let n = tok
        .strip_prefix('%')
        .and_then(|s| s.parse::<usize>().ok())
        .ok_or_else(|| err(line, format!("expected value, got `{tok}`")))?;
    Ok(Value::new(n))
}

fn parse_block(tok: &str, line: usize) -> Result<Block, ParseError> {
    let n = tok
        .strip_prefix('b')
        .and_then(|s| s.parse::<usize>().ok())
        .ok_or_else(|| err(line, format!("expected block, got `{tok}`")))?;
    Ok(Block::new(n))
}

fn parse_function_at(text: &str, line_offset: usize) -> Result<Function, ParseError> {
    let mut func: Option<Function> = None;
    let mut current: Option<Block> = None;
    for (i, raw) in text.lines().enumerate() {
        let ln = line_offset + i + 1;
        let line = raw.trim();
        if line.is_empty() || line == "}" {
            continue;
        }
        if let Some(rest) = line.strip_prefix("define ") {
            func = Some(parse_header(rest, ln)?);
            continue;
        }
        let f = func
            .as_mut()
            .ok_or_else(|| err(ln, "instruction before `define`"))?;
        if let Some(rest) = line.strip_prefix("stackslot ") {
            // `ss0, size 32, align 16`
            let parts: Vec<&str> = rest.split(',').map(str::trim).collect();
            let size = parts
                .iter()
                .find_map(|p| p.strip_prefix("size "))
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(ln, "stackslot missing size"))?;
            let align = parts
                .iter()
                .find_map(|p| p.strip_prefix("align "))
                .and_then(|s| s.parse().ok())
                .unwrap_or(16);
            f.add_stack_slot(StackSlotData { size, align });
            continue;
        }
        if let Some(rest) = line.strip_prefix("extfunc ") {
            // `ext0 @name(i64, ptr) -> i64`
            let at = rest
                .find('@')
                .ok_or_else(|| err(ln, "extfunc missing @name"))?;
            let open = rest.find('(').ok_or_else(|| err(ln, "extfunc missing ("))?;
            let close = rest
                .rfind(')')
                .ok_or_else(|| err(ln, "extfunc missing )"))?;
            let name = rest[at + 1..open].to_string();
            let params: Vec<Type> = rest[open + 1..close]
                .split(',')
                .map(str::trim)
                .filter(|s| !s.is_empty())
                .map(|s| parse_type(s, ln))
                .collect::<Result<_, _>>()?;
            let ret = rest[close + 1..]
                .trim()
                .strip_prefix("->")
                .map(str::trim)
                .ok_or_else(|| err(ln, "extfunc missing return type"))?;
            let ret = parse_type(ret, ln)?;
            f.declare_ext_func(ExtFuncDecl {
                name,
                sig: Signature::new(params, ret),
            });
            continue;
        }
        if let Some(label) = line.strip_suffix(':') {
            let block = parse_block(label, ln)?;
            while f.num_blocks() <= block.index() {
                f.add_block();
            }
            current = Some(block);
            continue;
        }
        let block = current.ok_or_else(|| err(ln, "instruction outside a block"))?;
        let (result_txt, inst_txt) = match line.split_once(" = ") {
            Some((lhs, rhs)) if lhs.starts_with('%') => (Some(lhs.trim()), rhs.trim()),
            _ => (None, line),
        };
        let data = parse_inst(f, inst_txt, ln)?;
        let (_, res) = f.append_inst(block, data);
        match (result_txt, res) {
            (Some(txt), Some(v)) => {
                let expected = parse_value(txt, ln)?;
                if expected != v {
                    return Err(err(
                        ln,
                        format!("non-dense value numbering: expected {v}, got {expected}"),
                    ));
                }
            }
            (None, None) => {}
            (Some(_), None) => return Err(err(ln, "result assigned to void instruction")),
            (None, Some(_)) => return Err(err(ln, "missing result binding")),
        }
    }
    func.ok_or_else(|| err(line_offset + 1, "no `define` found"))
}

fn parse_header(rest: &str, ln: usize) -> Result<Function, ParseError> {
    // `<ret> @<name>(<ty> %N, ...) {`
    let rest = rest.trim_end_matches('{').trim();
    let at = rest
        .find('@')
        .ok_or_else(|| err(ln, "define missing @name"))?;
    let ret = parse_type(rest[..at].trim(), ln)?;
    let open = rest.find('(').ok_or_else(|| err(ln, "define missing ("))?;
    let close = rest.rfind(')').ok_or_else(|| err(ln, "define missing )"))?;
    let name = rest[at + 1..open].to_string();
    let mut params = Vec::new();
    for part in rest[open + 1..close]
        .split(',')
        .map(str::trim)
        .filter(|s| !s.is_empty())
    {
        let ty_tok = part.split_whitespace().next().unwrap_or("");
        params.push(parse_type(ty_tok, ln)?);
    }
    Ok(Function::with_signature(&name, Signature::new(params, ret)))
}

fn split_args(s: &str) -> Vec<&str> {
    s.split(',')
        .map(str::trim)
        .filter(|t| !t.is_empty())
        .collect()
}

fn parse_inst(f: &Function, text: &str, ln: usize) -> Result<InstData, ParseError> {
    let (op, rest) = match text.split_once(' ') {
        Some((op, rest)) => (op, rest.trim()),
        None => (text, ""),
    };
    let _ = f;
    match op {
        "iconst" => {
            let (ty, imm) = rest
                .split_once(' ')
                .ok_or_else(|| err(ln, "iconst needs type and value"))?;
            Ok(InstData::IConst {
                ty: parse_type(ty, ln)?,
                imm: imm
                    .trim()
                    .parse()
                    .map_err(|_| err(ln, format!("bad integer `{imm}`")))?,
            })
        }
        "fconst" => Ok(InstData::FConst {
            imm: rest
                .parse()
                .map_err(|_| err(ln, format!("bad float `{rest}`")))?,
        }),
        "cmp" => {
            let mut it = rest.split_whitespace();
            let pred = it.next().ok_or_else(|| err(ln, "cmp needs predicate"))?;
            let ty = it.next().ok_or_else(|| err(ln, "cmp needs type"))?;
            let args_txt: String = it.collect::<Vec<_>>().join(" ");
            let args = split_args(&args_txt);
            if args.len() != 2 {
                return Err(err(ln, "cmp needs two operands"));
            }
            Ok(InstData::Cmp {
                op: CmpOp::from_mnemonic(pred)
                    .ok_or_else(|| err(ln, format!("bad predicate `{pred}`")))?,
                ty: parse_type(ty, ln)?,
                args: [parse_value(args[0], ln)?, parse_value(args[1], ln)?],
            })
        }
        "fcmp" => {
            let mut it = rest.splitn(2, ' ');
            let pred = it.next().ok_or_else(|| err(ln, "fcmp needs predicate"))?;
            let args = split_args(it.next().unwrap_or(""));
            if args.len() != 2 {
                return Err(err(ln, "fcmp needs two operands"));
            }
            Ok(InstData::FCmp {
                op: CmpOp::from_mnemonic(pred)
                    .ok_or_else(|| err(ln, format!("bad predicate `{pred}`")))?,
                args: [parse_value(args[0], ln)?, parse_value(args[1], ln)?],
            })
        }
        "crc32" | "lmulfold" => {
            let args = split_args(rest);
            if args.len() != 2 {
                return Err(err(ln, "expected two operands"));
            }
            let args = [parse_value(args[0], ln)?, parse_value(args[1], ln)?];
            Ok(if op == "crc32" {
                InstData::Crc32 { args }
            } else {
                InstData::LongMulFold { args }
            })
        }
        "select" => {
            let (ty, rest) = rest
                .split_once(' ')
                .ok_or_else(|| err(ln, "select needs type"))?;
            let args = split_args(rest);
            if args.len() != 3 {
                return Err(err(ln, "select needs three operands"));
            }
            Ok(InstData::Select {
                ty: parse_type(ty, ln)?,
                cond: parse_value(args[0], ln)?,
                if_true: parse_value(args[1], ln)?,
                if_false: parse_value(args[2], ln)?,
            })
        }
        "load" => {
            let (ty, rest) = rest
                .split_once(' ')
                .ok_or_else(|| err(ln, "load needs type"))?;
            let args = split_args(rest);
            let offset = args
                .iter()
                .find_map(|a| a.strip_prefix("offset "))
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(ln, "load needs offset"))?;
            Ok(InstData::Load {
                ty: parse_type(ty, ln)?,
                ptr: parse_value(args[0], ln)?,
                offset,
            })
        }
        "store" => {
            let (ty, rest) = rest
                .split_once(' ')
                .ok_or_else(|| err(ln, "store needs type"))?;
            let args = split_args(rest);
            if args.len() != 3 {
                return Err(err(ln, "store needs ptr, value, offset"));
            }
            let offset = args[2]
                .strip_prefix("offset ")
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(ln, "store needs offset"))?;
            Ok(InstData::Store {
                ty: parse_type(ty, ln)?,
                ptr: parse_value(args[0], ln)?,
                value: parse_value(args[1], ln)?,
                offset,
            })
        }
        "gep" => {
            let args = split_args(rest);
            let base = parse_value(args[0], ln)?;
            let offset = args
                .iter()
                .find_map(|a| a.strip_prefix("offset "))
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| err(ln, "gep needs offset"))?;
            let index = args
                .iter()
                .find_map(|a| a.strip_prefix("index "))
                .map(|s| parse_value(s, ln))
                .transpose()?;
            let scale = args
                .iter()
                .find_map(|a| a.strip_prefix("scale "))
                .and_then(|s| s.parse().ok())
                .unwrap_or(1);
            Ok(InstData::Gep {
                base,
                offset,
                index,
                scale,
            })
        }
        "stackaddr" => {
            let n = rest
                .strip_prefix("ss")
                .and_then(|s| s.parse::<usize>().ok())
                .ok_or_else(|| err(ln, "stackaddr needs slot"))?;
            Ok(InstData::StackAddr {
                slot: StackSlot::new(n),
            })
        }
        "call" => {
            let open = rest.find('(').ok_or_else(|| err(ln, "call missing ("))?;
            let close = rest.rfind(')').ok_or_else(|| err(ln, "call missing )"))?;
            let callee = rest[..open]
                .trim()
                .strip_prefix("ext")
                .and_then(|s| s.parse::<usize>().ok())
                .ok_or_else(|| err(ln, "call needs extN callee"))?;
            let args: Vec<Value> = split_args(&rest[open + 1..close])
                .into_iter()
                .map(|a| parse_value(a, ln))
                .collect::<Result<_, _>>()?;
            Ok(InstData::Call {
                callee: ExtFuncId::new(callee),
                args,
            })
        }
        "funcaddr" => {
            let n = rest
                .strip_prefix("fn")
                .and_then(|s| s.parse::<usize>().ok())
                .ok_or_else(|| err(ln, "funcaddr needs fnN"))?;
            Ok(InstData::FuncAddr {
                func: FuncId::new(n),
            })
        }
        "phi" => {
            let (ty, rest) = rest
                .split_once(' ')
                .ok_or_else(|| err(ln, "phi needs type"))?;
            let mut pairs = Vec::new();
            for part in split_args(rest) {
                let inner = part
                    .strip_prefix('[')
                    .and_then(|s| s.strip_suffix(']'))
                    .ok_or_else(|| err(ln, "phi pair needs [block value]"))?;
                let (b, v) = inner
                    .trim()
                    .split_once(' ')
                    .ok_or_else(|| err(ln, "phi pair needs block and value"))?;
                pairs.push((parse_block(b.trim(), ln)?, parse_value(v.trim(), ln)?));
            }
            Ok(InstData::Phi {
                ty: parse_type(ty, ln)?,
                pairs,
            })
        }
        "jump" => Ok(InstData::Jump {
            dest: parse_block(rest, ln)?,
        }),
        "br" => {
            let toks: Vec<&str> = rest.split_whitespace().collect();
            if toks.len() != 3 {
                return Err(err(ln, "br needs cond and two blocks"));
            }
            Ok(InstData::Branch {
                cond: parse_value(toks[0], ln)?,
                then_dest: parse_block(toks[1], ln)?,
                else_dest: parse_block(toks[2], ln)?,
            })
        }
        "ret" => Ok(InstData::Return {
            value: if rest.is_empty() {
                None
            } else {
                Some(parse_value(rest, ln)?)
            },
        }),
        "unreachable" => Ok(InstData::Unreachable),
        _ => {
            // Binary ops and casts share the `<op> <ty> <args>` shape.
            if let Some(bop) = Opcode::from_mnemonic(op) {
                let (ty, rest) = rest
                    .split_once(' ')
                    .ok_or_else(|| err(ln, "binary op needs type"))?;
                let args = split_args(rest);
                if args.len() != 2 {
                    return Err(err(ln, "binary op needs two operands"));
                }
                return Ok(InstData::Binary {
                    op: bop,
                    ty: parse_type(ty, ln)?,
                    args: [parse_value(args[0], ln)?, parse_value(args[1], ln)?],
                });
            }
            if let Some(cop) = CastOp::from_mnemonic(op) {
                let (ty, arg) = rest
                    .split_once(' ')
                    .ok_or_else(|| err(ln, "cast needs type and arg"))?;
                return Ok(InstData::Cast {
                    op: cop,
                    to: parse_type(ty, ln)?,
                    arg: parse_value(arg.trim(), ln)?,
                });
            }
            Err(err(ln, format!("unknown instruction `{op}`")))
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::printer::{print_function, print_module};
    use crate::verify::verify_function;

    fn roundtrip(func: &Function) {
        let text = print_function(func);
        let parsed = parse_function(&text).unwrap_or_else(|e| panic!("{e}\n{text}"));
        assert_eq!(print_function(&parsed), text);
        verify_function(&parsed).unwrap();
    }

    #[test]
    fn roundtrips_loop_function() {
        let mut b = FunctionBuilder::new("sum", Signature::new(vec![Type::I64], Type::I64));
        let entry = b.entry_block();
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        let zero = b.iconst(Type::I64, 0);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, zero)]);
        let n = b.param(0);
        let c = b.icmp(CmpOp::SLt, Type::I64, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let one = b.iconst(Type::I64, 1);
        let i2 = b.binary(Opcode::SAddTrap, Type::I64, i, one);
        b.phi_add_incoming(i, body, i2);
        b.jump(header);
        b.switch_to(exit);
        b.ret(Some(i));
        roundtrip(&b.finish());
    }

    #[test]
    fn roundtrips_memory_calls_and_specials() {
        let mut b = FunctionBuilder::new("mix", Signature::new(vec![Type::Ptr], Type::I64));
        let slot = b.stack_slot(64);
        let ext = b.declare_ext_func(ExtFuncDecl {
            name: "rt_hash_insert".into(),
            sig: Signature::new(vec![Type::Ptr, Type::I64], Type::Ptr),
        });
        let e = b.entry_block();
        b.switch_to(e);
        let p = b.param(0);
        let v = b.load(Type::I64, p, 8);
        let h = b.crc32(v, v);
        let h2 = b.long_mul_fold(h, v);
        let addr = b.stack_addr(slot);
        b.store(Type::I64, addr, h2, 16);
        let dest = b.call(ext, vec![addr, h2]).unwrap();
        let g = b.gep_indexed(dest, 4, v, 8);
        let x = b.load(Type::I64, g, 0);
        let c = b.icmp(CmpOp::UGt, Type::I64, x, v);
        let s = b.select(Type::I64, c, x, v);
        b.ret(Some(s));
        roundtrip(&b.finish());
    }

    #[test]
    fn roundtrips_floats_and_casts() {
        let mut b = FunctionBuilder::new("fc", Signature::new(vec![Type::F64], Type::I32));
        let e = b.entry_block();
        b.switch_to(e);
        let x = b.param(0);
        let half = b.fconst(0.5);
        let y = b.binary(Opcode::FMul, Type::F64, x, half);
        let c = b.fcmp(CmpOp::SLt, y, x);
        let w = b.zext(Type::I32, c);
        let i = b.cast(CastOp::FToSi, Type::I64, y);
        let t = b.trunc(Type::I32, i);
        let r = b.add(Type::I32, w, t);
        b.ret(Some(r));
        roundtrip(&b.finish());
    }

    #[test]
    fn roundtrips_module() {
        let mut m = Module::new("mod1");
        for name in ["a", "b"] {
            let mut b = FunctionBuilder::new(name, Signature::new(vec![], Type::Void));
            let e = b.entry_block();
            b.switch_to(e);
            b.ret(None);
            m.push_function(b.finish());
        }
        let text = print_module(&m);
        let parsed = parse_module(&text).unwrap();
        assert_eq!(parsed.len(), 2);
        assert_eq!(print_module(&parsed), text);
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_function("define i64 @f() {\nb0:\n  %0 = frobnicate\n}").is_err());
        assert!(parse_function("nonsense").is_err());
        assert!(parse_module("not a module").is_err());
    }
}
