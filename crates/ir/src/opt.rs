//! Rebuild-based optimization passes over IR functions.
//!
//! These are the classic scalar optimizations both optimizing back-ends of
//! the paper run (the LLVM analog's -O2 set, Sec. V-A1, and the C
//! compiler's -O3 pipeline, Sec. IV): common-subexpression elimination,
//! instruction combining, loop-invariant code motion, and dead-code
//! elimination. Every pass rewrites the function wholesale — repeated IR
//! rewriting is precisely the cost structure the paper attributes to
//! optimizing compilation.

use crate::{
    Block, Cfg, DomTree, Function, FunctionBuilder, InstData, Loops, Opcode, ReversePostorder,
    Value, ValueDef,
};
use std::collections::HashMap;

/// Rebuild-based function transformation: apply `keep`/`replace` decisions
/// computed by an optimization pass. `subst` maps an original value to the
/// value that should be used instead (CSE/InstCombine results); `drop`
/// marks instructions to omit (DCE/hoisted duplicates).
pub struct Rewrite {
    /// Instruction indices to omit.
    pub drop: Vec<bool>,
    /// Value substitutions (old → earlier equivalent).
    pub subst: HashMap<Value, Value>,
}

/// Applies a rewrite by rebuilding the function (LLVM-style repeated IR
/// rewriting; the cost is the point).
pub fn apply_rewrite(func: &Function, rw: &Rewrite) -> Function {
    let mut b = FunctionBuilder::new(&func.name, func.sig.clone());
    let mut map: HashMap<Value, Value> = HashMap::new();
    for (i, &p) in func.params().iter().enumerate() {
        map.insert(p, b.param(i));
    }
    for _ in func.blocks().skip(1) {
        b.create_block();
    }
    let mut slot_map = Vec::new();
    for s in func.stack_slots() {
        slot_map.push(b.stack_slot(s.size));
    }
    let mut ext_map = Vec::new();
    for d in func.ext_funcs() {
        ext_map.push(b.declare_ext_func(d.clone()));
    }
    let resolve = |map: &HashMap<Value, Value>, rw: &Rewrite, mut v: Value| -> Value {
        // Follow substitution chains, then remap into the new function.
        let mut guard = 0;
        while let Some(&n) = rw.subst.get(&v) {
            v = n;
            guard += 1;
            assert!(guard < 1000, "substitution cycle");
        }
        map[&v]
    };
    // Pre-create phis; incoming edges are filled after the rebuild.
    let mut phi_fixups: Vec<(Value, Vec<(Block, Value)>)> = Vec::new();
    for block in func.blocks() {
        b.switch_to(block);
        for &inst in func.block_insts(block) {
            if rw.drop[inst.index()] {
                continue;
            }
            if let InstData::Phi { ty, .. } = func.inst(inst) {
                let res = func.inst_result(inst).expect("phi result");
                let p = b.phi(*ty, Vec::new());
                map.insert(res, p);
            } else {
                break;
            }
        }
    }
    for block in func.blocks() {
        b.switch_to(block);
        for &inst in func.block_insts(block) {
            if rw.drop[inst.index()] {
                continue;
            }
            let data = func.inst(inst).clone();
            let res = func.inst_result(inst);
            if let InstData::Phi { pairs, .. } = data {
                phi_fixups.push((res.expect("phi result"), pairs));
                continue;
            }
            let remapped = remap_with(&data, |v| resolve(&map, rw, v), &slot_map, &ext_map);
            let (_, r) = b.append(remapped);
            if let (Some(orig), Some(new)) = (res, r) {
                map.insert(orig, new);
            }
        }
    }
    for (orig, pairs) in phi_fixups {
        let p = map[&orig];
        for (pred, v) in pairs {
            let nv = resolve(&map, rw, v);
            b.phi_add_incoming(p, pred, nv);
        }
    }
    b.finish()
}

fn remap_with(
    data: &InstData,
    mut m: impl FnMut(Value) -> Value,
    slot_map: &[crate::StackSlot],
    ext_map: &[crate::ExtFuncId],
) -> InstData {
    match data.clone() {
        InstData::IConst { ty, imm } => InstData::IConst { ty, imm },
        InstData::FConst { imm } => InstData::FConst { imm },
        InstData::Binary { op, ty, args } => InstData::Binary {
            op,
            ty,
            args: [m(args[0]), m(args[1])],
        },
        InstData::Cmp { op, ty, args } => InstData::Cmp {
            op,
            ty,
            args: [m(args[0]), m(args[1])],
        },
        InstData::FCmp { op, args } => InstData::FCmp {
            op,
            args: [m(args[0]), m(args[1])],
        },
        InstData::Cast { op, to, arg } => InstData::Cast {
            op,
            to,
            arg: m(arg),
        },
        InstData::Crc32 { args } => InstData::Crc32 {
            args: [m(args[0]), m(args[1])],
        },
        InstData::LongMulFold { args } => InstData::LongMulFold {
            args: [m(args[0]), m(args[1])],
        },
        InstData::Select {
            ty,
            cond,
            if_true,
            if_false,
        } => InstData::Select {
            ty,
            cond: m(cond),
            if_true: m(if_true),
            if_false: m(if_false),
        },
        InstData::Load { ty, ptr, offset } => InstData::Load {
            ty,
            ptr: m(ptr),
            offset,
        },
        InstData::Store {
            ty,
            ptr,
            value,
            offset,
        } => InstData::Store {
            ty,
            ptr: m(ptr),
            value: m(value),
            offset,
        },
        InstData::Gep {
            base,
            offset,
            index,
            scale,
        } => InstData::Gep {
            base: m(base),
            offset,
            index: index.map(&mut m),
            scale,
        },
        InstData::StackAddr { slot } => InstData::StackAddr {
            slot: slot_map[slot.index()],
        },
        InstData::Call { callee, args } => InstData::Call {
            callee: ext_map[callee.index()],
            args: args.into_iter().map(m).collect(),
        },
        InstData::FuncAddr { func } => InstData::FuncAddr { func },
        InstData::Jump { dest } => InstData::Jump { dest },
        InstData::Branch {
            cond,
            then_dest,
            else_dest,
        } => InstData::Branch {
            cond: m(cond),
            then_dest,
            else_dest,
        },
        InstData::Return { value } => InstData::Return {
            value: value.map(m),
        },
        InstData::Unreachable => InstData::Unreachable,
        InstData::Phi { .. } => unreachable!(),
    }
}

fn pure_key(data: &InstData) -> Option<String> {
    if data.has_side_effects() || data.is_terminator() {
        return None;
    }
    match data {
        InstData::Load { .. } | InstData::Phi { .. } => None, // loads not CSE'd (no alias info)
        _ => Some(format!("{data:?}")),
    }
}

/// Redundant-Φ pruning: a Φ whose incoming values are all the same value
/// (or the Φ itself) is replaced by that value. The C front end inserts
/// conservative Φs during SSA reconstruction; this pass (GCC would call it
/// part of its SSA cleanup) removes them.
pub fn pass_phi_prune(func: &Function) -> Function {
    let mut cur = func.clone();
    loop {
        let mut rw = Rewrite {
            drop: vec![false; cur.num_insts()],
            subst: HashMap::new(),
        };
        let mut any = false;
        for block in cur.blocks() {
            for &inst in cur.block_insts(block) {
                let InstData::Phi { pairs, .. } = cur.inst(inst) else {
                    continue;
                };
                let res = cur.inst_result(inst).expect("phi result");
                let mut unique: Option<Value> = None;
                let mut trivial = true;
                for &(_, v) in pairs {
                    if v == res {
                        continue;
                    }
                    match unique {
                        None => unique = Some(v),
                        Some(u) if u == v => {}
                        Some(_) => {
                            trivial = false;
                            break;
                        }
                    }
                }
                if trivial {
                    if let Some(u) = unique {
                        rw.subst.insert(res, u);
                        rw.drop[inst.index()] = true;
                        any = true;
                    }
                }
            }
        }
        if !any {
            return cur;
        }
        cur = apply_rewrite(&cur, &rw);
    }
}

/// Common-subexpression elimination (dominator-scoped value numbering).
pub fn pass_cse(func: &Function) -> Function {
    let cfg = Cfg::compute(func);
    let rpo = ReversePostorder::compute(func, &cfg);
    let dt = DomTree::compute(func, &cfg, &rpo);
    let mut rw = Rewrite {
        drop: vec![false; func.num_insts()],
        subst: HashMap::new(),
    };
    // Available expressions per key: (block, value); valid if the def
    // block dominates the current block.
    let mut avail: HashMap<String, Vec<(Block, Value)>> = HashMap::new();
    for &block in rpo.order() {
        for &inst in func.block_insts(block) {
            let data = func.inst(inst);
            if matches!(data, InstData::Phi { .. }) {
                continue;
            }
            let Some(res) = func.inst_result(inst) else {
                continue;
            };
            // Keys must be computed against already-substituted operands.
            let data = remap_with(
                data,
                |v| {
                    let mut v = v;
                    while let Some(&n) = rw.subst.get(&v) {
                        v = n;
                    }
                    v
                },
                &(0..func.stack_slots().len())
                    .map(crate::StackSlot::new)
                    .collect::<Vec<_>>(),
                &(0..func.ext_funcs().len())
                    .map(crate::ExtFuncId::new)
                    .collect::<Vec<_>>(),
            );
            let Some(key) = pure_key(&data) else { continue };
            let hits = avail.entry(key).or_default();
            if let Some(&(_, prev)) = hits.iter().find(|(db, _)| dt.dominates(*db, block)) {
                rw.subst.insert(res, prev);
                rw.drop[inst.index()] = true;
            } else {
                hits.push((block, res));
            }
        }
    }
    apply_rewrite(func, &rw)
}

/// Instruction combining: strength reduction and identity folds.
pub fn pass_instcombine(func: &Function) -> Function {
    let mut rw = Rewrite {
        drop: vec![false; func.num_insts()],
        subst: HashMap::new(),
    };
    let const_of = |v: Value| -> Option<i128> {
        match func.value_def(v) {
            ValueDef::Inst(i) => match func.inst(i) {
                InstData::IConst { imm, .. } => Some(*imm),
                _ => None,
            },
            ValueDef::Param(_) => None,
        }
    };
    for block in func.blocks() {
        for &inst in func.block_insts(block) {
            let Some(res) = func.inst_result(inst) else {
                continue;
            };
            if let InstData::Binary { op, args, .. } = func.inst(inst) {
                let identity = match op {
                    Opcode::Add | Opcode::Or | Opcode::Xor | Opcode::Shl | Opcode::LShr => 0,
                    Opcode::Mul => 1,
                    _ => continue,
                };
                if const_of(args[1]) == Some(identity) {
                    rw.subst.insert(res, args[0]);
                    rw.drop[inst.index()] = true;
                }
            }
        }
    }
    apply_rewrite(func, &rw)
}

/// Dead-code elimination.
pub fn pass_dce(func: &Function) -> Function {
    let mut used = vec![0u32; func.num_values()];
    for block in func.blocks() {
        for &inst in func.block_insts(block) {
            func.inst(inst).for_each_arg(|v| used[v.index()] += 1);
        }
    }
    let mut rw = Rewrite {
        drop: vec![false; func.num_insts()],
        subst: HashMap::new(),
    };
    // Iterate to a fixpoint (dropping one instruction may kill another).
    let mut changed = true;
    while changed {
        changed = false;
        for block in func.blocks() {
            for &inst in func.block_insts(block) {
                if rw.drop[inst.index()] {
                    continue;
                }
                let data = func.inst(inst);
                if data.has_side_effects() || data.is_terminator() {
                    continue;
                }
                if let Some(res) = func.inst_result(inst) {
                    if used[res.index()] == 0 {
                        rw.drop[inst.index()] = true;
                        data.for_each_arg(|v| used[v.index()] -= 1);
                        changed = true;
                    }
                }
            }
        }
    }
    apply_rewrite(func, &rw)
}

/// Loop-invariant code motion: hoists pure instructions whose operands are
/// defined outside the loop into the preheader.
pub fn pass_licm(func: &Function) -> Function {
    let cfg = Cfg::compute(func);
    let rpo = ReversePostorder::compute(func, &cfg);
    // The paper notes the dominator tree and loop info are computed twice
    // in the optimized pipeline; model that faithfully.
    let dt = DomTree::compute(func, &cfg, &rpo);
    let loops = Loops::compute(func, &cfg, &rpo, &dt);
    let dt2 = DomTree::compute(func, &cfg, &rpo);
    let loops2 = Loops::compute(func, &cfg, &rpo, &dt2);
    let _ = (dt2, loops2);

    // Build: for each loop, its preheader (unique out-of-loop pred of the
    // header) and the set of hoistable instructions.
    let mut hoist_to: HashMap<usize, Block> = HashMap::new(); // inst index -> preheader
    for l in loops.loops() {
        let preds = cfg.preds(l.header);
        let outside: Vec<Block> = preds
            .iter()
            .copied()
            .filter(|p| !l.blocks.contains(p))
            .collect();
        let [preheader] = outside[..] else { continue };
        let mut defined_in_loop = vec![false; func.num_values()];
        for &b in &l.blocks {
            for &i in func.block_insts(b) {
                if let Some(r) = func.inst_result(i) {
                    defined_in_loop[r.index()] = true;
                }
            }
        }
        // One hoisting round (LLVM iterates; one round captures the bulk).
        for &b in &l.blocks {
            for &i in func.block_insts(b) {
                let data = func.inst(i);
                if data.has_side_effects()
                    || data.is_terminator()
                    || matches!(data, InstData::Phi { .. } | InstData::Load { .. })
                {
                    continue;
                }
                let mut invariant = true;
                data.for_each_arg(|v| invariant &= !defined_in_loop[v.index()]);
                if invariant {
                    if let Some(r) = func.inst_result(i) {
                        defined_in_loop[r.index()] = false; // now invariant
                        hoist_to.insert(i.index(), preheader);
                    }
                }
            }
        }
    }
    if hoist_to.is_empty() {
        return func.clone();
    }
    // Rebuild with hoisted instructions moved to their preheaders.
    let mut b = FunctionBuilder::new(&func.name, func.sig.clone());
    let mut map: HashMap<Value, Value> = HashMap::new();
    for (i, &p) in func.params().iter().enumerate() {
        map.insert(p, b.param(i));
    }
    for _ in func.blocks().skip(1) {
        b.create_block();
    }
    let mut slot_map = Vec::new();
    for s in func.stack_slots() {
        slot_map.push(b.stack_slot(s.size));
    }
    let mut ext_map = Vec::new();
    for d in func.ext_funcs() {
        ext_map.push(b.declare_ext_func(d.clone()));
    }
    for block in func.blocks() {
        b.switch_to(block);
        for &inst in func.block_insts(block) {
            if let InstData::Phi { ty, .. } = func.inst(inst) {
                let res = func.inst_result(inst).expect("phi result");
                let p = b.phi(*ty, Vec::new());
                map.insert(res, p);
            } else {
                break;
            }
        }
    }
    // Emission order: per block — non-hoisted instructions, but before the
    // terminator of a preheader, all instructions hoisted to it (in
    // original order; operands are loop-invariant, hence already mapped).
    let mut phi_fixups2: Vec<(Value, Vec<(Block, Value)>)> = Vec::new();
    let mut hoisted_per_block: HashMap<Block, Vec<crate::Inst>> = HashMap::new();
    for (i, &ph) in &hoist_to {
        hoisted_per_block
            .entry(ph)
            .or_default()
            .push(crate::Inst::new(*i));
    }
    for v in hoisted_per_block.values_mut() {
        v.sort_by_key(|i| i.index());
    }
    for block in func.blocks() {
        b.switch_to(block);
        let insts: Vec<crate::Inst> = func.block_insts(block).to_vec();
        for (pos, &inst) in insts.iter().enumerate() {
            let is_term = pos + 1 == insts.len();
            if is_term {
                if let Some(hoisted) = hoisted_per_block.get(&block) {
                    for &h in hoisted {
                        let data = func.inst(h).clone();
                        let remapped = remap_with(&data, |v| map[&v], &slot_map, &ext_map);
                        let (_, r) = b.append(remapped);
                        if let (Some(orig), Some(new)) = (func.inst_result(h), r) {
                            map.insert(orig, new);
                        }
                    }
                }
            }
            if hoist_to.contains_key(&inst.index()) {
                continue;
            }
            let data = func.inst(inst).clone();
            let res = func.inst_result(inst);
            if let InstData::Phi { pairs, .. } = data {
                phi_fixups2.push((res.expect("phi result"), pairs));
                continue;
            }
            let remapped = remap_with(&data, |v| map[&v], &slot_map, &ext_map);
            let (_, r) = b.append(remapped);
            if let (Some(orig), Some(new)) = (res, r) {
                map.insert(orig, new);
            }
        }
    }
    for (orig, pairs) in phi_fixups2 {
        let p = map[&orig];
        for (pred, v) in pairs {
            let nv = map[&v];
            b.phi_add_incoming(p, pred, nv);
        }
    }
    b.finish()
}
