//! Convenient construction of IR functions.

use crate::entities::{Block, ExtFuncId, FuncId, Inst, StackSlot, Value};
use crate::function::{ExtFuncDecl, Function, Signature, StackSlotData};
use crate::instr::{CastOp, CmpOp, InstData, Opcode};
use crate::types::Type;

/// Builds a [`Function`] by appending instructions to a current block.
///
/// The builder mirrors how Umbra's operator translators emit IR: strictly
/// append-only, one pass, no mutation of already-emitted code.
///
/// # Example
/// ```
/// use qc_ir::{FunctionBuilder, Signature, Type};
/// let mut b = FunctionBuilder::new("abs_diff", Signature::new(vec![Type::I64, Type::I64], Type::I64));
/// let (entry, lt, ge) = (b.entry_block(), b.create_block(), b.create_block());
/// b.switch_to(entry);
/// let (x, y) = (b.param(0), b.param(1));
/// let c = b.icmp(qc_ir::CmpOp::SLt, Type::I64, x, y);
/// b.branch(c, lt, ge);
/// b.switch_to(lt);
/// let d1 = b.sub(Type::I64, y, x);
/// b.ret(Some(d1));
/// b.switch_to(ge);
/// let d2 = b.sub(Type::I64, x, y);
/// b.ret(Some(d2));
/// let f = b.finish();
/// assert_eq!(f.num_blocks(), 3);
/// ```
#[derive(Debug)]
pub struct FunctionBuilder {
    func: Function,
    current: Option<Block>,
}

impl FunctionBuilder {
    /// Starts building a function with the given name and signature. The
    /// entry block exists from the start.
    pub fn new(name: &str, sig: Signature) -> Self {
        FunctionBuilder {
            func: Function::with_signature(name, sig),
            current: None,
        }
    }

    /// The entry block.
    pub fn entry_block(&self) -> Block {
        self.func.entry_block()
    }

    /// Creates a new, empty block.
    pub fn create_block(&mut self) -> Block {
        self.func.add_block()
    }

    /// Makes `block` the insertion point for subsequent instructions.
    pub fn switch_to(&mut self, block: Block) {
        self.current = Some(block);
    }

    /// The block instructions are currently appended to.
    pub fn current_block(&self) -> Option<Block> {
        self.current
    }

    /// The `n`-th parameter value.
    pub fn param(&self, n: usize) -> Value {
        self.func.params()[n]
    }

    /// Declares a stack slot of `size` bytes with 16-byte alignment.
    pub fn stack_slot(&mut self, size: u32) -> StackSlot {
        self.func.add_stack_slot(StackSlotData { size, align: 16 })
    }

    /// Declares (or re-uses) an external function.
    pub fn declare_ext_func(&mut self, decl: ExtFuncDecl) -> ExtFuncId {
        self.func.declare_ext_func(decl)
    }

    /// Read-only view of the function under construction.
    pub fn func(&self) -> &Function {
        &self.func
    }

    /// Appends a raw instruction, returning its result value if any.
    ///
    /// # Panics
    /// Panics if no current block is set, or if appending to a block that
    /// already has a terminator.
    pub fn append(&mut self, data: InstData) -> (Inst, Option<Value>) {
        let block = self.current.expect("no current block set");
        if let Some(&last) = self.func.blocks[block.index()].insts.last() {
            assert!(
                !self.func.inst(last).is_terminator(),
                "appending to terminated block {block}"
            );
        }
        self.func.append_inst(block, data)
    }

    fn value_inst(&mut self, data: InstData) -> Value {
        self.append(data).1.expect("instruction has no result")
    }

    /// Integer/bool/pointer constant.
    pub fn iconst(&mut self, ty: Type, imm: i128) -> Value {
        self.value_inst(InstData::IConst { ty, imm })
    }

    /// Float constant.
    pub fn fconst(&mut self, imm: f64) -> Value {
        self.value_inst(InstData::FConst { imm })
    }

    /// Generic binary operation.
    pub fn binary(&mut self, op: Opcode, ty: Type, a: Value, b: Value) -> Value {
        self.value_inst(InstData::Binary {
            op,
            ty,
            args: [a, b],
        })
    }

    /// Wrapping addition.
    pub fn add(&mut self, ty: Type, a: Value, b: Value) -> Value {
        self.binary(Opcode::Add, ty, a, b)
    }

    /// Wrapping subtraction.
    pub fn sub(&mut self, ty: Type, a: Value, b: Value) -> Value {
        self.binary(Opcode::Sub, ty, a, b)
    }

    /// Wrapping multiplication.
    pub fn mul(&mut self, ty: Type, a: Value, b: Value) -> Value {
        self.binary(Opcode::Mul, ty, a, b)
    }

    /// Integer comparison.
    pub fn icmp(&mut self, op: CmpOp, ty: Type, a: Value, b: Value) -> Value {
        self.value_inst(InstData::Cmp {
            op,
            ty,
            args: [a, b],
        })
    }

    /// Float comparison.
    pub fn fcmp(&mut self, op: CmpOp, a: Value, b: Value) -> Value {
        self.value_inst(InstData::FCmp { op, args: [a, b] })
    }

    /// Conversion.
    pub fn cast(&mut self, op: CastOp, to: Type, arg: Value) -> Value {
        self.value_inst(InstData::Cast { op, to, arg })
    }

    /// Zero-extension.
    pub fn zext(&mut self, to: Type, arg: Value) -> Value {
        self.cast(CastOp::Zext, to, arg)
    }

    /// Sign-extension.
    pub fn sext(&mut self, to: Type, arg: Value) -> Value {
        self.cast(CastOp::Sext, to, arg)
    }

    /// Truncation.
    pub fn trunc(&mut self, to: Type, arg: Value) -> Value {
        self.cast(CastOp::Trunc, to, arg)
    }

    /// CRC-32 hash step.
    pub fn crc32(&mut self, acc: Value, data: Value) -> Value {
        self.value_inst(InstData::Crc32 { args: [acc, data] })
    }

    /// Long-mul-fold hash combiner.
    pub fn long_mul_fold(&mut self, a: Value, b: Value) -> Value {
        self.value_inst(InstData::LongMulFold { args: [a, b] })
    }

    /// Conditional select.
    pub fn select(&mut self, ty: Type, cond: Value, if_true: Value, if_false: Value) -> Value {
        self.value_inst(InstData::Select {
            ty,
            cond,
            if_true,
            if_false,
        })
    }

    /// Memory load.
    pub fn load(&mut self, ty: Type, ptr: Value, offset: i32) -> Value {
        self.value_inst(InstData::Load { ty, ptr, offset })
    }

    /// Memory store.
    pub fn store(&mut self, ty: Type, ptr: Value, value: Value, offset: i32) {
        self.append(InstData::Store {
            ty,
            ptr,
            value,
            offset,
        });
    }

    /// Address arithmetic without a dynamic index.
    pub fn gep(&mut self, base: Value, offset: i64) -> Value {
        self.value_inst(InstData::Gep {
            base,
            offset,
            index: None,
            scale: 1,
        })
    }

    /// Address arithmetic with a dynamic scaled index.
    pub fn gep_indexed(&mut self, base: Value, offset: i64, index: Value, scale: u8) -> Value {
        self.value_inst(InstData::Gep {
            base,
            offset,
            index: Some(index),
            scale,
        })
    }

    /// Address of a stack slot.
    pub fn stack_addr(&mut self, slot: StackSlot) -> Value {
        self.value_inst(InstData::StackAddr { slot })
    }

    /// Call to an external runtime function.
    pub fn call(&mut self, callee: ExtFuncId, args: Vec<Value>) -> Option<Value> {
        self.append(InstData::Call { callee, args }).1
    }

    /// Address of another generated function.
    pub fn func_addr(&mut self, func: FuncId) -> Value {
        self.value_inst(InstData::FuncAddr { func })
    }

    /// SSA Φ-node. Must be emitted before any non-Φ instruction of the
    /// current block.
    pub fn phi(&mut self, ty: Type, pairs: Vec<(Block, Value)>) -> Value {
        self.value_inst(InstData::Phi { ty, pairs })
    }

    /// Extends an existing Φ with a new `(pred, value)` pair. Needed when
    /// generating loops, where back-edge operands become known only after
    /// the loop body is emitted.
    ///
    /// # Panics
    /// Panics if `phi` was not defined by a Φ-instruction.
    pub fn phi_add_incoming(&mut self, phi: Value, pred: Block, value: Value) {
        let inst = match self.func.value_def(phi) {
            crate::function::ValueDef::Inst(i) => i,
            _ => panic!("phi_add_incoming on non-instruction value"),
        };
        match &mut self.func.insts[inst.index()] {
            InstData::Phi { pairs, .. } => pairs.push((pred, value)),
            _ => panic!("phi_add_incoming on non-phi instruction"),
        }
    }

    /// Unconditional jump.
    pub fn jump(&mut self, dest: Block) {
        self.append(InstData::Jump { dest });
    }

    /// Conditional branch.
    pub fn branch(&mut self, cond: Value, then_dest: Block, else_dest: Block) {
        self.append(InstData::Branch {
            cond,
            then_dest,
            else_dest,
        });
    }

    /// Return.
    pub fn ret(&mut self, value: Option<Value>) {
        self.append(InstData::Return { value });
    }

    /// Marks the current point unreachable.
    pub fn unreachable(&mut self) {
        self.append(InstData::Unreachable);
    }

    /// Finishes construction and yields the function.
    pub fn finish(self) -> Function {
        self.func
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::verify::verify_function;

    #[test]
    fn build_loop_with_phi_backedge() {
        // sum = 0; for (i = 0; i < n; i++) sum += i; return sum;
        let sig = Signature::new(vec![Type::I64], Type::I64);
        let mut b = FunctionBuilder::new("sum_to_n", sig);
        let entry = b.entry_block();
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();

        b.switch_to(entry);
        let zero = b.iconst(Type::I64, 0);
        b.jump(header);

        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, zero)]);
        let sum = b.phi(Type::I64, vec![(entry, zero)]);
        let n = b.param(0);
        let cond = b.icmp(CmpOp::SLt, Type::I64, i, n);
        b.branch(cond, body, exit);

        b.switch_to(body);
        let sum2 = b.add(Type::I64, sum, i);
        let one = b.iconst(Type::I64, 1);
        let i2 = b.add(Type::I64, i, one);
        b.phi_add_incoming(i, body, i2);
        b.phi_add_incoming(sum, body, sum2);
        b.jump(header);

        b.switch_to(exit);
        b.ret(Some(sum));

        let f = b.finish();
        verify_function(&f).unwrap();
        assert_eq!(f.num_blocks(), 4);
    }

    #[test]
    #[should_panic(expected = "terminated block")]
    fn append_after_terminator_panics() {
        let mut b = FunctionBuilder::new("f", Signature::new(vec![], Type::Void));
        let e = b.entry_block();
        b.switch_to(e);
        b.ret(None);
        b.ret(None);
    }

    #[test]
    #[should_panic(expected = "no current block")]
    fn append_without_block_panics() {
        let mut b = FunctionBuilder::new("f", Signature::new(vec![], Type::Void));
        b.ret(None);
    }

    #[test]
    fn stack_slots_and_calls() {
        let mut b = FunctionBuilder::new("f", Signature::new(vec![], Type::I64));
        let slot = b.stack_slot(32);
        let callee = b.declare_ext_func(ExtFuncDecl {
            name: "rt_fill".into(),
            sig: Signature::new(vec![Type::Ptr], Type::I64),
        });
        let e = b.entry_block();
        b.switch_to(e);
        let addr = b.stack_addr(slot);
        let r = b.call(callee, vec![addr]).unwrap();
        b.ret(Some(r));
        let f = b.finish();
        verify_function(&f).unwrap();
        assert_eq!(f.stack_slot(slot).size, 32);
    }
}
