//! Natural loop detection.

use crate::cfg::{Cfg, ReversePostorder};
use crate::domtree::DomTree;
use crate::entities::Block;
use crate::function::Function;

/// One natural loop.
#[derive(Debug, Clone)]
pub struct LoopInfo {
    /// The loop header (target of the back edge).
    pub header: Block,
    /// All blocks of the loop body, including the header.
    pub blocks: Vec<Block>,
}

/// Natural loops of a function, with per-block nesting depth.
///
/// Query code contains "arbitrarily deeply nested loops (e.g., with many
/// table joins, one loop nest per join)" (paper Sec. III-A); DirectEmit
/// uses loop depth for its spill heuristic and the LLVM-analog's LICM and
/// greedy register allocator consume it too.
#[derive(Debug, Clone)]
pub struct Loops {
    loops: Vec<LoopInfo>,
    depth: Vec<u32>,
    irreducible: bool,
}

impl Loops {
    /// Detects natural loops from back edges (`tail -> header` where
    /// `header` dominates `tail`). A branch to a non-dominating block that
    /// is already on the DFS path marks the CFG irreducible.
    pub fn compute(func: &Function, cfg: &Cfg, rpo: &ReversePostorder, dt: &DomTree) -> Self {
        let n = func.num_blocks();
        let mut loops: Vec<LoopInfo> = Vec::new();
        let mut depth = vec![0u32; n];
        let mut irreducible = false;

        for &block in rpo.order() {
            for &succ in cfg.succs(block) {
                // Retreating edge: successor appears before us in RPO.
                let retreating = rpo
                    .position(succ)
                    .is_some_and(|sp| sp <= rpo.position(block).unwrap_or(usize::MAX));
                if !retreating {
                    continue;
                }
                if !dt.dominates(succ, block) {
                    irreducible = true;
                    continue;
                }
                // Natural loop of back edge block -> succ: walk predecessors
                // backwards from the tail until the header.
                let header = succ;
                let mut body = vec![header];
                let mut seen = vec![false; n];
                seen[header.index()] = true;
                // Seed with the tail unless the back edge is a self-loop:
                // the header's own predecessors are outside the loop.
                let mut stack = Vec::new();
                if block != header {
                    seen[block.index()] = true;
                    stack.push(block);
                }
                while let Some(b) = stack.pop() {
                    body.push(b);
                    for &p in cfg.preds(b) {
                        if !seen[p.index()] && rpo.is_reachable(p) {
                            seen[p.index()] = true;
                            stack.push(p);
                        }
                    }
                }
                body.sort_unstable();
                body.dedup();
                // Merge with an existing loop of the same header (multiple
                // back edges to one header form one loop).
                if let Some(existing) = loops.iter_mut().find(|l| l.header == header) {
                    existing.blocks.extend_from_slice(&body);
                    existing.blocks.sort_unstable();
                    existing.blocks.dedup();
                } else {
                    loops.push(LoopInfo {
                        header,
                        blocks: body,
                    });
                }
            }
        }
        for l in &loops {
            for &b in &l.blocks {
                depth[b.index()] += 1;
            }
        }
        Loops {
            loops,
            depth,
            irreducible,
        }
    }

    /// All detected loops, outermost-first by header RPO position.
    pub fn loops(&self) -> &[LoopInfo] {
        &self.loops
    }

    /// Loop nesting depth of a block (0 = not in any loop).
    pub fn depth(&self, block: Block) -> u32 {
        self.depth[block.index()]
    }

    /// Whether the CFG contains irreducible control flow. DirectEmit
    /// rejects such functions (paper Sec. VII).
    pub fn is_irreducible(&self) -> bool {
        self.irreducible
    }

    /// Whether `block` is a loop header.
    pub fn is_header(&self, block: Block) -> bool {
        self.loops.iter().any(|l| l.header == block)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::Signature;
    use crate::instr::CmpOp;
    use crate::types::Type;

    fn analyses(f: &Function) -> Loops {
        let cfg = Cfg::compute(f);
        let rpo = ReversePostorder::compute(f, &cfg);
        let dt = DomTree::compute(f, &cfg, &rpo);
        Loops::compute(f, &cfg, &rpo, &dt)
    }

    /// Two nested loops: outer over i, inner over j.
    fn nested_loops() -> Function {
        let mut b = FunctionBuilder::new("n", Signature::new(vec![Type::I64], Type::I64));
        let entry = b.entry_block();
        let oh = b.create_block(); // outer header (1)
        let ih = b.create_block(); // inner header (2)
        let ib = b.create_block(); // inner body (3)
        let ol = b.create_block(); // outer latch (4)
        let exit = b.create_block(); // (5)
        let n = b.param(0);
        b.switch_to(entry);
        let zero = b.iconst(Type::I64, 0);
        b.jump(oh);
        b.switch_to(oh);
        let i = b.phi(Type::I64, vec![(entry, zero)]);
        let c1 = b.icmp(CmpOp::SLt, Type::I64, i, n);
        b.branch(c1, ih, exit);
        b.switch_to(ih);
        let j = b.phi(Type::I64, vec![(oh, zero)]);
        let c2 = b.icmp(CmpOp::SLt, Type::I64, j, n);
        b.branch(c2, ib, ol);
        b.switch_to(ib);
        let one = b.iconst(Type::I64, 1);
        let j2 = b.add(Type::I64, j, one);
        b.phi_add_incoming(j, ib, j2);
        b.jump(ih);
        b.switch_to(ol);
        let one2 = b.iconst(Type::I64, 1);
        let i2 = b.add(Type::I64, i, one2);
        b.phi_add_incoming(i, ol, i2);
        b.jump(oh);
        b.switch_to(exit);
        b.ret(Some(i));
        b.finish()
    }

    #[test]
    fn nested_loop_depths() {
        let f = nested_loops();
        let l = analyses(&f);
        assert!(!l.is_irreducible());
        assert_eq!(l.loops().len(), 2);
        assert_eq!(l.depth(Block::new(0)), 0); // entry
        assert_eq!(l.depth(Block::new(1)), 1); // outer header
        assert_eq!(l.depth(Block::new(2)), 2); // inner header
        assert_eq!(l.depth(Block::new(3)), 2); // inner body
        assert_eq!(l.depth(Block::new(4)), 1); // outer latch
        assert_eq!(l.depth(Block::new(5)), 0); // exit
        assert!(l.is_header(Block::new(1)));
        assert!(l.is_header(Block::new(2)));
        assert!(!l.is_header(Block::new(3)));
    }

    /// A block branching back to itself is a loop of exactly one block;
    /// its predecessor outside the back edge is a valid preheader and must
    /// not be swept into the body (regression: LICM found no preheader).
    #[test]
    fn self_loop_body_excludes_the_preheader() {
        let mut b = FunctionBuilder::new("s", Signature::new(vec![Type::I64], Type::I64));
        let entry = b.entry_block();
        let lp = b.create_block();
        let exit = b.create_block();
        let n = b.param(0);
        b.switch_to(entry);
        let zero = b.iconst(Type::I64, 0);
        b.jump(lp);
        b.switch_to(lp);
        let i = b.phi(Type::I64, vec![(entry, zero)]);
        let one = b.iconst(Type::I64, 1);
        let i2 = b.add(Type::I64, i, one);
        b.phi_add_incoming(i, lp, i2);
        let c = b.icmp(CmpOp::SLt, Type::I64, i2, n);
        b.branch(c, lp, exit);
        b.switch_to(exit);
        b.ret(Some(i2));
        let f = b.finish();
        let l = analyses(&f);
        assert_eq!(l.loops().len(), 1);
        assert_eq!(l.loops()[0].blocks, vec![Block::new(1)]);
        assert_eq!(l.depth(Block::new(0)), 0);
        assert_eq!(l.depth(Block::new(1)), 1);
        assert_eq!(l.depth(Block::new(2)), 0);
    }

    #[test]
    fn straight_line_has_no_loops() {
        let mut b = FunctionBuilder::new("s", Signature::new(vec![], Type::Void));
        let e = b.entry_block();
        b.switch_to(e);
        b.ret(None);
        let f = b.finish();
        let l = analyses(&f);
        assert!(l.loops().is_empty());
        assert!(!l.is_irreducible());
    }

    /// Irreducible: entry branches into the middle of a cycle a <-> b.
    #[test]
    fn detects_irreducible_cfg() {
        let mut bd = FunctionBuilder::new("irr", Signature::new(vec![Type::Bool], Type::Void));
        let entry = bd.entry_block();
        let a = bd.create_block();
        let b = bd.create_block();
        let exit = bd.create_block();
        bd.switch_to(entry);
        let c = bd.param(0);
        bd.branch(c, a, b);
        bd.switch_to(a);
        bd.branch(c, b, exit);
        bd.switch_to(b);
        bd.branch(c, a, exit);
        bd.switch_to(exit);
        bd.ret(None);
        let f = bd.finish();
        let l = analyses(&f);
        assert!(l.is_irreducible());
    }
}
