//! Dominator tree via the Cooper–Harvey–Kennedy algorithm.

use crate::cfg::{Cfg, ReversePostorder};
use crate::entities::Block;
use crate::function::Function;

/// The dominator tree of a function's CFG.
///
/// Computed with the simple iterative algorithm of Cooper, Harvey and
/// Kennedy, which is what both DirectEmit (paper Sec. VII) and the
/// Cranelift-analog use; it converges in two passes for reducible CFGs.
#[derive(Debug, Clone)]
pub struct DomTree {
    /// idom[b] = immediate dominator, or `None` for the entry block and
    /// unreachable blocks.
    idom: Vec<Option<Block>>,
    rpo_pos: Vec<usize>,
}

impl DomTree {
    /// Computes the dominator tree.
    pub fn compute(func: &Function, cfg: &Cfg, rpo: &ReversePostorder) -> Self {
        let n = func.num_blocks();
        let entry = func.entry_block();
        let mut idom: Vec<Option<Block>> = vec![None; n];
        idom[entry.index()] = Some(entry); // sentinel: entry dominates itself
        let rpo_pos: Vec<usize> = (0..n)
            .map(|i| rpo.position(Block::new(i)).unwrap_or(usize::MAX))
            .collect();

        let mut changed = true;
        while changed {
            changed = false;
            for &block in rpo.order().iter().skip(1) {
                let mut new_idom: Option<Block> = None;
                for &pred in cfg.preds(block) {
                    if idom[pred.index()].is_none() {
                        continue; // unprocessed or unreachable predecessor
                    }
                    new_idom = Some(match new_idom {
                        None => pred,
                        Some(cur) => Self::intersect(&idom, &rpo_pos, pred, cur),
                    });
                }
                if let Some(ni) = new_idom {
                    if idom[block.index()] != Some(ni) {
                        idom[block.index()] = Some(ni);
                        changed = true;
                    }
                }
            }
        }
        idom[entry.index()] = None; // entry has no immediate dominator
        DomTree { idom, rpo_pos }
    }

    fn intersect(idom: &[Option<Block>], rpo_pos: &[usize], a: Block, b: Block) -> Block {
        let (mut a, mut b) = (a, b);
        while a != b {
            while rpo_pos[a.index()] > rpo_pos[b.index()] {
                a = idom[a.index()].expect("intersect walked past entry");
            }
            while rpo_pos[b.index()] > rpo_pos[a.index()] {
                b = idom[b.index()].expect("intersect walked past entry");
            }
        }
        a
    }

    /// Immediate dominator of `block` (`None` for entry/unreachable).
    pub fn idom(&self, block: Block) -> Option<Block> {
        self.idom[block.index()]
    }

    /// Whether `a` dominates `b` (reflexive: every block dominates itself).
    pub fn dominates(&self, a: Block, b: Block) -> bool {
        let mut cur = b;
        loop {
            if cur == a {
                return true;
            }
            match self.idom[cur.index()] {
                Some(next) => cur = next,
                None => return false,
            }
        }
    }

    /// RPO position of a block (used by loop analysis to order headers).
    pub fn rpo_position(&self, block: Block) -> usize {
        self.rpo_pos[block.index()]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::Signature;
    use crate::instr::CmpOp;
    use crate::types::Type;

    /// entry(0) -> header(1) -> body(2) -> header; header -> exit(3)
    fn loop_func() -> Function {
        let mut b = FunctionBuilder::new("l", Signature::new(vec![Type::I64], Type::I64));
        let entry = b.entry_block();
        let header = b.create_block();
        let body = b.create_block();
        let exit = b.create_block();
        b.switch_to(entry);
        let zero = b.iconst(Type::I64, 0);
        b.jump(header);
        b.switch_to(header);
        let i = b.phi(Type::I64, vec![(entry, zero)]);
        let n = b.param(0);
        let c = b.icmp(CmpOp::SLt, Type::I64, i, n);
        b.branch(c, body, exit);
        b.switch_to(body);
        let one = b.iconst(Type::I64, 1);
        let i2 = b.add(Type::I64, i, one);
        b.phi_add_incoming(i, body, i2);
        b.jump(header);
        b.switch_to(exit);
        b.ret(Some(i));
        b.finish()
    }

    fn domtree(f: &Function) -> DomTree {
        let cfg = Cfg::compute(f);
        let rpo = ReversePostorder::compute(f, &cfg);
        DomTree::compute(f, &cfg, &rpo)
    }

    #[test]
    fn idoms_of_loop() {
        let f = loop_func();
        let dt = domtree(&f);
        assert_eq!(dt.idom(Block::new(0)), None);
        assert_eq!(dt.idom(Block::new(1)), Some(Block::new(0)));
        assert_eq!(dt.idom(Block::new(2)), Some(Block::new(1)));
        assert_eq!(dt.idom(Block::new(3)), Some(Block::new(1)));
    }

    #[test]
    fn dominates_is_reflexive_and_transitive() {
        let f = loop_func();
        let dt = domtree(&f);
        let (e, h, b, x) = (Block::new(0), Block::new(1), Block::new(2), Block::new(3));
        assert!(dt.dominates(e, e));
        assert!(dt.dominates(e, x));
        assert!(dt.dominates(h, b));
        assert!(dt.dominates(h, x));
        assert!(!dt.dominates(b, x));
        assert!(!dt.dominates(x, b));
    }

    #[test]
    fn diamond_merge_dominated_by_entry_only() {
        let mut bld = FunctionBuilder::new("d", Signature::new(vec![Type::Bool], Type::Void));
        let entry = bld.entry_block();
        let t = bld.create_block();
        let e = bld.create_block();
        let m = bld.create_block();
        bld.switch_to(entry);
        let c = bld.param(0);
        bld.branch(c, t, e);
        bld.switch_to(t);
        bld.jump(m);
        bld.switch_to(e);
        bld.jump(m);
        bld.switch_to(m);
        bld.ret(None);
        let f = bld.finish();
        let dt = domtree(&f);
        assert_eq!(dt.idom(m), Some(entry));
        assert!(!dt.dominates(t, m));
    }
}
