//! Instruction definitions.

use crate::entities::{Block, ExtFuncId, FuncId, StackSlot, Value};
use crate::types::Type;
use std::fmt;

/// Comparison predicate for [`InstData::Cmp`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CmpOp {
    /// Equal.
    Eq,
    /// Not equal.
    Ne,
    /// Signed less-than.
    SLt,
    /// Signed less-or-equal.
    SLe,
    /// Signed greater-than.
    SGt,
    /// Signed greater-or-equal.
    SGe,
    /// Unsigned less-than.
    ULt,
    /// Unsigned less-or-equal.
    ULe,
    /// Unsigned greater-than.
    UGt,
    /// Unsigned greater-or-equal.
    UGe,
}

impl CmpOp {
    /// The predicate with swapped operands (`a < b` ⇔ `b > a`).
    pub fn swapped(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Eq,
            CmpOp::Ne => CmpOp::Ne,
            CmpOp::SLt => CmpOp::SGt,
            CmpOp::SLe => CmpOp::SGe,
            CmpOp::SGt => CmpOp::SLt,
            CmpOp::SGe => CmpOp::SLe,
            CmpOp::ULt => CmpOp::UGt,
            CmpOp::ULe => CmpOp::UGe,
            CmpOp::UGt => CmpOp::ULt,
            CmpOp::UGe => CmpOp::ULe,
        }
    }

    /// The negated predicate (`!(a < b)` ⇔ `a >= b`).
    pub fn negated(self) -> CmpOp {
        match self {
            CmpOp::Eq => CmpOp::Ne,
            CmpOp::Ne => CmpOp::Eq,
            CmpOp::SLt => CmpOp::SGe,
            CmpOp::SLe => CmpOp::SGt,
            CmpOp::SGt => CmpOp::SLe,
            CmpOp::SGe => CmpOp::SLt,
            CmpOp::ULt => CmpOp::UGe,
            CmpOp::ULe => CmpOp::UGt,
            CmpOp::UGt => CmpOp::ULe,
            CmpOp::UGe => CmpOp::ULt,
        }
    }

    /// Textual mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CmpOp::Eq => "eq",
            CmpOp::Ne => "ne",
            CmpOp::SLt => "slt",
            CmpOp::SLe => "sle",
            CmpOp::SGt => "sgt",
            CmpOp::SGe => "sge",
            CmpOp::ULt => "ult",
            CmpOp::ULe => "ule",
            CmpOp::UGt => "ugt",
            CmpOp::UGe => "uge",
        }
    }

    /// Parses a mnemonic produced by [`CmpOp::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<CmpOp> {
        Some(match s {
            "eq" => CmpOp::Eq,
            "ne" => CmpOp::Ne,
            "slt" => CmpOp::SLt,
            "sle" => CmpOp::SLe,
            "sgt" => CmpOp::SGt,
            "sge" => CmpOp::SGe,
            "ult" => CmpOp::ULt,
            "ule" => CmpOp::ULe,
            "ugt" => CmpOp::UGt,
            "uge" => CmpOp::UGe,
            _ => return None,
        })
    }

    /// All predicates, for exhaustive tests.
    pub fn all() -> [CmpOp; 10] {
        [
            CmpOp::Eq,
            CmpOp::Ne,
            CmpOp::SLt,
            CmpOp::SLe,
            CmpOp::SGt,
            CmpOp::SGe,
            CmpOp::ULt,
            CmpOp::ULe,
            CmpOp::UGt,
            CmpOp::UGe,
        ]
    }
}

impl fmt::Display for CmpOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Binary operator kinds used by [`InstData::Binary`].
///
/// The `*Trap` variants are the paper's overflow-checked arithmetic
/// (Listing 2, `ssubtrap`): on signed overflow they transfer control to the
/// runtime's overflow trap — control flow that is *implicit* in the IR.
/// The `*Ovf` variants instead produce the overflow flag as a `bool`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Opcode {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Wrapping multiplication.
    Mul,
    /// Signed division; traps on division by zero or `MIN / -1`.
    SDiv,
    /// Unsigned division; traps on division by zero.
    UDiv,
    /// Signed remainder; traps on division by zero.
    SRem,
    /// Unsigned remainder; traps on division by zero.
    URem,
    /// Bitwise and.
    And,
    /// Bitwise or.
    Or,
    /// Bitwise xor.
    Xor,
    /// Logical shift left (amount masked to the type width).
    Shl,
    /// Logical shift right (amount masked to the type width).
    LShr,
    /// Arithmetic shift right (amount masked to the type width).
    AShr,
    /// Rotate right (paper Listing 2, `rotr`).
    RotR,
    /// Signed addition, trapping on overflow.
    SAddTrap,
    /// Signed subtraction, trapping on overflow.
    SSubTrap,
    /// Signed multiplication, trapping on overflow.
    SMulTrap,
    /// Signed addition overflow flag (result type `bool`).
    SAddOvf,
    /// Signed subtraction overflow flag (result type `bool`).
    SSubOvf,
    /// Signed multiplication overflow flag (result type `bool`).
    SMulOvf,
    /// Float addition.
    FAdd,
    /// Float subtraction.
    FSub,
    /// Float multiplication.
    FMul,
    /// Float division.
    FDiv,
}

impl Opcode {
    /// Whether the operator is one of the float ops (`ty` must be `f64`).
    pub fn is_float(self) -> bool {
        matches!(
            self,
            Opcode::FAdd | Opcode::FSub | Opcode::FMul | Opcode::FDiv
        )
    }

    /// Whether the operator may trap (overflow traps, division traps).
    pub fn can_trap(self) -> bool {
        matches!(
            self,
            Opcode::SDiv
                | Opcode::UDiv
                | Opcode::SRem
                | Opcode::URem
                | Opcode::SAddTrap
                | Opcode::SSubTrap
                | Opcode::SMulTrap
        )
    }

    /// Whether the result type is `bool` rather than the operand type.
    pub fn produces_flag(self) -> bool {
        matches!(self, Opcode::SAddOvf | Opcode::SSubOvf | Opcode::SMulOvf)
    }

    /// Whether the operation is commutative.
    pub fn is_commutative(self) -> bool {
        matches!(
            self,
            Opcode::Add
                | Opcode::Mul
                | Opcode::And
                | Opcode::Or
                | Opcode::Xor
                | Opcode::SAddTrap
                | Opcode::SMulTrap
                | Opcode::SAddOvf
                | Opcode::SMulOvf
                | Opcode::FAdd
                | Opcode::FMul
        )
    }

    /// Textual mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            Opcode::Add => "add",
            Opcode::Sub => "sub",
            Opcode::Mul => "mul",
            Opcode::SDiv => "sdiv",
            Opcode::UDiv => "udiv",
            Opcode::SRem => "srem",
            Opcode::URem => "urem",
            Opcode::And => "and",
            Opcode::Or => "or",
            Opcode::Xor => "xor",
            Opcode::Shl => "shl",
            Opcode::LShr => "lshr",
            Opcode::AShr => "ashr",
            Opcode::RotR => "rotr",
            Opcode::SAddTrap => "saddtrap",
            Opcode::SSubTrap => "ssubtrap",
            Opcode::SMulTrap => "smultrap",
            Opcode::SAddOvf => "saddovf",
            Opcode::SSubOvf => "ssubovf",
            Opcode::SMulOvf => "smulovf",
            Opcode::FAdd => "fadd",
            Opcode::FSub => "fsub",
            Opcode::FMul => "fmul",
            Opcode::FDiv => "fdiv",
        }
    }

    /// Parses a mnemonic produced by [`Opcode::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<Opcode> {
        Opcode::all().into_iter().find(|op| op.mnemonic() == s)
    }

    /// All binary operators, for exhaustive tests.
    pub fn all() -> [Opcode; 24] {
        [
            Opcode::Add,
            Opcode::Sub,
            Opcode::Mul,
            Opcode::SDiv,
            Opcode::UDiv,
            Opcode::SRem,
            Opcode::URem,
            Opcode::And,
            Opcode::Or,
            Opcode::Xor,
            Opcode::Shl,
            Opcode::LShr,
            Opcode::AShr,
            Opcode::RotR,
            Opcode::SAddTrap,
            Opcode::SSubTrap,
            Opcode::SMulTrap,
            Opcode::SAddOvf,
            Opcode::SSubOvf,
            Opcode::SMulOvf,
            Opcode::FAdd,
            Opcode::FSub,
            Opcode::FMul,
            Opcode::FDiv,
        ]
    }
}

impl fmt::Display for Opcode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// Cast kinds used by [`InstData::Cast`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum CastOp {
    /// Zero extension to a wider integer type.
    Zext,
    /// Sign extension to a wider integer type.
    Sext,
    /// Truncation to a narrower integer type.
    Trunc,
    /// Signed integer to float.
    SiToF,
    /// Float to signed integer (traps if unrepresentable).
    FToSi,
}

impl CastOp {
    /// Textual mnemonic used by the printer.
    pub fn mnemonic(self) -> &'static str {
        match self {
            CastOp::Zext => "zext",
            CastOp::Sext => "sext",
            CastOp::Trunc => "trunc",
            CastOp::SiToF => "sitof",
            CastOp::FToSi => "ftosi",
        }
    }

    /// Parses a mnemonic produced by [`CastOp::mnemonic`].
    pub fn from_mnemonic(s: &str) -> Option<CastOp> {
        Some(match s {
            "zext" => CastOp::Zext,
            "sext" => CastOp::Sext,
            "trunc" => CastOp::Trunc,
            "sitof" => CastOp::SiToF,
            "ftosi" => CastOp::FToSi,
            _ => return None,
        })
    }
}

impl fmt::Display for CastOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.mnemonic())
    }
}

/// One IR instruction.
///
/// Instruction storage is append-only within a [`crate::Function`];
/// operands are [`Value`] references, constants are materialized by
/// [`InstData::IConst`]/[`InstData::FConst`].
#[derive(Debug, Clone, PartialEq)]
pub enum InstData {
    /// Integer/bool/pointer constant. `imm` is sign-agnostic raw bits,
    /// stored sign-extended to 128 bits.
    IConst {
        /// Result type.
        ty: Type,
        /// Constant bits (two's complement, sign-extended).
        imm: i128,
    },
    /// Float constant.
    FConst {
        /// Constant value.
        imm: f64,
    },
    /// Binary operation; `ty` is the operand type.
    Binary {
        /// Operator.
        op: Opcode,
        /// Operand type.
        ty: Type,
        /// Left and right operands.
        args: [Value; 2],
    },
    /// Integer comparison producing a `bool`; `ty` is the operand type.
    Cmp {
        /// Predicate.
        op: CmpOp,
        /// Operand type.
        ty: Type,
        /// Left and right operands.
        args: [Value; 2],
    },
    /// Float comparison producing a `bool` (ordered semantics).
    FCmp {
        /// Predicate (signed predicates act as ordered float predicates).
        op: CmpOp,
        /// Left and right operands.
        args: [Value; 2],
    },
    /// Integer/float conversion.
    Cast {
        /// Conversion kind.
        op: CastOp,
        /// Result type.
        to: Type,
        /// Source value.
        arg: Value,
    },
    /// CRC-32 step: `crc32(acc, data)` over a 64-bit lane (paper Listing 2).
    Crc32 {
        /// Accumulator and data operands, both `i64`.
        args: [Value; 2],
    },
    /// Hash combiner: 64×64→128-bit multiply, then XOR of low and high
    /// halves ("long-mul-fold", paper Sec. III-A).
    LongMulFold {
        /// Multiplicands, both `i64`.
        args: [Value; 2],
    },
    /// Conditional select: `cond ? if_true : if_false`.
    Select {
        /// Result/operand type.
        ty: Type,
        /// `bool` condition.
        cond: Value,
        /// Value when true.
        if_true: Value,
        /// Value when false.
        if_false: Value,
    },
    /// Memory load of `ty` from `ptr + offset`.
    Load {
        /// Loaded type.
        ty: Type,
        /// Base pointer.
        ptr: Value,
        /// Constant byte offset.
        offset: i32,
    },
    /// Memory store of `value` (of type `ty`) to `ptr + offset`.
    Store {
        /// Stored type.
        ty: Type,
        /// Base pointer.
        ptr: Value,
        /// Stored value.
        value: Value,
        /// Constant byte offset.
        offset: i32,
    },
    /// Address arithmetic: `base + offset + index * scale`
    /// (paper Listing 2, `getelementptr`).
    Gep {
        /// Base pointer.
        base: Value,
        /// Constant byte offset.
        offset: i64,
        /// Optional dynamic index (`i64`).
        index: Option<Value>,
        /// Scale applied to `index` (1, 2, 4, 8, or 16).
        scale: u8,
    },
    /// Address of a declared stack slot.
    StackAddr {
        /// The slot.
        slot: StackSlot,
    },
    /// Call to an external runtime function.
    Call {
        /// Callee declaration within the function.
        callee: ExtFuncId,
        /// Argument values.
        args: Vec<Value>,
    },
    /// Address of another generated function (used e.g. to pass sort
    /// comparators to the runtime).
    FuncAddr {
        /// Module-level function reference.
        func: FuncId,
    },
    /// SSA Φ-node; must appear at the start of a block.
    Phi {
        /// Result type.
        ty: Type,
        /// `(predecessor, value)` pairs, one per predecessor.
        pairs: Vec<(Block, Value)>,
    },
    /// Unconditional jump.
    Jump {
        /// Destination block.
        dest: Block,
    },
    /// Conditional branch on a `bool`.
    Branch {
        /// Condition.
        cond: Value,
        /// Destination when true.
        then_dest: Block,
        /// Destination when false.
        else_dest: Block,
    },
    /// Function return.
    Return {
        /// Returned value, absent for `void` functions.
        value: Option<Value>,
    },
    /// Marks unreachable control flow (e.g. after a runtime call that
    /// always throws).
    Unreachable,
}

impl InstData {
    /// Whether this instruction ends a basic block.
    pub fn is_terminator(&self) -> bool {
        matches!(
            self,
            InstData::Jump { .. }
                | InstData::Branch { .. }
                | InstData::Return { .. }
                | InstData::Unreachable
        )
    }

    /// Whether the instruction has side effects (memory, calls, traps) and
    /// must not be removed or duplicated.
    pub fn has_side_effects(&self) -> bool {
        match self {
            InstData::Store { .. } | InstData::Call { .. } => true,
            InstData::Binary { op, .. } => op.can_trap(),
            InstData::Cast {
                op: CastOp::FToSi, ..
            } => true,
            _ => self.is_terminator(),
        }
    }

    /// Invokes `f` for every value operand, in order.
    pub fn for_each_arg(&self, mut f: impl FnMut(Value)) {
        match self {
            InstData::IConst { .. }
            | InstData::FConst { .. }
            | InstData::StackAddr { .. }
            | InstData::FuncAddr { .. }
            | InstData::Jump { .. }
            | InstData::Unreachable => {}
            InstData::Binary { args, .. }
            | InstData::Cmp { args, .. }
            | InstData::FCmp { args, .. }
            | InstData::Crc32 { args }
            | InstData::LongMulFold { args } => {
                f(args[0]);
                f(args[1]);
            }
            InstData::Cast { arg, .. } => f(*arg),
            InstData::Select {
                cond,
                if_true,
                if_false,
                ..
            } => {
                f(*cond);
                f(*if_true);
                f(*if_false);
            }
            InstData::Load { ptr, .. } => f(*ptr),
            InstData::Store { ptr, value, .. } => {
                f(*ptr);
                f(*value);
            }
            InstData::Gep { base, index, .. } => {
                f(*base);
                if let Some(i) = index {
                    f(*i);
                }
            }
            InstData::Call { args, .. } => args.iter().copied().for_each(f),
            InstData::Phi { pairs, .. } => pairs.iter().for_each(|&(_, v)| f(v)),
            InstData::Branch { cond, .. } => f(*cond),
            InstData::Return { value } => {
                if let Some(v) = value {
                    f(*v);
                }
            }
        }
    }

    /// Collects all value operands into a vector.
    pub fn args(&self) -> Vec<Value> {
        let mut out = Vec::new();
        self.for_each_arg(|v| out.push(v));
        out
    }

    /// Successor blocks of a terminator (empty for non-terminators,
    /// returns, and `unreachable`).
    pub fn successors(&self) -> Vec<Block> {
        match self {
            InstData::Jump { dest } => vec![*dest],
            InstData::Branch {
                then_dest,
                else_dest,
                ..
            } => vec![*then_dest, *else_dest],
            _ => Vec::new(),
        }
    }

    /// A short mnemonic identifying the instruction kind.
    pub fn name(&self) -> &'static str {
        match self {
            InstData::IConst { .. } => "iconst",
            InstData::FConst { .. } => "fconst",
            InstData::Binary { op, .. } => op.mnemonic(),
            InstData::Cmp { .. } => "cmp",
            InstData::FCmp { .. } => "fcmp",
            InstData::Cast { op, .. } => op.mnemonic(),
            InstData::Crc32 { .. } => "crc32",
            InstData::LongMulFold { .. } => "lmulfold",
            InstData::Select { .. } => "select",
            InstData::Load { .. } => "load",
            InstData::Store { .. } => "store",
            InstData::Gep { .. } => "gep",
            InstData::StackAddr { .. } => "stackaddr",
            InstData::Call { .. } => "call",
            InstData::FuncAddr { .. } => "funcaddr",
            InstData::Phi { .. } => "phi",
            InstData::Jump { .. } => "jump",
            InstData::Branch { .. } => "br",
            InstData::Return { .. } => "ret",
            InstData::Unreachable => "unreachable",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cmp_swap_and_negate_are_involutions() {
        for op in CmpOp::all() {
            assert_eq!(op.swapped().swapped(), op);
            assert_eq!(op.negated().negated(), op);
        }
    }

    #[test]
    fn cmp_mnemonics_roundtrip() {
        for op in CmpOp::all() {
            assert_eq!(CmpOp::from_mnemonic(op.mnemonic()), Some(op));
        }
    }

    #[test]
    fn opcode_mnemonics_roundtrip() {
        for op in Opcode::all() {
            assert_eq!(Opcode::from_mnemonic(op.mnemonic()), Some(op));
        }
        assert_eq!(Opcode::from_mnemonic("bogus"), None);
    }

    #[test]
    fn opcode_classification() {
        assert!(Opcode::SAddTrap.can_trap());
        assert!(Opcode::SDiv.can_trap());
        assert!(!Opcode::Add.can_trap());
        assert!(Opcode::SMulOvf.produces_flag());
        assert!(!Opcode::SMulTrap.produces_flag());
        assert!(Opcode::FAdd.is_float());
        assert!(Opcode::Add.is_commutative());
        assert!(!Opcode::Sub.is_commutative());
    }

    #[test]
    fn terminator_and_side_effect_classification() {
        let jump = InstData::Jump {
            dest: Block::new(0),
        };
        assert!(jump.is_terminator());
        let store = InstData::Store {
            ty: Type::I64,
            ptr: Value::new(0),
            value: Value::new(1),
            offset: 0,
        };
        assert!(store.has_side_effects());
        assert!(!store.is_terminator());
        let add = InstData::Binary {
            op: Opcode::Add,
            ty: Type::I64,
            args: [Value::new(0), Value::new(1)],
        };
        assert!(!add.has_side_effects());
        let trap = InstData::Binary {
            op: Opcode::SSubTrap,
            ty: Type::I32,
            args: [Value::new(0), Value::new(1)],
        };
        assert!(trap.has_side_effects());
    }

    #[test]
    fn operand_visiting() {
        let sel = InstData::Select {
            ty: Type::I64,
            cond: Value::new(0),
            if_true: Value::new(1),
            if_false: Value::new(2),
        };
        assert_eq!(
            sel.args(),
            vec![Value::new(0), Value::new(1), Value::new(2)]
        );
        let gep = InstData::Gep {
            base: Value::new(4),
            offset: 8,
            index: None,
            scale: 1,
        };
        assert_eq!(gep.args(), vec![Value::new(4)]);
    }

    #[test]
    fn successors_of_terminators() {
        let br = InstData::Branch {
            cond: Value::new(0),
            then_dest: Block::new(1),
            else_dest: Block::new(2),
        };
        assert_eq!(br.successors(), vec![Block::new(1), Block::new(2)]);
        assert!(InstData::Return { value: None }.successors().is_empty());
        assert!(InstData::Unreachable.successors().is_empty());
    }
}
