//! Control-flow graph utilities: predecessors, successors, postorder.

use crate::entities::Block;
use crate::function::Function;

/// Predecessor/successor maps of a function's control-flow graph.
#[derive(Debug, Clone)]
pub struct Cfg {
    preds: Vec<Vec<Block>>,
    succs: Vec<Vec<Block>>,
}

impl Cfg {
    /// Computes the CFG of `func` in one pass over the terminators.
    pub fn compute(func: &Function) -> Self {
        let n = func.num_blocks();
        let mut preds = vec![Vec::new(); n];
        let mut succs = vec![Vec::new(); n];
        for block in func.blocks() {
            if func.block_insts(block).is_empty() {
                continue;
            }
            let term = func.terminator(block);
            for succ in func.inst(term).successors() {
                succs[block.index()].push(succ);
                preds[succ.index()].push(block);
            }
        }
        Cfg { preds, succs }
    }

    /// Predecessors of `block`, in terminator order.
    pub fn preds(&self, block: Block) -> &[Block] {
        &self.preds[block.index()]
    }

    /// Successors of `block`, in terminator order.
    pub fn succs(&self, block: Block) -> &[Block] {
        &self.succs[block.index()]
    }

    /// Number of blocks.
    pub fn len(&self) -> usize {
        self.preds.len()
    }

    /// Whether the CFG has no blocks.
    pub fn is_empty(&self) -> bool {
        self.preds.is_empty()
    }
}

/// Reverse post-order of the blocks reachable from the entry.
///
/// This is the iteration order of the DirectEmit code generation pass
/// (paper Sec. VII) and of most passes in the other back-ends.
#[derive(Debug, Clone)]
pub struct ReversePostorder {
    order: Vec<Block>,
    /// position[b] = index of b in `order`, or `usize::MAX` if unreachable.
    position: Vec<usize>,
}

impl ReversePostorder {
    /// Computes the RPO of `func` using an iterative DFS.
    pub fn compute(func: &Function, cfg: &Cfg) -> Self {
        let n = func.num_blocks();
        let mut state = vec![0u8; n]; // 0 = unvisited, 1 = on stack, 2 = done
        let mut postorder = Vec::with_capacity(n);
        // Stack of (block, next successor index to visit).
        let mut stack = vec![(func.entry_block(), 0usize)];
        state[func.entry_block().index()] = 1;
        while let Some(&mut (block, ref mut next)) = stack.last_mut() {
            let succs = cfg.succs(block);
            if *next < succs.len() {
                let s = succs[*next];
                *next += 1;
                if state[s.index()] == 0 {
                    state[s.index()] = 1;
                    stack.push((s, 0));
                }
            } else {
                state[block.index()] = 2;
                postorder.push(block);
                stack.pop();
            }
        }
        postorder.reverse();
        let mut position = vec![usize::MAX; n];
        for (i, &b) in postorder.iter().enumerate() {
            position[b.index()] = i;
        }
        ReversePostorder {
            order: postorder,
            position,
        }
    }

    /// Blocks in reverse post-order (entry first).
    pub fn order(&self) -> &[Block] {
        &self.order
    }

    /// Position of `block` in the RPO, or `None` if unreachable.
    pub fn position(&self, block: Block) -> Option<usize> {
        let p = self.position[block.index()];
        (p != usize::MAX).then_some(p)
    }

    /// Whether `block` is reachable from the entry.
    pub fn is_reachable(&self, block: Block) -> bool {
        self.position(block).is_some()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::builder::FunctionBuilder;
    use crate::function::Signature;
    use crate::instr::CmpOp;
    use crate::types::Type;

    /// entry -> (then | else) -> merge, plus one unreachable block.
    fn diamond() -> Function {
        let mut b = FunctionBuilder::new("d", Signature::new(vec![Type::I64], Type::I64));
        let entry = b.entry_block();
        let t = b.create_block();
        let e = b.create_block();
        let merge = b.create_block();
        let dead = b.create_block();
        b.switch_to(entry);
        let x = b.param(0);
        let zero = b.iconst(Type::I64, 0);
        let c = b.icmp(CmpOp::SGt, Type::I64, x, zero);
        b.branch(c, t, e);
        b.switch_to(t);
        let one = b.iconst(Type::I64, 1);
        b.jump(merge);
        b.switch_to(e);
        let two = b.iconst(Type::I64, 2);
        b.jump(merge);
        b.switch_to(merge);
        let p = b.phi(Type::I64, vec![(t, one), (e, two)]);
        b.ret(Some(p));
        b.switch_to(dead);
        b.ret(Some(x));
        b.finish()
    }

    #[test]
    fn preds_and_succs() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        let (entry, t, e, merge) = (Block::new(0), Block::new(1), Block::new(2), Block::new(3));
        assert_eq!(cfg.succs(entry), &[t, e]);
        assert_eq!(cfg.preds(merge), &[t, e]);
        assert_eq!(cfg.preds(entry), &[] as &[Block]);
        assert_eq!(cfg.len(), 5);
    }

    #[test]
    fn rpo_visits_entry_first_and_skips_unreachable() {
        let f = diamond();
        let cfg = Cfg::compute(&f);
        let rpo = ReversePostorder::compute(&f, &cfg);
        assert_eq!(rpo.order()[0], Block::new(0));
        assert_eq!(rpo.order().len(), 4);
        assert!(!rpo.is_reachable(Block::new(4)));
        // merge must come after both then and else.
        let pos = |b| rpo.position(Block::new(b)).unwrap();
        assert!(pos(3) > pos(1));
        assert!(pos(3) > pos(2));
    }
}
