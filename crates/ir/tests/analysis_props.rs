//! Property tests on the CFG analyses: dominators checked against a
//! naive set-intersection dataflow, liveness checked against an
//! independent from-scratch fixpoint, RPO edge ordering, and loop-body
//! dominance — on randomly generated structured (reducible) functions.

use std::collections::{BTreeSet, HashMap};

use proptest::prelude::*;
use qc_ir::{
    Block, Cfg, CmpOp, DomTree, Function, FunctionBuilder, InstData, Liveness, Loops, Opcode,
    ReversePostorder, Signature, Type, Value,
};

/// A structured program shape; generates only reducible control flow.
#[derive(Debug, Clone)]
enum Shape {
    /// `k` arithmetic instructions.
    Ops(u8),
    /// `if (pool cmp pool) { then } else { other }`.
    If(Box<Shape>, Box<Shape>),
    /// A counted loop around the body.
    While(Box<Shape>),
    /// Sequential composition.
    Seq(Box<Shape>, Box<Shape>),
}

fn shape_strategy() -> impl Strategy<Value = Shape> {
    let leaf = (1u8..4).prop_map(Shape::Ops);
    leaf.prop_recursive(3, 24, 4, |inner| {
        prop_oneof![
            (inner.clone(), inner.clone()).prop_map(|(a, b)| Shape::If(Box::new(a), Box::new(b))),
            inner.clone().prop_map(|s| Shape::While(Box::new(s))),
            (inner.clone(), inner).prop_map(|(a, b)| Shape::Seq(Box::new(a), Box::new(b))),
        ]
    })
}

struct Gen {
    b: FunctionBuilder,
    /// Values usable at the current point (entry-dominated only, so any
    /// use site is dominated by the def).
    pool: Vec<Value>,
    counter: u64,
}

impl Gen {
    fn pick(&self, k: u64) -> Value {
        self.pool[(k as usize) % self.pool.len()]
    }

    fn emit(&mut self, shape: &Shape) {
        self.counter += 1;
        let c = self.counter;
        match shape {
            Shape::Ops(k) => {
                for j in 0..*k {
                    let a = self.pick(c + u64::from(j));
                    let b2 = self.pick(c * 7 + u64::from(j));
                    let op = match (c + u64::from(j)) % 4 {
                        0 => Opcode::Add,
                        1 => Opcode::Xor,
                        2 => Opcode::Sub,
                        _ => Opcode::Or,
                    };
                    let v = self.b.binary(op, Type::I64, a, b2);
                    // Values defined in straight-line code at this nesting
                    // level stay usable only within the shape (dropped by
                    // callers crossing join points), so keep the pool as-is
                    // and only thread `v` through a local overwrite.
                    let slot = (c as usize) % self.pool.len();
                    if self.b.current_block() == Some(self.b.entry_block()) {
                        // Entry-block defs dominate everything.
                        self.pool[slot] = v;
                    }
                }
            }
            Shape::Seq(a, b) => {
                self.emit(a);
                self.emit(b);
            }
            Shape::If(t, f) => {
                let a = self.pick(c);
                let b2 = self.pick(c * 3);
                let cond = self.b.icmp(CmpOp::SLt, Type::I64, a, b2);
                let then_bb = self.b.create_block();
                let else_bb = self.b.create_block();
                let join = self.b.create_block();
                self.b.branch(cond, then_bb, else_bb);
                self.b.switch_to(then_bb);
                self.emit(t);
                self.b.jump(join);
                self.b.switch_to(else_bb);
                self.emit(f);
                self.b.jump(join);
                self.b.switch_to(join);
            }
            Shape::While(body) => {
                let pre = self.b.current_block().expect("positioned");
                let zero = self.b.iconst(Type::I64, 0);
                let n = self.b.iconst(Type::I64, i128::from(c % 5));
                let header = self.b.create_block();
                let body_bb = self.b.create_block();
                let exit = self.b.create_block();
                self.b.jump(header);
                self.b.switch_to(header);
                let i = self.b.phi(Type::I64, vec![(pre, zero)]);
                let more = self.b.icmp(CmpOp::SLt, Type::I64, i, n);
                self.b.branch(more, body_bb, exit);
                self.b.switch_to(body_bb);
                self.emit(body);
                let one = self.b.iconst(Type::I64, 1);
                let i2 = self.b.add(Type::I64, i, one);
                let latch = self.b.current_block().expect("positioned");
                self.b.phi_add_incoming(i, latch, i2);
                self.b.jump(header);
                self.b.switch_to(exit);
            }
        }
    }
}

fn build(shape: &Shape) -> Function {
    let sig = Signature::new(vec![Type::I64, Type::I64], Type::I64);
    let b = FunctionBuilder::new("f", sig);
    let entry = b.entry_block();
    let p0 = b.param(0);
    let p1 = b.param(1);
    let mut g = Gen {
        b,
        pool: vec![p0, p1],
        counter: 0,
    };
    g.b.switch_to(entry);
    g.emit(shape);
    let r = g.pick(13);
    g.b.ret(Some(r));
    g.b.finish()
}

/// Naive dominance: iterative dataflow over full block sets.
fn naive_dominators(func: &Function, cfg: &Cfg, rpo: &ReversePostorder) -> Vec<BTreeSet<usize>> {
    let nb = func.num_blocks();
    let all: BTreeSet<usize> = (0..nb)
        .filter(|&i| rpo.is_reachable(Block::new(i)))
        .collect();
    let mut dom: Vec<BTreeSet<usize>> = (0..nb).map(|_| all.clone()).collect();
    dom[0] = BTreeSet::from([0]);
    let mut changed = true;
    while changed {
        changed = false;
        for &b in rpo.order() {
            if b.index() == 0 {
                continue;
            }
            let mut new: Option<BTreeSet<usize>> = None;
            for &p in cfg.preds(b) {
                if !rpo.is_reachable(p) {
                    continue;
                }
                new = Some(match new {
                    None => dom[p.index()].clone(),
                    Some(acc) => acc.intersection(&dom[p.index()]).copied().collect(),
                });
            }
            let mut new = new.unwrap_or_default();
            new.insert(b.index());
            if new != dom[b.index()] {
                dom[b.index()] = new;
                changed = true;
            }
        }
    }
    dom
}

/// Independent from-scratch liveness with the same Φ convention (Φ inputs
/// are live-out of the predecessor, Φ results are block defs).
fn naive_liveness(func: &Function, cfg: &Cfg) -> (Vec<BTreeSet<u32>>, Vec<BTreeSet<u32>>) {
    let nb = func.num_blocks();
    let mut uses: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); nb];
    let mut defs: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); nb];
    let mut phi_out: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); nb];
    for block in func.blocks() {
        let bi = block.index();
        for &inst in func.block_insts(block) {
            let data = func.inst(inst);
            if let InstData::Phi { pairs, .. } = data {
                for &(pred, val) in pairs {
                    phi_out[pred.index()].insert(val.index() as u32);
                }
            } else {
                data.for_each_arg(|v| {
                    if !defs[bi].contains(&(v.index() as u32)) {
                        uses[bi].insert(v.index() as u32);
                    }
                });
            }
            if let Some(res) = func.inst_result(inst) {
                defs[bi].insert(res.index() as u32);
            }
        }
    }
    let mut live_in: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); nb];
    let mut live_out: Vec<BTreeSet<u32>> = vec![BTreeSet::new(); nb];
    loop {
        let mut changed = false;
        for bi in 0..nb {
            let mut out = phi_out[bi].clone();
            for &s in cfg.succs(Block::new(bi)) {
                out.extend(live_in[s.index()].iter().copied());
            }
            let mut inn: BTreeSet<u32> = out.difference(&defs[bi]).copied().collect();
            inn.extend(uses[bi].iter().copied());
            if out != live_out[bi] || inn != live_in[bi] {
                live_out[bi] = out;
                live_in[bi] = inn;
                changed = true;
            }
        }
        if !changed {
            break;
        }
    }
    (live_in, live_out)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    #[test]
    fn domtree_matches_naive_dataflow(shape in shape_strategy()) {
        let f = build(&shape);
        qc_ir::verify_function(&f).expect("valid");
        let cfg = Cfg::compute(&f);
        let rpo = ReversePostorder::compute(&f, &cfg);
        let dt = DomTree::compute(&f, &cfg, &rpo);
        let naive = naive_dominators(&f, &cfg, &rpo);
        for a in f.blocks() {
            for b in f.blocks() {
                if !rpo.is_reachable(a) || !rpo.is_reachable(b) {
                    continue;
                }
                let fast = dt.dominates(a, b);
                let slow = naive[b.index()].contains(&a.index());
                prop_assert_eq!(
                    fast, slow,
                    "dominates({:?}, {:?}): fast {} naive {}", a, b, fast, slow
                );
            }
        }
        // idom must be a strict dominator dominated by all others.
        for b in f.blocks() {
            if b.index() == 0 || !rpo.is_reachable(b) { continue; }
            let id = dt.idom(b).expect("reachable non-entry has idom");
            prop_assert!(naive[b.index()].contains(&id.index()));
            for &d in &naive[b.index()] {
                if d != b.index() {
                    prop_assert!(
                        naive[id.index()].contains(&d),
                        "strict dominator {:?} of {:?} does not dominate idom {:?}", d, b, id
                    );
                }
            }
        }
    }

    #[test]
    fn liveness_matches_naive_fixpoint(shape in shape_strategy()) {
        let f = build(&shape);
        let cfg = Cfg::compute(&f);
        let live = Liveness::compute(&f, &cfg);
        let (nin, nout) = naive_liveness(&f, &cfg);
        for b in f.blocks() {
            let bi = b.index();
            let got_in: BTreeSet<u32> =
                live.live_in(b).iter().map(|v| v.index() as u32).collect();
            let got_out: BTreeSet<u32> =
                live.live_out(b).iter().map(|v| v.index() as u32).collect();
            prop_assert_eq!(&got_in, &nin[bi], "live_in mismatch at {:?}", b);
            prop_assert_eq!(&got_out, &nout[bi], "live_out mismatch at {:?}", b);
        }
        // Nothing but parameters may be live into the entry block.
        let params: BTreeSet<u32> =
            f.params().iter().map(|v| v.index() as u32).collect();
        for v in &nin[0] {
            prop_assert!(params.contains(v), "non-param v{} live into entry", v);
        }
    }

    #[test]
    fn rpo_orders_forward_edges(shape in shape_strategy()) {
        let f = build(&shape);
        let cfg = Cfg::compute(&f);
        let rpo = ReversePostorder::compute(&f, &cfg);
        // Each reachable block appears exactly once.
        let mut seen = HashMap::new();
        for (i, &b) in rpo.order().iter().enumerate() {
            prop_assert!(seen.insert(b, i).is_none(), "{:?} appears twice", b);
            prop_assert_eq!(rpo.position(b), Some(i));
        }
        let dt = DomTree::compute(&f, &cfg, &rpo);
        let loops = Loops::compute(&f, &cfg, &rpo, &dt);
        prop_assert!(!loops.is_irreducible(), "structured CFG must be reducible");
        for &b in rpo.order() {
            for &s in cfg.succs(b) {
                let (pb, ps) = (rpo.position(b).expect("pos"), rpo.position(s).expect("pos"));
                if ps <= pb {
                    // Retreating edge: must be a back edge to a dominating
                    // loop header in a reducible CFG.
                    prop_assert!(
                        dt.dominates(s, b),
                        "retreating edge {:?}->{:?} to a non-dominator", b, s
                    );
                    prop_assert!(loops.is_header(s));
                }
            }
        }
    }

    #[test]
    fn loop_headers_dominate_their_bodies(shape in shape_strategy()) {
        let f = build(&shape);
        let cfg = Cfg::compute(&f);
        let rpo = ReversePostorder::compute(&f, &cfg);
        let dt = DomTree::compute(&f, &cfg, &rpo);
        let loops = Loops::compute(&f, &cfg, &rpo, &dt);
        for l in loops.loops() {
            for &b in &l.blocks {
                prop_assert!(
                    dt.dominates(l.header, b),
                    "loop header {:?} does not dominate body block {:?}", l.header, b
                );
                prop_assert!(loops.depth(b) >= loops.depth(l.header));
            }
        }
    }
}
