//! Single-pass translation from IR to bytecode.

use crate::bytecode::{BcFunc, BcOp, Program, Slot};
use qc_backend::BackendError;
use qc_ir::{Block, Function, InstData, Module, Type, Value};
use qc_runtime::rt_index;

/// Compiles a module to bytecode.
///
/// # Errors
/// Returns [`BackendError`] for unknown runtime functions.
pub fn compile_module(module: &Module) -> Result<Program, BackendError> {
    let mut program = Program::default();
    for func in module.functions() {
        program.push(compile_func(func)?);
    }
    Ok(program)
}

struct FuncCompiler<'f> {
    func: &'f Function,
    slots: Vec<Slot>,
    code: Vec<BcOp>,
    block_pc: Vec<Option<u32>>,
    /// (op index, block) pairs whose targets need patching.
    fixups: Vec<(usize, Block, bool)>,
}

fn regs_of(ty: Type) -> u8 {
    ty.reg_count() as u8
}

fn compile_func(func: &Function) -> Result<BcFunc, BackendError> {
    // Slot assignment: one pass over values in definition order.
    let mut slots = Vec::with_capacity(func.num_values());
    let mut next: Slot = 0;
    for i in 0..func.num_values() {
        slots.push(next);
        next += func.value_type(Value::new(i)).reg_count();
    }
    // Frame layout for stack slots.
    let mut frame_offsets = Vec::new();
    let mut frame_size = 0u32;
    for s in func.stack_slots() {
        frame_size = (frame_size + s.align - 1) & !(s.align - 1);
        frame_offsets.push(frame_size);
        frame_size += s.size;
    }

    let mut c = FuncCompiler {
        func,
        slots,
        code: Vec::new(),
        block_pc: vec![None; func.num_blocks()],
        fixups: Vec::new(),
    };
    for block in func.blocks() {
        c.block_pc[block.index()] = Some(c.code.len() as u32);
        for &inst in func.block_insts(block) {
            c.compile_inst(block, inst, &frame_offsets)?;
        }
    }
    // Patch branch targets.
    for (at, block, is_else) in std::mem::take(&mut c.fixups) {
        let pc = c.block_pc[block.index()].expect("block compiled");
        match &mut c.code[at] {
            BcOp::Jump { target } => *target = pc,
            BcOp::BrIf {
                then_pc, else_pc, ..
            } => {
                if is_else {
                    *else_pc = pc;
                } else {
                    *then_pc = pc;
                }
            }
            _ => unreachable!("fixup on non-branch"),
        }
    }
    let param_slots: usize = func.sig.params.iter().map(|t| t.reg_count() as usize).sum();
    Ok(BcFunc {
        name: func.name.clone(),
        code: c.code,
        num_slots: next as usize,
        frame_size: frame_size as usize,
        param_slots,
    })
}

impl FuncCompiler<'_> {
    fn slot(&self, v: Value) -> Slot {
        self.slots[v.index()]
    }

    fn res_slot(&self, inst: qc_ir::Inst) -> Slot {
        self.slot(self.func.inst_result(inst).expect("has result"))
    }

    /// Collects the Φ-copies for the edge `pred -> succ`.
    fn edge_copies(&self, pred: Block, succ: Block) -> Vec<(Slot, Slot, u8)> {
        let mut pairs = Vec::new();
        for &inst in self.func.block_insts(succ) {
            if let InstData::Phi {
                pairs: phi_pairs,
                ty,
            } = self.func.inst(inst)
            {
                if let Some(&(_, src)) = phi_pairs.iter().find(|&&(b, _)| b == pred) {
                    pairs.push((self.slot(src), self.res_slot(inst), regs_of(*ty)));
                }
            } else {
                break; // phis lead the block
            }
        }
        pairs
    }

    /// Emits edge copies + jump to `succ`; returns the op index of the
    /// first emitted op.
    fn emit_edge(&mut self, pred: Block, succ: Block) -> u32 {
        let at = self.code.len() as u32;
        let copies = self.edge_copies(pred, succ);
        if !copies.is_empty() {
            self.code.push(BcOp::Copies { pairs: copies });
        }
        let jmp_at = self.code.len();
        self.code.push(BcOp::Jump { target: 0 });
        self.fixups.push((jmp_at, succ, false));
        at
    }

    fn compile_inst(
        &mut self,
        block: Block,
        inst: qc_ir::Inst,
        frame_offsets: &[u32],
    ) -> Result<(), BackendError> {
        let data = self.func.inst(inst).clone();
        match data {
            InstData::Phi { .. } => {} // materialized on edges
            InstData::IConst { ty, imm } => {
                let dst = self.res_slot(inst);
                if ty == Type::I128 {
                    self.code.push(BcOp::ConstI128 { dst, val: imm });
                } else {
                    let mask = if ty.bits() >= 64 {
                        u64::MAX
                    } else {
                        (1u64 << ty.bits()) - 1
                    };
                    self.code.push(BcOp::ConstI {
                        dst,
                        val: (imm as u64) & mask,
                    });
                }
            }
            InstData::FConst { imm } => {
                self.code.push(BcOp::ConstI {
                    dst: self.res_slot(inst),
                    val: imm.to_bits(),
                });
            }
            InstData::Binary { op, ty, args } => {
                self.code.push(BcOp::Bin {
                    op,
                    ty,
                    dst: self.res_slot(inst),
                    a: self.slot(args[0]),
                    b: self.slot(args[1]),
                });
            }
            InstData::Cmp { op, ty, args } => {
                self.code.push(BcOp::Cmp {
                    op,
                    ty,
                    dst: self.res_slot(inst),
                    a: self.slot(args[0]),
                    b: self.slot(args[1]),
                });
            }
            InstData::FCmp { op, args } => {
                self.code.push(BcOp::FCmp {
                    op,
                    dst: self.res_slot(inst),
                    a: self.slot(args[0]),
                    b: self.slot(args[1]),
                });
            }
            InstData::Cast { op, to, arg } => {
                self.code.push(BcOp::Cast {
                    op,
                    from: self.func.value_type(arg),
                    to,
                    dst: self.res_slot(inst),
                    src: self.slot(arg),
                });
            }
            InstData::Crc32 { args } => {
                self.code.push(BcOp::Crc32 {
                    dst: self.res_slot(inst),
                    acc: self.slot(args[0]),
                    data: self.slot(args[1]),
                });
            }
            InstData::LongMulFold { args } => {
                self.code.push(BcOp::LMulFold {
                    dst: self.res_slot(inst),
                    a: self.slot(args[0]),
                    b: self.slot(args[1]),
                });
            }
            InstData::Select {
                ty,
                cond,
                if_true,
                if_false,
            } => {
                self.code.push(BcOp::Select {
                    dst: self.res_slot(inst),
                    cond: self.slot(cond),
                    a: self.slot(if_true),
                    b: self.slot(if_false),
                    regs: regs_of(ty),
                });
            }
            InstData::Load { ty, ptr, offset } => {
                self.code.push(BcOp::Load {
                    ty,
                    dst: self.res_slot(inst),
                    ptr: self.slot(ptr),
                    off: offset,
                });
            }
            InstData::Store {
                ty,
                ptr,
                value,
                offset,
            } => {
                self.code.push(BcOp::Store {
                    ty,
                    ptr: self.slot(ptr),
                    src: self.slot(value),
                    off: offset,
                });
            }
            InstData::Gep {
                base,
                offset,
                index,
                scale,
            } => {
                self.code.push(BcOp::Gep {
                    dst: self.res_slot(inst),
                    base: self.slot(base),
                    off: offset,
                    index: index.map(|i| (self.slot(i), scale)),
                });
            }
            InstData::StackAddr { slot } => {
                self.code.push(BcOp::StackAddr {
                    dst: self.res_slot(inst),
                    frame_off: frame_offsets[slot.index()],
                });
            }
            InstData::Call { callee, args } => {
                let decl = self.func.ext_func(callee);
                let rt = rt_index(&decl.name).ok_or_else(|| {
                    BackendError::new(format!("unknown runtime function `{}`", decl.name))
                })?;
                let mut flat = Vec::new();
                for &a in &args {
                    let s = self.slot(a);
                    flat.push(s);
                    if self.func.value_type(a).reg_count() == 2 {
                        flat.push(s + 1);
                    }
                }
                let dst = self
                    .func
                    .inst_result(inst)
                    .map(|r| (self.slot(r), regs_of(self.func.value_type(r))));
                self.code.push(BcOp::Call {
                    rt_index: rt,
                    args: flat,
                    dst,
                });
            }
            InstData::FuncAddr { func } => {
                self.code.push(BcOp::FuncAddr {
                    dst: self.res_slot(inst),
                    func: func.index(),
                });
            }
            InstData::Jump { dest } => {
                self.emit_edge(block, dest);
            }
            InstData::Branch {
                cond,
                then_dest,
                else_dest,
            } => {
                let cond_slot = self.slot(cond);
                let then_copies = self.edge_copies(block, then_dest);
                let else_copies = self.edge_copies(block, else_dest);
                let brif_at = self.code.len();
                self.code.push(BcOp::BrIf {
                    cond: cond_slot,
                    then_pc: 0,
                    else_pc: 0,
                });
                // Then side.
                if then_copies.is_empty() {
                    self.fixups.push((brif_at, then_dest, false));
                } else {
                    let at = self.emit_edge(block, then_dest);
                    if let BcOp::BrIf { then_pc, .. } = &mut self.code[brif_at] {
                        *then_pc = at;
                    }
                }
                // Else side.
                if else_copies.is_empty() {
                    self.fixups.push((brif_at, else_dest, true));
                } else {
                    let at = self.emit_edge(block, else_dest);
                    if let BcOp::BrIf { else_pc, .. } = &mut self.code[brif_at] {
                        *else_pc = at;
                    }
                }
            }
            InstData::Return { value } => {
                let src = value.map(|v| (self.slot(v), regs_of(self.func.value_type(v))));
                self.code.push(BcOp::Ret { src });
            }
            InstData::Unreachable => self.code.push(BcOp::Unreachable),
        }
        Ok(())
    }
}
