//! Bytecode interpreter back-end.
//!
//! The paper's baseline (Table III "Interpreter"): Umbra IR is transformed
//! into register-based bytecode — a cheap, single-pass translation — and
//! executed with a dispatch loop. Compilation is an order of magnitude
//! faster than even DirectEmit, execution several times slower than
//! compiled code; the cycle model charges a fixed dispatch surcharge per
//! executed bytecode operation to preserve that relationship.

mod bytecode;
mod compile;
mod exec;

pub use bytecode::{BcFunc, BcOp, Program, BYTECODE_BASE};
pub use compile::compile_module;

use qc_backend::{Backend, BackendError, CodeArtifact, CompileStats, Executable};
use qc_ir::Module;
use qc_runtime::RuntimeState;
use qc_target::{ExecStats, Isa, Trap};
use qc_timing::TimeTrace;
use std::cell::RefCell;
use std::sync::Arc;

/// The interpreter back-end.
#[derive(Debug, Default)]
pub struct InterpBackend;

impl InterpBackend {
    /// Creates the back-end.
    pub fn new() -> Self {
        InterpBackend
    }
}

impl Backend for InterpBackend {
    fn name(&self) -> &'static str {
        "Interpreter"
    }

    fn isa(&self) -> Isa {
        // Bytecode is target-independent; report TX64 for uniformity.
        Isa::Tx64
    }

    fn compile(
        &self,
        module: &Module,
        trace: &TimeTrace,
    ) -> Result<Box<dyn Executable>, BackendError> {
        // Errors name the tier so fallback-chain downgrades are
        // attributable (idem for the other back-ends).
        let artifact = build_artifact(module, trace).map_err(|e| e.in_backend(self.name()))?;
        artifact.instantiate()
    }

    fn compile_artifact(
        &self,
        module: &Module,
        trace: &TimeTrace,
    ) -> Result<Option<Box<dyn CodeArtifact>>, BackendError> {
        let artifact = build_artifact(module, trace).map_err(|e| e.in_backend(self.name()))?;
        Ok(Some(Box::new(artifact)))
    }
}

fn build_artifact(module: &Module, trace: &TimeTrace) -> Result<InterpArtifact, BackendError> {
    let _t = trace.scope("bytecodegen");
    let program = compile_module(module)?;
    let mut stats = CompileStats {
        functions: module.len(),
        code_bytes: program.op_count() * 8,
        ..Default::default()
    };
    stats.bump("bytecode_ops", program.op_count() as u64);
    Ok(InterpArtifact {
        program: Arc::new(program),
        stats,
    })
}

/// [`CodeArtifact`] for the interpreter: bytecode is position
/// independent, so instantiation just shares the translated
/// [`Program`] and resets execution statistics.
pub struct InterpArtifact {
    program: Arc<Program>,
    stats: CompileStats,
}

impl CodeArtifact for InterpArtifact {
    fn instantiate(&self) -> Result<Box<dyn Executable>, BackendError> {
        Ok(Box::new(InterpExecutable {
            program: Arc::clone(&self.program),
            stats: self.stats.clone(),
            exec: RefCell::new(ExecStats::default()),
        }))
    }

    fn compile_stats(&self) -> &CompileStats {
        &self.stats
    }

    fn size_bytes(&self) -> usize {
        self.program.op_count() * 8
    }

    fn content_bytes(&self) -> Vec<u8> {
        self.program.content_bytes()
    }
}

/// Executable bytecode of one module.
pub struct InterpExecutable {
    program: Arc<Program>,
    stats: CompileStats,
    exec: RefCell<ExecStats>,
}

impl std::fmt::Debug for InterpExecutable {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "InterpExecutable({} ops)", self.program.op_count())
    }
}

impl Executable for InterpExecutable {
    fn call(
        &mut self,
        state: &mut RuntimeState,
        name: &str,
        args: &[u64],
    ) -> Result<[u64; 2], Trap> {
        let fidx = self.program.func_index(name).ok_or(Trap::BadJump(0))?;
        let mut stats = self.exec.borrow_mut();
        exec::run(&self.program, state, fidx, args, &mut stats)
    }

    fn exec_stats(&self) -> ExecStats {
        *self.exec.borrow()
    }

    fn compile_stats(&self) -> &CompileStats {
        &self.stats
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use qc_ir::{CmpOp, FunctionBuilder, Opcode, Signature, Type};

    fn run_one(
        build: impl FnOnce(&mut FunctionBuilder),
        sig: Signature,
        args: &[u64],
    ) -> Result<[u64; 2], Trap> {
        let mut b = FunctionBuilder::new("f", sig);
        build(&mut b);
        let f = b.finish();
        qc_ir::verify_function(&f).unwrap();
        let mut m = Module::new("m");
        m.push_function(f);
        let backend = InterpBackend::new();
        let mut exe = backend.compile(&m, &TimeTrace::disabled()).unwrap();
        let mut state = RuntimeState::new();
        exe.call(&mut state, "f", args)
    }

    #[test]
    fn arithmetic_and_branches() {
        // return a > b ? a - b : b - a
        let sig = Signature::new(vec![Type::I64, Type::I64], Type::I64);
        let r = run_one(
            |b| {
                let entry = b.entry_block();
                let t = b.create_block();
                let e = b.create_block();
                b.switch_to(entry);
                let (x, y) = (b.param(0), b.param(1));
                let c = b.icmp(CmpOp::SGt, Type::I64, x, y);
                b.branch(c, t, e);
                b.switch_to(t);
                let d = b.sub(Type::I64, x, y);
                b.ret(Some(d));
                b.switch_to(e);
                let d = b.sub(Type::I64, y, x);
                b.ret(Some(d));
            },
            sig,
            &[10, 4],
        )
        .unwrap();
        assert_eq!(r[0], 6);
    }

    #[test]
    fn loop_with_phis() {
        // sum 0..n
        let sig = Signature::new(vec![Type::I64], Type::I64);
        let r = run_one(
            |b| {
                let entry = b.entry_block();
                let header = b.create_block();
                let body = b.create_block();
                let exit = b.create_block();
                b.switch_to(entry);
                let zero = b.iconst(Type::I64, 0);
                b.jump(header);
                b.switch_to(header);
                let i = b.phi(Type::I64, vec![(entry, zero)]);
                let s = b.phi(Type::I64, vec![(entry, zero)]);
                let n = b.param(0);
                let c = b.icmp(CmpOp::SLt, Type::I64, i, n);
                b.branch(c, body, exit);
                b.switch_to(body);
                let s2 = b.add(Type::I64, s, i);
                let one = b.iconst(Type::I64, 1);
                let i2 = b.add(Type::I64, i, one);
                b.phi_add_incoming(i, body, i2);
                b.phi_add_incoming(s, body, s2);
                b.jump(header);
                b.switch_to(exit);
                b.ret(Some(s));
            },
            sig,
            &[100],
        )
        .unwrap();
        assert_eq!(r[0], 4950);
    }

    #[test]
    fn i128_arithmetic_and_overflow() {
        let sig = Signature::new(vec![Type::I64, Type::I64], Type::I128);
        let build = |b: &mut FunctionBuilder| {
            let entry = b.entry_block();
            b.switch_to(entry);
            let (x, y) = (b.param(0), b.param(1));
            let wx = b.sext(Type::I128, x);
            let wy = b.sext(Type::I128, y);
            let p = b.binary(Opcode::SMulTrap, Type::I128, wx, wy);
            let p2 = b.binary(Opcode::SMulTrap, Type::I128, p, p);
            b.ret(Some(p2));
        };
        let r = run_one(build, sig.clone(), &[1 << 20, 1 << 20]).unwrap();
        // (2^40)^2 = 2^80: lo = 0, hi = 2^(80-64) = 65536.
        assert_eq!(r[0], 0);
        assert_eq!(r[1], 1 << 16);
    }

    #[test]
    fn overflow_traps() {
        let sig = Signature::new(vec![Type::I64], Type::I64);
        let r = run_one(
            |b| {
                let entry = b.entry_block();
                b.switch_to(entry);
                let x = b.param(0);
                let y = b.binary(Opcode::SAddTrap, Type::I64, x, x);
                b.ret(Some(y));
            },
            sig,
            &[i64::MAX as u64],
        );
        assert_eq!(r.unwrap_err(), Trap::Overflow);
    }

    #[test]
    fn narrow_width_semantics() {
        // i32 wrapping add, then compare signed.
        let sig = Signature::new(vec![Type::I32, Type::I32], Type::Bool);
        let r = run_one(
            |b| {
                let entry = b.entry_block();
                b.switch_to(entry);
                let (x, y) = (b.param(0), b.param(1));
                let s = b.add(Type::I32, x, y); // wraps at 32 bits
                let zero = b.iconst(Type::I32, 0);
                let c = b.icmp(CmpOp::SLt, Type::I32, s, zero);
                b.ret(Some(c));
            },
            sig,
            &[i32::MAX as u64, 1],
        )
        .unwrap();
        assert_eq!(r[0], 1, "i32::MAX + 1 wraps negative");
    }

    #[test]
    fn runtime_calls_and_stack_slots() {
        let sig = Signature::new(vec![], Type::I64);
        let r = run_one(
            |b| {
                let slot = b.stack_slot(16);
                let ext = b.declare_ext_func(qc_ir::ExtFuncDecl {
                    name: "rt_alloc".into(),
                    sig: Signature::new(vec![Type::I64], Type::Ptr),
                });
                let entry = b.entry_block();
                b.switch_to(entry);
                let sz = b.iconst(Type::I64, 64);
                let p = b.call(ext, vec![sz]).unwrap();
                let v = b.iconst(Type::I64, 99);
                b.store(Type::I64, p, v, 8);
                let back = b.load(Type::I64, p, 8);
                // also exercise the stack slot
                let sa = b.stack_addr(slot);
                b.store(Type::I64, sa, back, 0);
                let fin = b.load(Type::I64, sa, 0);
                b.ret(Some(fin));
            },
            sig,
            &[],
        )
        .unwrap();
        assert_eq!(r[0], 99);
    }

    #[test]
    fn strings_pass_by_value() {
        let sig = Signature::new(vec![Type::String, Type::String], Type::Bool);
        let mut state = RuntimeState::new();
        let a = state.intern_string("hello world, long string");
        let b2 = state.intern_string("hello world, long string");
        let mut bld = FunctionBuilder::new("f", sig);
        let ext = bld.declare_ext_func(qc_ir::ExtFuncDecl {
            name: "rt_str_eq".into(),
            sig: Signature::new(vec![Type::String, Type::String], Type::Bool),
        });
        let entry = bld.entry_block();
        bld.switch_to(entry);
        let (x, y) = (bld.param(0), bld.param(1));
        let r = bld.call(ext, vec![x, y]).unwrap();
        bld.ret(Some(r));
        let mut m = Module::new("m");
        m.push_function(bld.finish());
        let mut exe = InterpBackend::new()
            .compile(&m, &TimeTrace::disabled())
            .unwrap();
        let r = exe
            .call(&mut state, "f", &[a.lo, a.hi, b2.lo, b2.hi])
            .unwrap();
        assert_eq!(r[0], 1);
        assert!(exe.exec_stats().cycles > 0);
    }

    #[test]
    fn crc32_matches_target_model() {
        let sig = Signature::new(vec![Type::I64, Type::I64], Type::I64);
        let r = run_one(
            |b| {
                let entry = b.entry_block();
                b.switch_to(entry);
                let (x, y) = (b.param(0), b.param(1));
                let c = b.crc32(x, y);
                b.ret(Some(c));
            },
            sig,
            &[7, 1234567],
        )
        .unwrap();
        assert_eq!(r[0], qc_target::crc32c_u64(7, 1234567));
    }
}
