//! Register-based bytecode.

use qc_ir::{CastOp, CmpOp, Opcode, Type};
use std::collections::HashMap;

/// Base of the virtual address range used for bytecode function
/// references (e.g. sort comparators passed to the runtime).
pub const BYTECODE_BASE: u64 = 0x7bc0_0000_0000;

/// A register slot index (one 64-bit cell; two-register values occupy the
/// pair `slot`, `slot + 1`).
pub type Slot = u32;

/// One bytecode operation.
#[derive(Debug, Clone)]
pub enum BcOp {
    /// Load a constant into one slot.
    ConstI {
        /// Destination slot.
        dst: Slot,
        /// Value bits.
        val: u64,
    },
    /// Load a 128-bit constant into a slot pair.
    ConstI128 {
        /// Destination slot pair.
        dst: Slot,
        /// Value.
        val: i128,
    },
    /// Binary operation at an IR type.
    Bin {
        /// Operator.
        op: Opcode,
        /// Operand type.
        ty: Type,
        /// Destination.
        dst: Slot,
        /// Left operand.
        a: Slot,
        /// Right operand.
        b: Slot,
    },
    /// Integer comparison.
    Cmp {
        /// Predicate.
        op: CmpOp,
        /// Operand type.
        ty: Type,
        /// Destination (bool).
        dst: Slot,
        /// Left operand.
        a: Slot,
        /// Right operand.
        b: Slot,
    },
    /// Float comparison (ordered).
    FCmp {
        /// Predicate.
        op: CmpOp,
        /// Destination (bool).
        dst: Slot,
        /// Left operand.
        a: Slot,
        /// Right operand.
        b: Slot,
    },
    /// Conversion.
    Cast {
        /// Kind.
        op: CastOp,
        /// Source type.
        from: Type,
        /// Destination type.
        to: Type,
        /// Destination.
        dst: Slot,
        /// Source.
        src: Slot,
    },
    /// CRC-32 step.
    Crc32 {
        /// Destination.
        dst: Slot,
        /// Accumulator.
        acc: Slot,
        /// Data.
        data: Slot,
    },
    /// Long-mul-fold.
    LMulFold {
        /// Destination.
        dst: Slot,
        /// Left operand.
        a: Slot,
        /// Right operand.
        b: Slot,
    },
    /// Conditional select of `regs` consecutive slots.
    Select {
        /// Destination.
        dst: Slot,
        /// Condition (bool slot).
        cond: Slot,
        /// Value when true.
        a: Slot,
        /// Value when false.
        b: Slot,
        /// Register count (1 or 2).
        regs: u8,
    },
    /// Memory load.
    Load {
        /// Loaded type.
        ty: Type,
        /// Destination.
        dst: Slot,
        /// Pointer slot.
        ptr: Slot,
        /// Byte offset.
        off: i32,
    },
    /// Memory store.
    Store {
        /// Stored type.
        ty: Type,
        /// Pointer slot.
        ptr: Slot,
        /// Source.
        src: Slot,
        /// Byte offset.
        off: i32,
    },
    /// Address computation.
    Gep {
        /// Destination.
        dst: Slot,
        /// Base pointer slot.
        base: Slot,
        /// Constant offset.
        off: i64,
        /// Optional `(index slot, scale)`.
        index: Option<(Slot, u8)>,
    },
    /// Address of a frame-local stack slot.
    StackAddr {
        /// Destination.
        dst: Slot,
        /// Byte offset within the frame buffer.
        frame_off: u32,
    },
    /// Runtime call.
    Call {
        /// Runtime function index.
        rt_index: usize,
        /// Flattened 64-bit argument slots.
        args: Vec<Slot>,
        /// Result destination and its register count.
        dst: Option<(Slot, u8)>,
    },
    /// Address of a bytecode function (for callbacks).
    FuncAddr {
        /// Destination.
        dst: Slot,
        /// Function index within the program.
        func: usize,
    },
    /// Parallel copies performed on a CFG edge (SSA Φ destruction).
    Copies {
        /// `(src, dst, regs)` triples, semantically simultaneous.
        pairs: Vec<(Slot, Slot, u8)>,
    },
    /// Unconditional jump to a bytecode pc.
    Jump {
        /// Target pc.
        target: u32,
    },
    /// Conditional branch.
    BrIf {
        /// Condition slot.
        cond: Slot,
        /// Target when true.
        then_pc: u32,
        /// Target when false.
        else_pc: u32,
    },
    /// Return.
    Ret {
        /// Returned slot and register count.
        src: Option<(Slot, u8)>,
    },
    /// Unreachable marker.
    Unreachable,
}

/// One compiled bytecode function.
#[derive(Debug)]
pub struct BcFunc {
    /// Function name.
    pub name: String,
    /// Operations.
    pub code: Vec<BcOp>,
    /// Number of register slots.
    pub num_slots: usize,
    /// Total size of frame-local stack slots in bytes.
    pub frame_size: usize,
    /// Number of 64-bit parameter slots.
    pub param_slots: usize,
}

/// A compiled module.
#[derive(Debug, Default)]
pub struct Program {
    /// Functions by index.
    pub funcs: Vec<BcFunc>,
    by_name: HashMap<String, usize>,
}

impl Program {
    /// Adds a function.
    pub fn push(&mut self, func: BcFunc) {
        self.by_name.insert(func.name.clone(), self.funcs.len());
        self.funcs.push(func);
    }

    /// Index of a function by name.
    pub fn func_index(&self, name: &str) -> Option<usize> {
        self.by_name.get(name).copied()
    }

    /// Total bytecode operation count (compile-size metric).
    pub fn op_count(&self) -> usize {
        self.funcs.iter().map(|f| f.code.len()).sum()
    }

    /// Deterministic serialization of the whole program, used by the
    /// engine's determinism tests to compare translations byte for
    /// byte. Bytecode holds no addresses, so the `Debug` rendering of
    /// each operation is already position independent.
    pub fn content_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        for f in &self.funcs {
            out.extend_from_slice(f.name.as_bytes());
            out.push(0);
            out.extend_from_slice(&(f.num_slots as u64).to_le_bytes());
            out.extend_from_slice(&(f.frame_size as u64).to_le_bytes());
            out.extend_from_slice(&(f.param_slots as u64).to_le_bytes());
            for op in &f.code {
                out.extend_from_slice(format!("{op:?};").as_bytes());
            }
        }
        out
    }
}
