//! The bytecode dispatch loop.

use crate::bytecode::{BcOp, Program, BYTECODE_BASE};
use qc_ir::{CastOp, CmpOp, Opcode, Type};
use qc_runtime::RuntimeState;
use qc_target::{crc32c_u64, ExecStats, Trap, CALL_DISPATCH_COST};

/// Dispatch overhead charged per executed bytecode operation, on top of
/// the operation's machine-equivalent cost. This models interpretation
/// overhead in the deterministic cycle model (Table III's interpreter row).
pub const DISPATCH_COST: u64 = 12;

fn width_mask(ty: Type) -> u64 {
    match ty.bits() {
        64 | 128 => u64::MAX,
        b => (1u64 << b) - 1,
    }
}

fn sext(v: u64, ty: Type) -> i64 {
    let bits = ty.bits().min(64);
    ((v << (64 - bits)) as i64) >> (64 - bits)
}

fn op_cost(op: &BcOp) -> u64 {
    let base = match op {
        BcOp::ConstI { .. } | BcOp::ConstI128 { .. } => 1,
        BcOp::Bin { op, ty, .. } => {
            let wide = (*ty == Type::I128) as u64;
            match op {
                Opcode::Mul | Opcode::SMulTrap => 3 + wide * 9,
                Opcode::SDiv | Opcode::UDiv | Opcode::SRem | Opcode::URem => 25 + wide * 15,
                _ => 1 + wide,
            }
        }
        BcOp::Cmp { .. } | BcOp::FCmp { .. } => 1,
        BcOp::Cast { .. } => 1,
        BcOp::Crc32 { .. } => 1,
        BcOp::LMulFold { .. } => 4,
        BcOp::Select { .. } => 1,
        BcOp::Load { .. } => 4,
        BcOp::Store { .. } => 2,
        BcOp::Gep { .. } | BcOp::StackAddr { .. } | BcOp::FuncAddr { .. } => 1,
        BcOp::Call { .. } => 3,
        BcOp::Copies { pairs } => pairs.len() as u64,
        BcOp::Jump { .. } => 1,
        BcOp::BrIf { .. } => 2,
        BcOp::Ret { .. } => 2,
        BcOp::Unreachable => 1,
    };
    base + DISPATCH_COST
}

fn read_mem(addr: u64, ty: Type) -> Result<u64, Trap> {
    if addr < 0x10000 {
        return Err(Trap::BadAccess(addr));
    }
    // SAFETY: same host-memory execution model as the machine emulator.
    unsafe {
        Ok(match ty {
            Type::Bool | Type::I8 => std::ptr::read_unaligned(addr as *const u8) as u64,
            Type::I16 => std::ptr::read_unaligned(addr as *const u16) as u64,
            Type::I32 => std::ptr::read_unaligned(addr as *const u32) as u64,
            _ => std::ptr::read_unaligned(addr as *const u64),
        })
    }
}

fn write_mem(addr: u64, ty: Type, v: u64) -> Result<(), Trap> {
    if addr < 0x10000 {
        return Err(Trap::BadAccess(addr));
    }
    // SAFETY: see `read_mem`.
    unsafe {
        match ty {
            Type::Bool | Type::I8 => std::ptr::write_unaligned(addr as *mut u8, v as u8),
            Type::I16 => std::ptr::write_unaligned(addr as *mut u16, v as u16),
            Type::I32 => std::ptr::write_unaligned(addr as *mut u32, v as u32),
            _ => std::ptr::write_unaligned(addr as *mut u64, v),
        }
    }
    Ok(())
}

fn pair_i128(lo: u64, hi: u64) -> i128 {
    (((hi as u128) << 64) | lo as u128) as i128
}

/// Runs bytecode function `fidx` with the given 64-bit argument slots.
///
/// # Errors
/// Returns a [`Trap`] on overflow, division by zero, bad memory access,
/// or runtime errors.
pub fn run(
    program: &Program,
    state: &mut RuntimeState,
    fidx: usize,
    args: &[u64],
    stats: &mut ExecStats,
) -> Result<[u64; 2], Trap> {
    let func = &program.funcs[fidx];
    let mut regs = vec![0u64; func.num_slots.max(args.len())];
    regs[..args.len()].copy_from_slice(args);
    let mut frame = vec![0u8; func.frame_size];
    let frame_base = frame.as_mut_ptr() as u64;

    let mut pc = 0usize;
    loop {
        let op = &func.code[pc];
        stats.insts += 1;
        stats.cycles += op_cost(op);
        pc += 1;
        match op {
            BcOp::ConstI { dst, val } => regs[*dst as usize] = *val,
            BcOp::ConstI128 { dst, val } => {
                regs[*dst as usize] = *val as u64;
                regs[*dst as usize + 1] = ((*val as u128) >> 64) as u64;
            }
            BcOp::Bin { op, ty, dst, a, b } => {
                if *ty == Type::I128 {
                    let x = pair_i128(regs[*a as usize], regs[*a as usize + 1]);
                    let y = pair_i128(regs[*b as usize], regs[*b as usize + 1]);
                    let r = bin_i128(*op, x, y)?;
                    regs[*dst as usize] = r as u64;
                    regs[*dst as usize + 1] = ((r as u128) >> 64) as u64;
                } else {
                    let (x, y) = (regs[*a as usize], regs[*b as usize]);
                    regs[*dst as usize] = bin_narrow(*op, *ty, x, y)?;
                }
            }
            BcOp::Cmp { op, ty, dst, a, b } => {
                let r = if *ty == Type::I128 {
                    let x = pair_i128(regs[*a as usize], regs[*a as usize + 1]);
                    let y = pair_i128(regs[*b as usize], regs[*b as usize + 1]);
                    cmp_i128(*op, x, y)
                } else {
                    cmp_narrow(*op, *ty, regs[*a as usize], regs[*b as usize])
                };
                regs[*dst as usize] = r as u64;
            }
            BcOp::FCmp { op, dst, a, b } => {
                let x = f64::from_bits(regs[*a as usize]);
                let y = f64::from_bits(regs[*b as usize]);
                let r = match op {
                    CmpOp::Eq => x == y,
                    CmpOp::Ne => x != y,
                    CmpOp::SLt | CmpOp::ULt => x < y,
                    CmpOp::SLe | CmpOp::ULe => x <= y,
                    CmpOp::SGt | CmpOp::UGt => x > y,
                    CmpOp::SGe | CmpOp::UGe => x >= y,
                };
                regs[*dst as usize] = r as u64;
            }
            BcOp::Cast {
                op,
                from,
                to,
                dst,
                src,
            } => {
                cast(*op, *from, *to, *dst, *src, &mut regs)?;
            }
            BcOp::Crc32 { dst, acc, data } => {
                regs[*dst as usize] = crc32c_u64(regs[*acc as usize], regs[*data as usize]);
            }
            BcOp::LMulFold { dst, a, b } => {
                let p = (regs[*a as usize] as u128).wrapping_mul(regs[*b as usize] as u128);
                regs[*dst as usize] = (p as u64) ^ ((p >> 64) as u64);
            }
            BcOp::Select {
                dst,
                cond,
                a,
                b,
                regs: n,
            } => {
                let src = if regs[*cond as usize] != 0 { *a } else { *b };
                for k in 0..*n as usize {
                    regs[*dst as usize + k] = regs[src as usize + k];
                }
            }
            BcOp::Load { ty, dst, ptr, off } => {
                let addr = regs[*ptr as usize].wrapping_add(*off as i64 as u64);
                match ty {
                    Type::I128 | Type::String => {
                        regs[*dst as usize] = read_mem(addr, Type::I64)?;
                        regs[*dst as usize + 1] = read_mem(addr + 8, Type::I64)?;
                    }
                    _ => regs[*dst as usize] = read_mem(addr, *ty)?,
                }
            }
            BcOp::Store { ty, ptr, src, off } => {
                let addr = regs[*ptr as usize].wrapping_add(*off as i64 as u64);
                match ty {
                    Type::I128 | Type::String => {
                        write_mem(addr, Type::I64, regs[*src as usize])?;
                        write_mem(addr + 8, Type::I64, regs[*src as usize + 1])?;
                    }
                    _ => write_mem(addr, *ty, regs[*src as usize])?,
                }
            }
            BcOp::Gep {
                dst,
                base,
                off,
                index,
            } => {
                let mut addr = regs[*base as usize].wrapping_add(*off as u64);
                if let Some((i, scale)) = index {
                    addr = addr.wrapping_add(regs[*i as usize].wrapping_mul(*scale as u64));
                }
                regs[*dst as usize] = addr;
            }
            BcOp::StackAddr { dst, frame_off } => {
                regs[*dst as usize] = frame_base + *frame_off as u64;
            }
            BcOp::Call {
                rt_index,
                args: arg_slots,
                dst,
            } => {
                let vals: Vec<u64> = arg_slots.iter().map(|&s| regs[s as usize]).collect();
                stats.cycles += CALL_DISPATCH_COST + state.cost(*rt_index, &vals);
                let mut cb =
                    |st: &mut RuntimeState, addr: u64, cargs: &[u64]| -> Result<u64, Trap> {
                        if addr >= BYTECODE_BASE {
                            let idx = (addr - BYTECODE_BASE) as usize;
                            if idx >= program.funcs.len() {
                                return Err(Trap::BadJump(addr));
                            }
                            Ok(run(program, st, idx, cargs, stats)?[0])
                        } else {
                            Err(Trap::BadJump(addr))
                        }
                    };
                let r = state.invoke(*rt_index, &vals, &mut cb)?;
                if let Some((d, n)) = dst {
                    regs[*d as usize] = r[0];
                    if *n == 2 {
                        regs[*d as usize + 1] = r[1];
                    }
                }
            }
            BcOp::FuncAddr { dst, func } => {
                regs[*dst as usize] = BYTECODE_BASE + *func as u64;
            }
            BcOp::Copies { pairs } => {
                // Parallel semantics: snapshot sources first.
                let snapshot: Vec<[u64; 2]> = pairs
                    .iter()
                    .map(|&(s, _, n)| {
                        [
                            regs[s as usize],
                            if n == 2 { regs[s as usize + 1] } else { 0 },
                        ]
                    })
                    .collect();
                for (&(_, d, n), vals) in pairs.iter().zip(snapshot) {
                    regs[d as usize] = vals[0];
                    if n == 2 {
                        regs[d as usize + 1] = vals[1];
                    }
                }
            }
            BcOp::Jump { target } => pc = *target as usize,
            BcOp::BrIf {
                cond,
                then_pc,
                else_pc,
            } => {
                pc = if regs[*cond as usize] != 0 {
                    *then_pc as usize
                } else {
                    *else_pc as usize
                };
            }
            BcOp::Ret { src } => {
                let mut out = [0u64; 2];
                if let Some((s, n)) = src {
                    out[0] = regs[*s as usize];
                    if *n == 2 {
                        out[1] = regs[*s as usize + 1];
                    }
                }
                return Ok(out);
            }
            BcOp::Unreachable => return Err(Trap::Unreachable),
        }
    }
}

fn bin_narrow(op: Opcode, ty: Type, x: u64, y: u64) -> Result<u64, Trap> {
    // Float operations carry `ty == F64`; handle them before any
    // integer-width computation.
    match op {
        Opcode::FAdd => return Ok((f64::from_bits(x) + f64::from_bits(y)).to_bits()),
        Opcode::FSub => return Ok((f64::from_bits(x) - f64::from_bits(y)).to_bits()),
        Opcode::FMul => return Ok((f64::from_bits(x) * f64::from_bits(y)).to_bits()),
        Opcode::FDiv => return Ok((f64::from_bits(x) / f64::from_bits(y)).to_bits()),
        _ => {}
    }
    let mask = width_mask(ty);
    let bits = ty.bits().min(64);
    let (sx, sy) = (sext(x, ty), sext(y, ty));
    let wrap = |v: i64| (v as u64) & mask;
    let checked = |v: Option<i64>| -> Result<u64, Trap> {
        match v {
            Some(r) if sext(wrap(r), ty) == r => Ok(wrap(r)),
            _ => Err(Trap::Overflow),
        }
    };
    Ok(match op {
        Opcode::Add => wrap(sx.wrapping_add(sy)),
        Opcode::Sub => wrap(sx.wrapping_sub(sy)),
        Opcode::Mul => wrap(sx.wrapping_mul(sy)),
        Opcode::SAddTrap => checked(sx.checked_add(sy))?,
        Opcode::SSubTrap => checked(sx.checked_sub(sy))?,
        Opcode::SMulTrap => checked(sx.checked_mul(sy))?,
        Opcode::SAddOvf => (sx.checked_add(sy).is_none_or(|r| sext(wrap(r), ty) != r)) as u64,
        Opcode::SSubOvf => (sx.checked_sub(sy).is_none_or(|r| sext(wrap(r), ty) != r)) as u64,
        Opcode::SMulOvf => (sx.checked_mul(sy).is_none_or(|r| sext(wrap(r), ty) != r)) as u64,
        Opcode::SDiv => {
            if sy == 0 {
                return Err(Trap::DivByZero);
            }
            match sx.checked_div(sy) {
                Some(r) if sext(wrap(r), ty) == r => wrap(r),
                _ => return Err(Trap::Overflow),
            }
        }
        Opcode::UDiv => {
            if y & mask == 0 {
                return Err(Trap::DivByZero);
            }
            (x & mask) / (y & mask)
        }
        Opcode::SRem => {
            if sy == 0 {
                return Err(Trap::DivByZero);
            }
            wrap(sx.wrapping_rem(sy))
        }
        Opcode::URem => {
            if y & mask == 0 {
                return Err(Trap::DivByZero);
            }
            (x & mask) % (y & mask)
        }
        Opcode::And => x & y & mask,
        Opcode::Or => (x | y) & mask,
        Opcode::Xor => (x ^ y) & mask,
        Opcode::Shl => ((x & mask) << (y as u32 & (bits - 1))) & mask,
        Opcode::LShr => (x & mask) >> (y as u32 & (bits - 1)),
        Opcode::AShr => wrap(sx >> (y as u32 & (bits - 1))),
        Opcode::RotR => {
            let amt = y as u32 & (bits - 1);
            if amt == 0 {
                x & mask
            } else {
                (((x & mask) >> amt) | ((x & mask) << (bits - amt))) & mask
            }
        }
        Opcode::FAdd | Opcode::FSub | Opcode::FMul | Opcode::FDiv => unreachable!(),
    })
}

fn bin_i128(op: Opcode, x: i128, y: i128) -> Result<i128, Trap> {
    Ok(match op {
        Opcode::Add => x.wrapping_add(y),
        Opcode::Sub => x.wrapping_sub(y),
        Opcode::Mul => x.wrapping_mul(y),
        Opcode::SAddTrap => x.checked_add(y).ok_or(Trap::Overflow)?,
        Opcode::SSubTrap => x.checked_sub(y).ok_or(Trap::Overflow)?,
        Opcode::SMulTrap => x.checked_mul(y).ok_or(Trap::Overflow)?,
        Opcode::SAddOvf => x.checked_add(y).is_none() as i128,
        Opcode::SSubOvf => x.checked_sub(y).is_none() as i128,
        Opcode::SMulOvf => x.checked_mul(y).is_none() as i128,
        Opcode::SDiv => {
            if y == 0 {
                return Err(Trap::DivByZero);
            }
            x.checked_div(y).ok_or(Trap::Overflow)?
        }
        Opcode::UDiv => {
            if y == 0 {
                return Err(Trap::DivByZero);
            }
            ((x as u128) / (y as u128)) as i128
        }
        Opcode::SRem => {
            if y == 0 {
                return Err(Trap::DivByZero);
            }
            x.wrapping_rem(y)
        }
        Opcode::URem => {
            if y == 0 {
                return Err(Trap::DivByZero);
            }
            ((x as u128) % (y as u128)) as i128
        }
        Opcode::And => x & y,
        Opcode::Or => x | y,
        Opcode::Xor => x ^ y,
        Opcode::Shl => ((x as u128) << (y as u32 & 127)) as i128,
        Opcode::LShr => ((x as u128) >> (y as u32 & 127)) as i128,
        Opcode::AShr => x >> (y as u32 & 127),
        Opcode::RotR => (x as u128).rotate_right(y as u32 & 127) as i128,
        _ => return Err(Trap::Runtime(0xFE)), // float ops never typed i128
    })
}

fn cmp_narrow(op: CmpOp, ty: Type, x: u64, y: u64) -> bool {
    let mask = width_mask(ty);
    let (ux, uy) = (x & mask, y & mask);
    let (sx, sy) = (sext(x, ty), sext(y, ty));
    match op {
        CmpOp::Eq => ux == uy,
        CmpOp::Ne => ux != uy,
        CmpOp::SLt => sx < sy,
        CmpOp::SLe => sx <= sy,
        CmpOp::SGt => sx > sy,
        CmpOp::SGe => sx >= sy,
        CmpOp::ULt => ux < uy,
        CmpOp::ULe => ux <= uy,
        CmpOp::UGt => ux > uy,
        CmpOp::UGe => ux >= uy,
    }
}

fn cmp_i128(op: CmpOp, x: i128, y: i128) -> bool {
    let (ux, uy) = (x as u128, y as u128);
    match op {
        CmpOp::Eq => x == y,
        CmpOp::Ne => x != y,
        CmpOp::SLt => x < y,
        CmpOp::SLe => x <= y,
        CmpOp::SGt => x > y,
        CmpOp::SGe => x >= y,
        CmpOp::ULt => ux < uy,
        CmpOp::ULe => ux <= uy,
        CmpOp::UGt => ux > uy,
        CmpOp::UGe => ux >= uy,
    }
}

fn cast(
    op: CastOp,
    from: Type,
    to: Type,
    dst: u32,
    src: u32,
    regs: &mut [u64],
) -> Result<(), Trap> {
    match op {
        CastOp::Zext => {
            // Values are canonical (zero-extended at width) already.
            regs[dst as usize] = regs[src as usize];
            if to == Type::I128 {
                regs[dst as usize + 1] = 0;
            }
        }
        CastOp::Sext => {
            if from == Type::I128 {
                regs[dst as usize] = regs[src as usize];
                regs[dst as usize + 1] = regs[src as usize + 1];
            } else {
                let s = sext(regs[src as usize], from);
                regs[dst as usize] = (s as u64) & width_mask(to);
                if to == Type::I128 {
                    regs[dst as usize] = s as u64;
                    regs[dst as usize + 1] = (s >> 63) as u64;
                }
            }
        }
        CastOp::Trunc => {
            regs[dst as usize] = regs[src as usize] & width_mask(to);
        }
        CastOp::SiToF => {
            let v = if from == Type::I128 {
                pair_i128(regs[src as usize], regs[src as usize + 1]) as f64
            } else {
                sext(regs[src as usize], from) as f64
            };
            regs[dst as usize] = v.to_bits();
        }
        CastOp::FToSi => {
            let f = f64::from_bits(regs[src as usize]);
            if f.is_nan() || f <= -9.3e18 || f >= 9.3e18 {
                return Err(Trap::Overflow);
            }
            regs[dst as usize] = (f.trunc() as i64 as u64) & width_mask(to);
        }
    }
    Ok(())
}
