//! The pipeline code generator.

use qc_ir::{
    Block, CastOp, CmpOp, ExtFuncDecl, FuncId, FunctionBuilder, Module, Opcode, Signature, Type,
    Value,
};
use qc_plan::AggFunc;
use qc_plan::{
    ArithOp, CmpKind, CtxEntry, Expr, PhysicalPlan, Pipeline, RowLayout, Sink, Source, StreamOp,
};
use qc_runtime::{HASH_SEED1, HASH_SEED2};
use qc_storage::ColumnType;

/// The generated IR of one query: one module per pipeline, in execution
/// order. Each module defines `setup(ctx)`, `main(ctx, start, count)`,
/// `finish(ctx)`, and for sort pipelines a comparator `cmp<N>(a, b)`.
/// Modules are reference-counted so the engine's compilation service
/// can ship each pipeline to a worker thread without cloning the IR.
#[derive(Debug)]
pub struct GeneratedQuery {
    /// One module per pipeline.
    pub modules: Vec<std::sync::Arc<Module>>,
}

/// Generates IR for every pipeline of `plan`.
pub fn generate(plan: &PhysicalPlan, query_name: &str) -> GeneratedQuery {
    let modules = plan
        .pipelines
        .iter()
        .map(|p| std::sync::Arc::new(generate_pipeline(plan, p, query_name)))
        .collect();
    GeneratedQuery { modules }
}

/// QIR type for a plan column type, as held in SSA values.
fn ir_type(ty: ColumnType) -> Type {
    match ty {
        ColumnType::I32 | ColumnType::I64 | ColumnType::Date => Type::I64,
        ColumnType::Decimal(_) => Type::I128,
        ColumnType::F64 => Type::F64,
        ColumnType::Str => Type::String,
        ColumnType::Bool => Type::Bool,
    }
}

fn generate_pipeline(plan: &PhysicalPlan, pipe: &Pipeline, query_name: &str) -> Module {
    let mut module = Module::new(&format!("{query_name}_p{}", pipe.id));

    // Sort comparator first so its FuncId is known to `finish`.
    let cmp_id = if let Sink::SortMaterialize {
        sort_id,
        keys,
        layout,
    } = &pipe.sink
    {
        Some((
            gen_comparator(&mut module, *sort_id, keys, layout),
            *sort_id,
        ))
    } else {
        None
    };

    gen_setup(&mut module, plan, pipe);
    gen_main(&mut module, plan, pipe);
    gen_finish(&mut module, plan, pipe, cmp_id);
    module
}

/// Declares a runtime function with its QIR signature.
fn rt_decl(name: &str) -> ExtFuncDecl {
    use Type::{Bool, Ptr, String as Str, Void, I128, I64};
    let sig = match name {
        "rt_throw_overflow" => Signature::new(vec![], Void),
        "rt_ht_create" => Signature::new(vec![I64], I64),
        "rt_ht_insert" => Signature::new(vec![I64, I64, I64], Ptr),
        "rt_ht_build" => Signature::new(vec![I64], Void),
        "rt_ht_probe" => Signature::new(vec![I64, I64], Ptr),
        "rt_buf_create" => Signature::new(vec![I64], I64),
        "rt_buf_alloc" => Signature::new(vec![I64], Ptr),
        "rt_buf_len" => Signature::new(vec![I64], I64),
        "rt_buf_row" => Signature::new(vec![I64, I64], Ptr),
        "rt_sort" => Signature::new(vec![I64, Ptr], Void),
        "rt_str_eq" | "rt_str_lt" | "rt_str_prefix" | "rt_str_contains" => {
            Signature::new(vec![Str, Str], Bool)
        }
        "rt_str_hash" => Signature::new(vec![Str], I64),
        "rt_i128_div" => Signature::new(vec![I128, I128], I128),
        "rt_mul128_ovf" => Signature::new(vec![I128, I128], I128),
        "rt_alloc" => Signature::new(vec![I64], Ptr),
        _ => panic!("unknown runtime function {name}"),
    };
    ExtFuncDecl {
        name: name.to_string(),
        sig,
    }
}

/// One bound column value.
#[derive(Debug, Clone, Copy)]
struct Binding {
    value: Value,
    ty: ColumnType,
}

/// Code generation state for one function.
struct Gen<'p> {
    b: FunctionBuilder,
    plan: &'p PhysicalPlan,
    /// Name → value bindings; later entries shadow earlier ones.
    env: Vec<(String, Binding)>,
    /// Hoisted string literals by literal index.
    str_consts: Vec<Option<Binding>>,
    /// ctx parameter.
    ctx: Value,
}

impl<'p> Gen<'p> {
    fn new(plan: &'p PhysicalPlan, name: &str, sig: Signature) -> Self {
        let b = FunctionBuilder::new(name, sig);
        let ctx = b.param(0);
        Gen {
            b,
            plan,
            env: Vec::new(),
            str_consts: vec![None; plan.str_literals.len()],
            ctx,
        }
    }

    fn bind(&mut self, name: &str, value: Value, ty: ColumnType) {
        self.env.push((name.to_string(), Binding { value, ty }));
    }

    fn lookup(&self, name: &str) -> Binding {
        self.env
            .iter()
            .rev()
            .find(|(n, _)| n == name)
            .map(|&(_, b)| b)
            .unwrap_or_else(|| panic!("unbound column `{name}`"))
    }

    fn call_rt(&mut self, name: &str, args: Vec<Value>) -> Option<Value> {
        let id = self.b.declare_ext_func(rt_decl(name));
        self.b.call(id, args)
    }

    /// Loads a ctx slot as a 64-bit handle/pointer.
    fn ctx_load(&mut self, entry: &CtxEntry, ty: Type) -> Value {
        let off = self.plan.ctx_offset(entry);
        self.b.load(ty, self.ctx, off)
    }

    fn ctx_store(&mut self, entry: &CtxEntry, ty: Type, value: Value) {
        let off = self.plan.ctx_offset(entry);
        self.b.store(ty, self.ctx, value, off);
    }

    /// Hoists string literal `idx` (loaded once in the entry block).
    fn str_const(&mut self, idx: usize) -> Binding {
        if let Some(b) = self.str_consts[idx] {
            return b;
        }
        let v = self.ctx_load(&CtxEntry::StrConst(idx), Type::String);
        let b = Binding {
            value: v,
            ty: ColumnType::Str,
        };
        self.str_consts[idx] = Some(b);
        b
    }

    fn str_literal_index(&self, s: &str) -> usize {
        self.plan
            .str_literals
            .iter()
            .position(|l| l == s)
            .unwrap_or_else(|| panic!("string literal `{s}` not interned"))
    }

    /// Boolean AND via select (non-short-circuiting).
    fn bool_and(&mut self, a: Value, b: Value) -> Value {
        let f = self.b.iconst(Type::Bool, 0);
        self.b.select(Type::Bool, a, b, f)
    }

    fn bool_or(&mut self, a: Value, b: Value) -> Value {
        let t = self.b.iconst(Type::Bool, 1);
        self.b.select(Type::Bool, a, t, b)
    }

    fn bool_not(&mut self, a: Value) -> Value {
        let f = self.b.iconst(Type::Bool, 0);
        self.b.icmp(CmpOp::Eq, Type::Bool, a, f)
    }

    /// Emits the paper's Listing-2 hash sequence for a 64-bit value.
    fn hash_i64(&mut self, v: Value) -> Value {
        let s1 = self.b.iconst(Type::I64, HASH_SEED1 as i64 as i128);
        let s2 = self.b.iconst(Type::I64, HASH_SEED2 as i64 as i128);
        let a = self.b.crc32(s1, v);
        let c = self.b.crc32(s2, v);
        let thirty_two = self.b.iconst(Type::I64, 32);
        let hi = self.b.binary(Opcode::Shl, Type::I64, c, thirty_two);
        self.b.binary(Opcode::Or, Type::I64, a, hi)
    }

    /// Combines two hashes (must match `qc_runtime::hash_combine`).
    fn hash_combine(&mut self, a: Value, b: Value) -> Value {
        let three = self.b.iconst(Type::I64, 3);
        let m = self.b.binary(Opcode::Mul, Type::I64, a, three);
        let seventeen = self.b.iconst(Type::I64, 17);
        let r = self.b.binary(Opcode::RotR, Type::I64, b, seventeen);
        let s = self.b.add(Type::I64, m, r);
        let k = self.b.iconst(Type::I64, (HASH_SEED1 | 1) as i64 as i128);
        self.b.long_mul_fold(s, k)
    }

    /// Hashes a key tuple. Global aggregations (no keys) hash to a
    /// constant: all tuples land in one group.
    fn hash_keys(&mut self, keys: &[Binding]) -> Value {
        if keys.is_empty() {
            return self.b.iconst(Type::I64, HASH_SEED1 as i64 as i128);
        }
        let mut h: Option<Value> = None;
        for key in keys {
            let hk = match key.ty {
                ColumnType::Str => self
                    .call_rt("rt_str_hash", vec![key.value])
                    .expect("str hash returns"),
                ColumnType::Decimal(_) => {
                    let t = self.b.trunc(Type::I64, key.value);
                    self.hash_i64(t)
                }
                ColumnType::Bool => {
                    let z = self.b.zext(Type::I64, key.value);
                    self.hash_i64(z)
                }
                ColumnType::F64 => panic!("float join/group keys are unsupported"),
                _ => self.hash_i64(key.value),
            };
            h = Some(match h {
                None => hk,
                Some(acc) => self.hash_combine(acc, hk),
            });
        }
        h.expect("at least one key")
    }

    /// Loads a materialized-row field.
    fn load_field(&mut self, row: Value, layout: &RowLayout, name: &str) -> Binding {
        let f = layout
            .field(name)
            .unwrap_or_else(|| panic!("no field `{name}`"));
        let off = f.offset as i32;
        let value = match f.ty {
            ColumnType::Decimal(_) => self.b.load(Type::I128, row, off),
            ColumnType::Str => self.b.load(Type::String, row, off),
            ColumnType::F64 => self.b.load(Type::F64, row, off),
            ColumnType::Bool => {
                let v = self.b.load(Type::I64, row, off);
                let zero = self.b.iconst(Type::I64, 0);
                self.b.icmp(CmpOp::Ne, Type::I64, v, zero)
            }
            _ => self.b.load(Type::I64, row, off),
        };
        Binding { value, ty: f.ty }
    }

    /// Stores a materialized-row field.
    fn store_field(&mut self, row: Value, layout: &RowLayout, name: &str, v: Binding) {
        let f = layout
            .field(name)
            .unwrap_or_else(|| panic!("no field `{name}`"));
        let off = f.offset as i32;
        match f.ty {
            ColumnType::Decimal(_) => self.b.store(Type::I128, row, v.value, off),
            ColumnType::Str => self.b.store(Type::String, row, v.value, off),
            ColumnType::F64 => self.b.store(Type::F64, row, v.value, off),
            ColumnType::Bool => {
                let z = self.b.zext(Type::I64, v.value);
                self.b.store(Type::I64, row, z, off);
            }
            _ => self.b.store(Type::I64, row, v.value, off),
        }
    }

    /// Equality of two bound values (for key comparisons).
    fn values_eq(&mut self, a: Binding, b: Binding) -> Value {
        match a.ty {
            ColumnType::Str => self
                .call_rt("rt_str_eq", vec![a.value, b.value])
                .expect("returns bool"),
            ColumnType::Decimal(_) => self.b.icmp(CmpOp::Eq, Type::I128, a.value, b.value),
            ColumnType::Bool => self.b.icmp(CmpOp::Eq, Type::Bool, a.value, b.value),
            ColumnType::F64 => self.b.fcmp(CmpOp::Eq, a.value, b.value),
            _ => self.b.icmp(CmpOp::Eq, Type::I64, a.value, b.value),
        }
    }

    /// Evaluates a plan expression in the current environment.
    fn eval(&mut self, e: &Expr) -> Binding {
        match e {
            Expr::Column(n) => self.lookup(n),
            Expr::LitI64(v) => {
                let x = self.b.iconst(Type::I64, *v as i128);
                Binding {
                    value: x,
                    ty: ColumnType::I64,
                }
            }
            Expr::LitI32(v) => {
                let x = self.b.iconst(Type::I64, *v as i128);
                Binding {
                    value: x,
                    ty: ColumnType::I64,
                }
            }
            Expr::LitDate(v) => {
                let x = self.b.iconst(Type::I64, *v as i128);
                Binding {
                    value: x,
                    ty: ColumnType::Date,
                }
            }
            Expr::LitDec(v, s) => {
                let x = self.b.iconst(Type::I128, *v);
                Binding {
                    value: x,
                    ty: ColumnType::Decimal(*s),
                }
            }
            Expr::LitF64(v) => {
                let x = self.b.fconst(*v);
                Binding {
                    value: x,
                    ty: ColumnType::F64,
                }
            }
            Expr::LitBool(v) => {
                let x = self.b.iconst(Type::Bool, *v as i128);
                Binding {
                    value: x,
                    ty: ColumnType::Bool,
                }
            }
            Expr::LitStr(s) => {
                let idx = self.str_literal_index(s);
                self.str_const(idx)
            }
            Expr::Arith(op, a, b) => {
                let (va, vb) = (self.eval(a), self.eval(b));
                self.arith(*op, va, vb)
            }
            Expr::Cmp(op, a, b) => {
                let (va, vb) = (self.eval(a), self.eval(b));
                let v = self.compare(*op, va, vb);
                Binding {
                    value: v,
                    ty: ColumnType::Bool,
                }
            }
            Expr::And(a, b) => {
                let (va, vb) = (self.eval(a), self.eval(b));
                let v = self.bool_and(va.value, vb.value);
                Binding {
                    value: v,
                    ty: ColumnType::Bool,
                }
            }
            Expr::Or(a, b) => {
                let (va, vb) = (self.eval(a), self.eval(b));
                let v = self.bool_or(va.value, vb.value);
                Binding {
                    value: v,
                    ty: ColumnType::Bool,
                }
            }
            Expr::Not(a) => {
                let va = self.eval(a);
                let v = self.bool_not(va.value);
                Binding {
                    value: v,
                    ty: ColumnType::Bool,
                }
            }
            Expr::StrPrefix(a, b) => {
                let (va, vb) = (self.eval(a), self.eval(b));
                let v = self
                    .call_rt("rt_str_prefix", vec![va.value, vb.value])
                    .expect("returns bool");
                Binding {
                    value: v,
                    ty: ColumnType::Bool,
                }
            }
            Expr::StrContains(a, b) => {
                let (va, vb) = (self.eval(a), self.eval(b));
                let v = self
                    .call_rt("rt_str_contains", vec![va.value, vb.value])
                    .expect("returns bool");
                Binding {
                    value: v,
                    ty: ColumnType::Bool,
                }
            }
            Expr::CastF64(a) => {
                let va = self.eval(a);
                let v = match va.ty {
                    ColumnType::F64 => va.value,
                    ColumnType::Decimal(_) => {
                        // Group sums fit 64 bits at our scale factors; see
                        // DESIGN.md for the precision note.
                        let t = self.b.trunc(Type::I64, va.value);
                        self.b.cast(CastOp::SiToF, Type::F64, t)
                    }
                    _ => self.b.cast(CastOp::SiToF, Type::F64, va.value),
                };
                Binding {
                    value: v,
                    ty: ColumnType::F64,
                }
            }
        }
    }

    fn arith(&mut self, op: ArithOp, a: Binding, b: Binding) -> Binding {
        match (a.ty, b.ty) {
            (ColumnType::Decimal(s1), ColumnType::Decimal(s2)) => {
                let (value, scale) = match op {
                    ArithOp::Add => (
                        self.b
                            .binary(Opcode::SAddTrap, Type::I128, a.value, b.value),
                        s1,
                    ),
                    ArithOp::Sub => (
                        self.b
                            .binary(Opcode::SSubTrap, Type::I128, a.value, b.value),
                        s1,
                    ),
                    ArithOp::Mul => (
                        self.b
                            .binary(Opcode::SMulTrap, Type::I128, a.value, b.value),
                        s1 + s2,
                    ),
                    ArithOp::Div => {
                        let scale = self.b.iconst(Type::I128, 10i128.pow(s2 as u32));
                        let scaled = self.b.binary(Opcode::SMulTrap, Type::I128, a.value, scale);
                        (self.b.binary(Opcode::SDiv, Type::I128, scaled, b.value), s1)
                    }
                };
                Binding {
                    value,
                    ty: ColumnType::Decimal(scale),
                }
            }
            (ColumnType::F64, ColumnType::F64) => {
                let opc = match op {
                    ArithOp::Add => Opcode::FAdd,
                    ArithOp::Sub => Opcode::FSub,
                    ArithOp::Mul => Opcode::FMul,
                    ArithOp::Div => Opcode::FDiv,
                };
                Binding {
                    value: self.b.binary(opc, Type::F64, a.value, b.value),
                    ty: ColumnType::F64,
                }
            }
            _ => {
                let opc = match op {
                    ArithOp::Add => Opcode::SAddTrap,
                    ArithOp::Sub => Opcode::SSubTrap,
                    ArithOp::Mul => Opcode::SMulTrap,
                    ArithOp::Div => Opcode::SDiv,
                };
                Binding {
                    value: self.b.binary(opc, Type::I64, a.value, b.value),
                    ty: ColumnType::I64,
                }
            }
        }
    }

    fn compare(&mut self, op: CmpKind, a: Binding, b: Binding) -> Value {
        let pred = match op {
            CmpKind::Eq => CmpOp::Eq,
            CmpKind::Ne => CmpOp::Ne,
            CmpKind::Lt => CmpOp::SLt,
            CmpKind::Le => CmpOp::SLe,
            CmpKind::Gt => CmpOp::SGt,
            CmpKind::Ge => CmpOp::SGe,
        };
        match (a.ty, b.ty) {
            (ColumnType::Str, ColumnType::Str) => match op {
                CmpKind::Eq => self
                    .call_rt("rt_str_eq", vec![a.value, b.value])
                    .expect("bool"),
                CmpKind::Ne => {
                    let e = self
                        .call_rt("rt_str_eq", vec![a.value, b.value])
                        .expect("bool");
                    self.bool_not(e)
                }
                CmpKind::Lt => self
                    .call_rt("rt_str_lt", vec![a.value, b.value])
                    .expect("bool"),
                CmpKind::Gt => self
                    .call_rt("rt_str_lt", vec![b.value, a.value])
                    .expect("bool"),
                CmpKind::Le => {
                    let g = self
                        .call_rt("rt_str_lt", vec![b.value, a.value])
                        .expect("bool");
                    self.bool_not(g)
                }
                CmpKind::Ge => {
                    let l = self
                        .call_rt("rt_str_lt", vec![a.value, b.value])
                        .expect("bool");
                    self.bool_not(l)
                }
            },
            (ColumnType::F64, ColumnType::F64) => self.b.fcmp(pred, a.value, b.value),
            (ColumnType::Decimal(_), ColumnType::Decimal(_)) => {
                self.b.icmp(pred, Type::I128, a.value, b.value)
            }
            (ColumnType::Bool, ColumnType::Bool) => self.b.icmp(pred, Type::Bool, a.value, b.value),
            _ => self.b.icmp(pred, Type::I64, a.value, b.value),
        }
    }
}

fn gen_setup(module: &mut Module, plan: &PhysicalPlan, pipe: &Pipeline) {
    let mut g = Gen::new(plan, "setup", Signature::new(vec![Type::Ptr], Type::Void));
    let entry = g.b.entry_block();
    g.b.switch_to(entry);
    match &pipe.sink {
        Sink::Output { layout } => {
            let size = g.b.iconst(Type::I64, layout.size.max(8) as i128);
            let buf = g.call_rt("rt_buf_create", vec![size]).expect("handle");
            g.ctx_store(&CtxEntry::OutputBuf, Type::I64, buf);
        }
        Sink::JoinBuild { join_id, .. } => {
            let est = g.b.iconst(Type::I64, 1024);
            let ht = g.call_rt("rt_ht_create", vec![est]).expect("handle");
            g.ctx_store(&CtxEntry::JoinHt(*join_id), Type::I64, ht);
        }
        Sink::AggBuild { agg_id, .. } => {
            let est = g.b.iconst(Type::I64, 1024);
            let ht = g.call_rt("rt_ht_create", vec![est]).expect("handle");
            g.ctx_store(&CtxEntry::AggHt(*agg_id), Type::I64, ht);
            let eight = g.b.iconst(Type::I64, 8);
            let groups = g.call_rt("rt_buf_create", vec![eight]).expect("handle");
            g.ctx_store(&CtxEntry::AggGroups(*agg_id), Type::I64, groups);
        }
        Sink::SortMaterialize {
            sort_id, layout, ..
        } => {
            let size = g.b.iconst(Type::I64, layout.size.max(8) as i128);
            let buf = g.call_rt("rt_buf_create", vec![size]).expect("handle");
            g.ctx_store(&CtxEntry::SortBuf(*sort_id), Type::I64, buf);
        }
    }
    g.b.ret(None);
    module.push_function(g.b.finish());
}

fn gen_finish(
    module: &mut Module,
    plan: &PhysicalPlan,
    pipe: &Pipeline,
    cmp: Option<(FuncId, usize)>,
) {
    let mut g = Gen::new(plan, "finish", Signature::new(vec![Type::Ptr], Type::Void));
    let entry = g.b.entry_block();
    g.b.switch_to(entry);
    match &pipe.sink {
        Sink::JoinBuild { join_id, .. } => {
            let ht = g.ctx_load(&CtxEntry::JoinHt(*join_id), Type::I64);
            g.call_rt("rt_ht_build", vec![ht]);
        }
        Sink::SortMaterialize { .. } => {
            let (cmp_id, sort_id) = cmp.expect("sort pipeline has comparator");
            let buf = g.ctx_load(&CtxEntry::SortBuf(sort_id), Type::I64);
            let f = g.b.func_addr(cmp_id);
            g.call_rt("rt_sort", vec![buf, f]);
        }
        _ => {}
    }
    g.b.ret(None);
    module.push_function(g.b.finish());
}

fn gen_comparator(
    module: &mut Module,
    sort_id: usize,
    keys: &[(String, bool)],
    layout: &RowLayout,
) -> FuncId {
    // cmp(a, b) -> i64 (<0, 0, >0); plan is irrelevant for comparators but
    // Gen wants one — build a minimal throwaway context.
    let plan = PhysicalPlan {
        pipelines: Vec::new(),
        ctx: Vec::new(),
        output: RowLayout::default(),
        output_schema: Vec::new(),
        str_literals: Vec::new(),
    };
    let sig = Signature::new(vec![Type::Ptr, Type::Ptr], Type::I64);
    let mut g = Gen::new(&plan, &format!("cmp{sort_id}"), sig);
    let entry = g.b.entry_block();
    g.b.switch_to(entry);
    let (pa, pb) = (g.b.param(0), g.b.param(1));

    let ret_block = |g: &mut Gen, v: i64| -> Block {
        let blk = g.b.create_block();
        let cur = g.b.current_block();
        g.b.switch_to(blk);
        let c = g.b.iconst(Type::I64, v as i128);
        g.b.ret(Some(c));
        if let Some(c) = cur {
            g.b.switch_to(c);
        }
        blk
    };
    let less = ret_block(&mut g, -1);
    let greater = ret_block(&mut g, 1);

    for (key, asc) in keys {
        let va = g.load_field(pa, layout, key);
        let vb = g.load_field(pb, layout, key);
        let (first, second) = if *asc {
            (less, greater)
        } else {
            (greater, less)
        };
        let next = g.b.create_block();
        let second_check = g.b.create_block();
        let lt = match va.ty {
            ColumnType::Str => g
                .call_rt("rt_str_lt", vec![va.value, vb.value])
                .expect("bool"),
            ColumnType::Decimal(_) => g.b.icmp(CmpOp::SLt, Type::I128, va.value, vb.value),
            ColumnType::F64 => g.b.fcmp(CmpOp::SLt, va.value, vb.value),
            ColumnType::Bool => g.b.icmp(CmpOp::ULt, Type::Bool, va.value, vb.value),
            _ => g.b.icmp(CmpOp::SLt, Type::I64, va.value, vb.value),
        };
        g.b.branch(lt, first, second_check);
        g.b.switch_to(second_check);
        let gt = match va.ty {
            ColumnType::Str => g
                .call_rt("rt_str_lt", vec![vb.value, va.value])
                .expect("bool"),
            ColumnType::Decimal(_) => g.b.icmp(CmpOp::SGt, Type::I128, va.value, vb.value),
            ColumnType::F64 => g.b.fcmp(CmpOp::SGt, va.value, vb.value),
            ColumnType::Bool => g.b.icmp(CmpOp::UGt, Type::Bool, va.value, vb.value),
            _ => g.b.icmp(CmpOp::SGt, Type::I64, va.value, vb.value),
        };
        g.b.branch(gt, second, next);
        g.b.switch_to(next);
    }
    let zero = g.b.iconst(Type::I64, 0);
    g.b.ret(Some(zero));
    module.push_function(g.b.finish())
}

fn gen_main(module: &mut Module, plan: &PhysicalPlan, pipe: &Pipeline) {
    let sig = Signature::new(vec![Type::Ptr, Type::I64, Type::I64], Type::Void);
    let mut g = Gen::new(plan, "main", sig);
    let entry = g.b.entry_block();
    g.b.switch_to(entry);
    let start = g.b.param(1);
    let count = g.b.param(2);

    // Hoist ctx loads: column bases or buffer handle, sink handles.
    enum Src {
        Table {
            bases: Vec<(String, ColumnType, Value)>,
            filter: Option<Expr>,
            projected: Vec<String>,
        },
        Buffer {
            handle: Value,
            layout: RowLayout,
            deref: bool,
        },
    }
    let src = match &pipe.source {
        Source::Table {
            name,
            columns,
            projected,
            filter,
        } => {
            let bases = columns
                .iter()
                .map(|(c, ty)| {
                    let base = g.ctx_load(
                        &CtxEntry::ColumnBase {
                            table: name.clone(),
                            column: c.clone(),
                        },
                        Type::Ptr,
                    );
                    (c.clone(), *ty, base)
                })
                .collect();
            Src::Table {
                bases,
                filter: filter.clone(),
                projected: projected.clone(),
            }
        }
        Source::Buffer { buffer, layout, .. } => {
            let handle = g.ctx_load(buffer, Type::I64);
            let deref = matches!(buffer, CtxEntry::AggGroups(_));
            Src::Buffer {
                handle,
                layout: layout.clone(),
                deref,
            }
        }
    };
    let sink_handles: Vec<Value> = match &pipe.sink {
        Sink::Output { .. } => vec![g.ctx_load(&CtxEntry::OutputBuf, Type::I64)],
        Sink::JoinBuild { join_id, .. } => {
            vec![g.ctx_load(&CtxEntry::JoinHt(*join_id), Type::I64)]
        }
        Sink::AggBuild { agg_id, .. } => vec![
            g.ctx_load(&CtxEntry::AggHt(*agg_id), Type::I64),
            g.ctx_load(&CtxEntry::AggGroups(*agg_id), Type::I64),
        ],
        Sink::SortMaterialize { sort_id, .. } => {
            vec![g.ctx_load(&CtxEntry::SortBuf(*sort_id), Type::I64)]
        }
    };
    // Hoist join hash tables for probes.
    let mut probe_handles: Vec<(usize, Value)> = Vec::new();
    for op in &pipe.ops {
        if let StreamOp::Probe { join_id, .. } = op {
            let h = g.ctx_load(&CtxEntry::JoinHt(*join_id), Type::I64);
            probe_handles.push((*join_id, h));
        }
    }
    // Hoist string literals used anywhere (loads in the entry block).
    for i in 0..plan.str_literals.len() {
        if plan.ctx.contains(&CtxEntry::StrConst(i)) {
            g.str_const(i);
        }
    }

    let end = g.b.add(Type::I64, start, count);

    let header = g.b.create_block();
    let body = g.b.create_block();
    let latch = g.b.create_block();
    let exit = g.b.create_block();
    g.b.jump(header);

    g.b.switch_to(header);
    let i = g.b.phi(Type::I64, vec![(entry, start)]);
    let c = g.b.icmp(CmpOp::SLt, Type::I64, i, end);
    g.b.branch(c, body, exit);

    // Latch and exit can be completed immediately.
    g.b.switch_to(latch);
    let one = g.b.iconst(Type::I64, 1);
    let i2 = g.b.add(Type::I64, i, one);
    g.b.phi_add_incoming(i, latch, i2);
    g.b.jump(header);
    g.b.switch_to(exit);
    g.b.ret(None);

    // Body: bind source columns.
    g.b.switch_to(body);
    match &src {
        Src::Table {
            bases,
            filter,
            projected,
        } => {
            for (name, ty, base) in bases {
                let value = match ty {
                    ColumnType::I32 | ColumnType::Date => {
                        let a = g.b.gep_indexed(*base, 0, i, 4);
                        let v = g.b.load(Type::I32, a, 0);
                        g.b.sext(Type::I64, v)
                    }
                    ColumnType::I64 => {
                        let a = g.b.gep_indexed(*base, 0, i, 8);
                        g.b.load(Type::I64, a, 0)
                    }
                    ColumnType::Decimal(_) => {
                        let a = g.b.gep_indexed(*base, 0, i, 16);
                        g.b.load(Type::I128, a, 0)
                    }
                    ColumnType::F64 => {
                        let a = g.b.gep_indexed(*base, 0, i, 8);
                        g.b.load(Type::F64, a, 0)
                    }
                    ColumnType::Str => {
                        let a = g.b.gep_indexed(*base, 0, i, 16);
                        g.b.load(Type::String, a, 0)
                    }
                    ColumnType::Bool => {
                        let a = g.b.gep_indexed(*base, 0, i, 1);
                        g.b.load(Type::Bool, a, 0)
                    }
                };
                g.bind(name, value, *ty);
            }
            if let Some(f) = filter {
                let cond = g.eval(f);
                let pass = g.b.create_block();
                g.b.branch(cond.value, pass, latch);
                g.b.switch_to(pass);
            }
            // Non-projected (filter-only) columns stay bound; harmless.
            let _ = projected;
        }
        Src::Buffer {
            handle,
            layout,
            deref,
        } => {
            let cell = g
                .call_rt("rt_buf_row", vec![*handle, i])
                .expect("row pointer");
            let row = if *deref {
                g.b.load(Type::Ptr, cell, 0)
            } else {
                cell
            };
            for f in layout.fields.clone() {
                let b = g.load_field(row, layout, &f.name);
                g.bind(&f.name, b.value, b.ty);
            }
        }
    }

    // Streaming operators.
    let mut continue_target = latch;
    for op in &pipe.ops {
        match op {
            StreamOp::Filter(e) => {
                let cond = g.eval(e);
                let pass = g.b.create_block();
                g.b.branch(cond.value, pass, continue_target);
                g.b.switch_to(pass);
            }
            StreamOp::Map(items) => {
                for (name, ty, e) in items {
                    let v = g.eval(e);
                    debug_assert_eq!(ir_type(v.ty), ir_type(*ty));
                    g.bind(name, v.value, *ty);
                }
            }
            StreamOp::Probe {
                join_id,
                probe_keys,
                build_layout,
                carry,
            } => {
                let ht = probe_handles
                    .iter()
                    .find(|(id, _)| id == join_id)
                    .map(|&(_, h)| h)
                    .expect("hoisted probe handle");
                let keys: Vec<Binding> = probe_keys.iter().map(|k| g.lookup(k)).collect();
                let h = g.hash_keys(&keys);
                let e0 = g.call_rt("rt_ht_probe", vec![ht, h]).expect("entry ptr");

                let ph = g.b.create_block(); // probe header
                let pb = g.b.create_block(); // candidate check
                let pm = g.b.create_block(); // match
                let pl = g.b.create_block(); // probe latch
                let pred = g.b.current_block().expect("in block");
                g.b.jump(ph);

                g.b.switch_to(ph);
                let e = g.b.phi(Type::Ptr, vec![(pred, e0)]);
                let zero = g.b.iconst(Type::Ptr, 0);
                let nonzero = g.b.icmp(CmpOp::Ne, Type::Ptr, e, zero);
                g.b.branch(nonzero, pb, continue_target);

                // Latch now.
                g.b.switch_to(pl);
                let enext = g.b.load(Type::Ptr, e, 0);
                g.b.phi_add_incoming(e, pl, enext);
                g.b.jump(ph);

                // Candidate: hash field + key equality.
                g.b.switch_to(pb);
                let ehash = g.b.load(Type::I64, e, 8);
                let mut ok = g.b.icmp(CmpOp::Eq, Type::I64, ehash, h);
                let payload = g.b.gep(e, 16);
                for (bk, pk) in build_layout
                    .fields
                    .iter()
                    .take(probe_keys.len())
                    .map(|f| f.name.clone())
                    .collect::<Vec<_>>()
                    .iter()
                    .zip(probe_keys)
                {
                    let bv = g.load_field(payload, build_layout, bk);
                    let pv = g.lookup(pk);
                    let eqv = g.values_eq(pv, bv);
                    ok = g.bool_and(ok, eqv);
                }
                g.b.branch(ok, pm, pl);

                // Match: bind carried columns, continue pipeline inside.
                g.b.switch_to(pm);
                for (name, _ty) in carry {
                    let b = g.load_field(payload, build_layout, name);
                    g.bind(name, b.value, b.ty);
                }
                continue_target = pl;
            }
        }
    }

    // Sink.
    match &pipe.sink {
        Sink::Output { layout } | Sink::SortMaterialize { layout, .. } => {
            let buf = sink_handles[0];
            let row = g.call_rt("rt_buf_alloc", vec![buf]).expect("row");
            for f in layout.fields.clone() {
                let v = g.lookup(&f.name);
                g.store_field(row, layout, &f.name, v);
            }
        }
        Sink::JoinBuild { keys, layout, .. } => {
            let ht = sink_handles[0];
            let kb: Vec<Binding> = keys.iter().map(|k| g.lookup(k)).collect();
            let h = g.hash_keys(&kb);
            let size = g.b.iconst(Type::I64, layout.size as i128);
            let payload = g
                .call_rt("rt_ht_insert", vec![ht, h, size])
                .expect("payload");
            for f in layout.fields.clone() {
                let v = g.lookup(&f.name);
                g.store_field(payload, layout, &f.name, v);
            }
        }
        Sink::AggBuild {
            keys, aggs, layout, ..
        } => {
            gen_agg_sink(&mut g, &sink_handles, keys, aggs, layout, continue_target);
            // gen_agg_sink terminates all its blocks itself.
            module.push_function(g.b.finish());
            return;
        }
    }
    g.b.jump(continue_target);
    module.push_function(g.b.finish());
}

fn gen_agg_sink(
    g: &mut Gen,
    handles: &[Value],
    keys: &[String],
    aggs: &[(String, AggFunc)],
    layout: &RowLayout,
    continue_target: Block,
) {
    let (ht, groups) = (handles[0], handles[1]);
    let kb: Vec<Binding> = keys.iter().map(|k| g.lookup(k)).collect();
    let h = g.hash_keys(&kb);
    let e0 = g.call_rt("rt_ht_probe", vec![ht, h]).expect("entry");

    let ah = g.b.create_block(); // chain header
    let ab = g.b.create_block(); // candidate
    let upd = g.b.create_block(); // update existing group
    let al = g.b.create_block(); // chain latch
    let create = g.b.create_block(); // new group
    let pred = g.b.current_block().expect("in block");

    // Evaluate aggregate inputs once, up front (shared by both paths).
    let inputs: Vec<Option<Binding>> = aggs
        .iter()
        .map(|(_, a)| match a {
            AggFunc::CountStar => None,
            AggFunc::Sum(e) | AggFunc::Min(e) | AggFunc::Max(e) | AggFunc::Avg(e) => {
                Some(g.eval(e))
            }
        })
        .collect();

    g.b.jump(ah);
    g.b.switch_to(ah);
    let e = g.b.phi(Type::Ptr, vec![(pred, e0)]);
    let zero = g.b.iconst(Type::Ptr, 0);
    let nonzero = g.b.icmp(CmpOp::Ne, Type::Ptr, e, zero);
    g.b.branch(nonzero, ab, create);

    g.b.switch_to(al);
    let enext = g.b.load(Type::Ptr, e, 0);
    g.b.phi_add_incoming(e, al, enext);
    g.b.jump(ah);

    g.b.switch_to(ab);
    let ehash = g.b.load(Type::I64, e, 8);
    let mut ok = g.b.icmp(CmpOp::Eq, Type::I64, ehash, h);
    let payload = g.b.gep(e, 16);
    for (key, kv) in keys.iter().zip(&kb) {
        let gv = g.load_field(payload, layout, key);
        let eqv = g.values_eq(*kv, gv);
        ok = g.bool_and(ok, eqv);
    }
    g.b.branch(ok, upd, al);

    // Update path.
    g.b.switch_to(upd);
    for ((name, agg), input) in aggs.iter().zip(&inputs) {
        let state = format!("#{name}");
        match agg {
            AggFunc::CountStar => {
                let cur = g.load_field(payload, layout, &state);
                let one = g.b.iconst(Type::I64, 1);
                let n = g.b.add(Type::I64, cur.value, one);
                g.store_field(
                    payload,
                    layout,
                    &state,
                    Binding {
                        value: n,
                        ty: cur.ty,
                    },
                );
            }
            AggFunc::Sum(_) => {
                let v = input.expect("sum input");
                let cur = g.load_field(payload, layout, &state);
                let s = sum_update(g, cur, v);
                g.store_field(payload, layout, &state, s);
            }
            AggFunc::Min(_) | AggFunc::Max(_) => {
                let v = input.expect("minmax input");
                let cur = g.load_field(payload, layout, &state);
                let is_min = matches!(agg, AggFunc::Min(_));
                let sel = minmax_update(g, cur, v, is_min);
                g.store_field(payload, layout, &state, sel);
            }
            AggFunc::Avg(_) => {
                let v = input.expect("avg input");
                let cur = g.load_field(payload, layout, &state);
                let s = sum_update(g, cur, v);
                g.store_field(payload, layout, &state, s);
                let cnt_name = format!("#{name}_cnt");
                let cnt = g.load_field(payload, layout, &cnt_name);
                let one = g.b.iconst(Type::I64, 1);
                let n = g.b.add(Type::I64, cnt.value, one);
                g.store_field(
                    payload,
                    layout,
                    &cnt_name,
                    Binding {
                        value: n,
                        ty: cnt.ty,
                    },
                );
            }
        }
    }
    g.b.jump(continue_target);

    // Create path.
    g.b.switch_to(create);
    let size = g.b.iconst(Type::I64, layout.size as i128);
    let np = g
        .call_rt("rt_ht_insert", vec![ht, h, size])
        .expect("payload");
    for (key, kv) in keys.iter().zip(&kb) {
        g.store_field(np, layout, key, *kv);
    }
    for ((name, agg), input) in aggs.iter().zip(&inputs) {
        let state = format!("#{name}");
        match agg {
            AggFunc::CountStar => {
                let one = g.b.iconst(Type::I64, 1);
                g.store_field(
                    np,
                    layout,
                    &state,
                    Binding {
                        value: one,
                        ty: ColumnType::I64,
                    },
                );
            }
            AggFunc::Sum(_) | AggFunc::Min(_) | AggFunc::Max(_) => {
                let v = input.expect("agg input");
                let v = widen_to_state(g, v, layout, &state);
                g.store_field(np, layout, &state, v);
            }
            AggFunc::Avg(_) => {
                let v = input.expect("avg input");
                let v = widen_to_state(g, v, layout, &state);
                g.store_field(np, layout, &state, v);
                let one = g.b.iconst(Type::I64, 1);
                g.store_field(
                    np,
                    layout,
                    &format!("#{name}_cnt"),
                    Binding {
                        value: one,
                        ty: ColumnType::I64,
                    },
                );
            }
        }
    }
    // Register the group for scanning.
    let cell = g.call_rt("rt_buf_alloc", vec![groups]).expect("cell");
    g.b.store(Type::Ptr, cell, np, 0);
    g.b.jump(continue_target);
}

/// The aggregate input may be narrower than the state (I32 input, I64
/// state); env values are already widened, so this is a no-op guard.
fn widen_to_state(g: &mut Gen, v: Binding, layout: &RowLayout, state: &str) -> Binding {
    let f = layout.field(state).expect("state field");
    debug_assert_eq!(
        ir_type(v.ty),
        ir_type(f.ty),
        "state width mismatch for {state}"
    );
    let _ = g;
    Binding {
        value: v.value,
        ty: f.ty,
    }
}

fn sum_update(g: &mut Gen, cur: Binding, v: Binding) -> Binding {
    let value = match cur.ty {
        ColumnType::Decimal(_) => g.b.binary(Opcode::SAddTrap, Type::I128, cur.value, v.value),
        ColumnType::F64 => g.b.binary(Opcode::FAdd, Type::F64, cur.value, v.value),
        _ => g.b.binary(Opcode::SAddTrap, Type::I64, cur.value, v.value),
    };
    Binding { value, ty: cur.ty }
}

fn minmax_update(g: &mut Gen, cur: Binding, v: Binding, is_min: bool) -> Binding {
    let pred = if is_min { CmpOp::SLt } else { CmpOp::SGt };
    let (cond, ty) = match cur.ty {
        ColumnType::Decimal(_) => (g.b.icmp(pred, Type::I128, v.value, cur.value), Type::I128),
        ColumnType::F64 => (g.b.fcmp(pred, v.value, cur.value), Type::F64),
        _ => (g.b.icmp(pred, Type::I64, v.value, cur.value), Type::I64),
    };
    let value = g.b.select(ty, cond, v.value, cur.value);
    Binding { value, ty: cur.ty }
}
