//! Data-centric code generation: physical pipelines → SSA IR.
//!
//! Implements the paper's code-generation model (Sec. II–III): each
//! pipeline becomes one IR [`qc_ir::Module`] containing a `setup` function
//! (creates hash tables/buffers, storing handles into the query context),
//! a `main` function processing one morsel (`fn(ctx, start, count)` — the
//! tuple-at-a-time loop with operators applied in nested fashion), a
//! `finish` function (hash-table build / sort), and for sort pipelines a
//! comparator called back from the runtime.
//!
//! Hash sequences are emitted inline exactly as the runtime computes them
//! (two seeded `crc32` steps; `long-mul-fold` combining — paper Listing 2),
//! so generated code and runtime agree on every hash bit.

mod gen;

pub use gen::{generate, GeneratedQuery};

#[cfg(test)]
mod tests {
    use super::*;
    use qc_ir::verify_module;
    use qc_plan::{col, lit_dec, lit_i64, lit_str, AggFunc, PhysicalPlan, PlanNode};
    use qc_storage::ColumnType;

    fn catalog(name: &str) -> Option<Vec<(String, ColumnType)>> {
        match name {
            "fact" => Some(vec![
                ("k".into(), ColumnType::I64),
                ("d".into(), ColumnType::Date),
                ("v".into(), ColumnType::Decimal(2)),
                ("s".into(), ColumnType::Str),
                ("q".into(), ColumnType::I32),
                ("b".into(), ColumnType::Bool),
            ]),
            "dim" => Some(vec![
                ("k".into(), ColumnType::I64),
                ("label".into(), ColumnType::Str),
            ]),
            _ => None,
        }
    }

    fn gen(plan: &PlanNode) -> GeneratedQuery {
        let phys = PhysicalPlan::decompose(plan, &catalog).unwrap();
        let q = generate(&phys, "q");
        for m in &q.modules {
            verify_module(m).unwrap_or_else(|e| {
                panic!("{e}\n{}", qc_ir::print_module(m));
            });
        }
        q
    }

    #[test]
    fn scan_filter_output_verifies() {
        let p = PlanNode::scan("fact", &["k", "v"])
            .filter(col("k").gt(lit_i64(10)).and(col("v").lt(lit_dec(500, 2))));
        let q = gen(&p);
        assert_eq!(q.modules.len(), 1);
        let m = &q.modules[0];
        assert!(m.function_by_name("setup").is_some());
        assert!(m.function_by_name("main").is_some());
        assert!(m.function_by_name("finish").is_some());
    }

    #[test]
    fn all_column_types_load_and_store() {
        let p = PlanNode::scan("fact", &["k", "d", "v", "s", "q", "b"]);
        gen(&p);
    }

    #[test]
    fn join_produces_probe_loop() {
        let p = PlanNode::scan("fact", &["k", "v"]).hash_join(
            PlanNode::scan("dim", &["k", "label"]),
            &["k"],
            &["k"],
            &["label"],
        );
        let q = gen(&p);
        assert_eq!(q.modules.len(), 2);
        // Probe main must contain crc32 hashing and a probe call.
        let main = q.modules[1].function_by_name("main").unwrap().1;
        let text = qc_ir::print_function(main);
        assert!(text.contains("crc32"), "{text}");
        assert!(text.contains("rt_ht_probe"), "{text}");
    }

    #[test]
    fn string_key_joins_use_runtime_hash() {
        let p = PlanNode::scan("fact", &["k", "s"]).hash_join(
            PlanNode::scan("dim", &["label", "k"]),
            &["s"],
            &["label"],
            &["k"],
        );
        // payload `k` collides with probe scope -> dedup keeps probe k.
        let phys = PhysicalPlan::decompose(&p, &catalog);
        assert!(phys.is_ok());
        let q = generate(&phys.unwrap(), "q");
        let text = qc_ir::print_module(&q.modules[1]);
        assert!(text.contains("rt_str_hash"), "{text}");
        assert!(text.contains("rt_str_eq"), "{text}");
    }

    #[test]
    fn group_by_generates_update_and_create_paths() {
        let p = PlanNode::scan("fact", &["s", "v", "k"]).group_by(
            &["s"],
            vec![
                ("n", AggFunc::CountStar),
                ("total", AggFunc::Sum(col("v"))),
                ("hi", AggFunc::Max(col("k"))),
                ("avg_v", AggFunc::Avg(col("v"))),
            ],
        );
        let q = gen(&p);
        assert_eq!(q.modules.len(), 2);
        let text = qc_ir::print_module(&q.modules[0]);
        assert!(text.contains("rt_ht_insert"), "{text}");
        assert!(text.contains("saddtrap i128"), "{text}");
    }

    #[test]
    fn sort_pipeline_has_comparator() {
        let p = PlanNode::scan("fact", &["k", "v", "s"])
            .sort(&[("v", false), ("s", true), ("k", true)], Some(5));
        let q = gen(&p);
        assert_eq!(q.modules.len(), 2);
        let m = &q.modules[0];
        let (_, cmp) = m.function_by_name("cmp0").expect("comparator exists");
        assert_eq!(cmp.sig.params.len(), 2);
        let text = qc_ir::print_module(m);
        assert!(text.contains("rt_sort"), "{text}");
        assert!(text.contains("funcaddr"), "{text}");
        assert!(text.contains("rt_str_lt"), "{text}");
    }

    #[test]
    fn string_literals_load_from_context() {
        let p = PlanNode::scan("fact", &["s"]).filter(col("s").starts_with(lit_str("abc")));
        let q = gen(&p);
        let text = qc_ir::print_module(&q.modules[0]);
        assert!(text.contains("rt_str_prefix"), "{text}");
        assert!(text.contains("load string"), "{text}");
    }

    #[test]
    fn decimal_division_prescales() {
        let p = PlanNode::scan("fact", &["v"]).map(vec![("r", col("v").div(lit_dec(300, 2)))]);
        let q = gen(&p);
        let text = qc_ir::print_module(&q.modules[0]);
        assert!(text.contains("smultrap i128"), "{text}");
        assert!(text.contains("sdiv i128"), "{text}");
    }
}
