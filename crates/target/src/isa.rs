//! Register classes, operation enums, memory operands, and the per-ISA
//! ABI description shared by every back-end.
//!
//! The two ISAs are the paper's synthetic stand-ins for x86-64 and
//! AArch64 (Sec. II): **TX64** is CISC-ish (two-address ALU ops,
//! condition flags, variable-length encoding, 16 general registers) and
//! **TA64** is RISC (three-address, fixed 4-byte words, 30 general
//! registers, 5-bit register fields). Both share one register model so
//! compiled results are ISA-independent.

use std::fmt;

/// A general-purpose register. `Reg(n)` prints as `r{n}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct Reg(pub u8);

impl Reg {
    /// The register number, as used in assembly text (`r{num}`).
    pub fn num(self) -> u8 {
        self.0
    }

    /// The register number widened for array indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for Reg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "r{}", self.0)
    }
}

/// A floating-point register (64-bit IEEE double). Prints as `f{n}`.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct FReg(pub u8);

impl FReg {
    /// The register number, as used in assembly text (`f{num}`).
    pub fn num(self) -> u8 {
        self.0
    }

    /// The register number widened for array indexing.
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Display for FReg {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "f{}", self.0)
    }
}

/// Operation width for integer instructions. Results are always stored
/// zero-extended to 64 bits (the canonical register form).
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Width {
    /// 8-bit operation.
    W8,
    /// 16-bit operation.
    W16,
    /// 32-bit operation.
    W32,
    /// 64-bit operation.
    W64,
}

impl Width {
    /// Number of bits this width covers.
    pub fn bits(self) -> u32 {
        match self {
            Width::W8 => 8,
            Width::W16 => 16,
            Width::W32 => 32,
            Width::W64 => 64,
        }
    }

    /// Number of bytes this width covers.
    pub fn bytes(self) -> usize {
        (self.bits() / 8) as usize
    }

    /// All-ones mask covering the width.
    pub fn mask(self) -> u64 {
        match self {
            Width::W64 => u64::MAX,
            w => (1u64 << w.bits()) - 1,
        }
    }

    pub(crate) fn code(self) -> u8 {
        match self {
            Width::W8 => 0,
            Width::W16 => 1,
            Width::W32 => 2,
            Width::W64 => 3,
        }
    }

    pub(crate) fn from_code(c: u8) -> Width {
        match c & 3 {
            0 => Width::W8,
            1 => Width::W16,
            2 => Width::W32,
            _ => Width::W64,
        }
    }
}

/// Integer ALU operations. On TX64 the machine form is two-address
/// (`dst op= src`); on TA64 it is three-address.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum AluOp {
    /// Wrapping addition.
    Add,
    /// Wrapping subtraction.
    Sub,
    /// Add with carry-in (for 128-bit sequences).
    Adc,
    /// Subtract with borrow-in (for 128-bit sequences).
    Sbb,
    /// Wrapping multiplication (`set_flags` reports signed overflow in
    /// the O flag).
    Mul,
    /// Bitwise AND.
    And,
    /// Bitwise OR.
    Or,
    /// Bitwise XOR.
    Xor,
    /// Shift left (amount masked by `bits - 1`).
    Shl,
    /// Logical shift right.
    Shr,
    /// Arithmetic shift right.
    Sar,
    /// Rotate right within the operation width.
    Rotr,
}

impl AluOp {
    pub(crate) fn code(self) -> u8 {
        match self {
            AluOp::Add => 0,
            AluOp::Sub => 1,
            AluOp::Adc => 2,
            AluOp::Sbb => 3,
            AluOp::Mul => 4,
            AluOp::And => 5,
            AluOp::Or => 6,
            AluOp::Xor => 7,
            AluOp::Shl => 8,
            AluOp::Shr => 9,
            AluOp::Sar => 10,
            AluOp::Rotr => 11,
        }
    }

    pub(crate) fn from_code(c: u8) -> Option<AluOp> {
        Some(match c {
            0 => AluOp::Add,
            1 => AluOp::Sub,
            2 => AluOp::Adc,
            3 => AluOp::Sbb,
            4 => AluOp::Mul,
            5 => AluOp::And,
            6 => AluOp::Or,
            7 => AluOp::Xor,
            8 => AluOp::Shl,
            9 => AluOp::Shr,
            10 => AluOp::Sar,
            11 => AluOp::Rotr,
            _ => return None,
        })
    }
}

/// Floating-point ALU operations (all on 64-bit doubles).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum FaluOp {
    /// IEEE addition.
    Add,
    /// IEEE subtraction.
    Sub,
    /// IEEE multiplication.
    Mul,
    /// IEEE division.
    Div,
}

impl FaluOp {
    pub(crate) fn code(self) -> u8 {
        match self {
            FaluOp::Add => 0,
            FaluOp::Sub => 1,
            FaluOp::Mul => 2,
            FaluOp::Div => 3,
        }
    }

    pub(crate) fn from_code(c: u8) -> Option<FaluOp> {
        Some(match c {
            0 => FaluOp::Add,
            1 => FaluOp::Sub,
            2 => FaluOp::Mul,
            3 => FaluOp::Div,
            _ => return None,
        })
    }
}

/// Branch/set conditions evaluated against the flags register.
///
/// `Eq/Ne/Lt/Le/Gt/Ge` are the signed relations, `B/Be/A/Ae` the
/// unsigned ones (below/above), `O/No` test the overflow flag. After an
/// `fcmp` of unordered operands (NaN) only `Ne` holds.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Cond {
    /// Equal (ZF).
    Eq,
    /// Not equal (!ZF).
    Ne,
    /// Signed less-than (SF != OF).
    Lt,
    /// Signed less-or-equal.
    Le,
    /// Signed greater-than.
    Gt,
    /// Signed greater-or-equal.
    Ge,
    /// Unsigned below (CF).
    B,
    /// Unsigned below-or-equal.
    Be,
    /// Unsigned above.
    A,
    /// Unsigned above-or-equal (!CF).
    Ae,
    /// Overflow set.
    O,
    /// Overflow clear.
    No,
}

impl Cond {
    /// The complementary condition (`negated(c)` is true iff `c` is
    /// false for any flags state, including unordered float flags).
    pub fn negated(self) -> Cond {
        match self {
            Cond::Eq => Cond::Ne,
            Cond::Ne => Cond::Eq,
            Cond::Lt => Cond::Ge,
            Cond::Ge => Cond::Lt,
            Cond::Le => Cond::Gt,
            Cond::Gt => Cond::Le,
            Cond::B => Cond::Ae,
            Cond::Ae => Cond::B,
            Cond::Be => Cond::A,
            Cond::A => Cond::Be,
            Cond::O => Cond::No,
            Cond::No => Cond::O,
        }
    }

    pub(crate) fn code(self) -> u8 {
        match self {
            Cond::Eq => 0,
            Cond::Ne => 1,
            Cond::Lt => 2,
            Cond::Le => 3,
            Cond::Gt => 4,
            Cond::Ge => 5,
            Cond::B => 6,
            Cond::Be => 7,
            Cond::A => 8,
            Cond::Ae => 9,
            Cond::O => 10,
            Cond::No => 11,
        }
    }

    pub(crate) fn from_code(c: u8) -> Option<Cond> {
        Some(match c {
            0 => Cond::Eq,
            1 => Cond::Ne,
            2 => Cond::Lt,
            3 => Cond::Le,
            4 => Cond::Gt,
            5 => Cond::Ge,
            6 => Cond::B,
            7 => Cond::Be,
            8 => Cond::A,
            9 => Cond::Ae,
            10 => Cond::O,
            11 => Cond::No,
            _ => return None,
        })
    }
}

/// A memory operand: `[base + index*scale + disp]`.
///
/// TX64 supports the full form natively; the TA64 macro-assembler
/// lowers indexed or large-displacement forms to address arithmetic in
/// its reserved scratch registers.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct MemArg {
    /// Base register.
    pub base: Reg,
    /// Optional `(index, scale)`; scale is 1, 2, 4, or 8.
    pub index: Option<(Reg, u8)>,
    /// Byte displacement, sign-extended.
    pub disp: i32,
}

impl MemArg {
    /// A base-plus-displacement operand with no index.
    pub fn base_disp(base: Reg, disp: i32) -> MemArg {
        MemArg {
            base,
            index: None,
            disp,
        }
    }
}

/// The calling convention and register-class description of an ISA.
///
/// Arguments are passed in `arg_regs`; further 64-bit slots are read
/// from `[sp + 8*(i - arg_regs.len())]` at function entry (the emulator
/// keeps return addresses on a shadow stack, so no slot is skipped).
/// Results come back in `ret` / `ret_hi` (or `fret` for floats).
#[derive(Clone, Copy, Debug)]
pub struct Abi {
    /// Stack pointer (grows down, 16-byte aligned at entry).
    pub sp: Reg,
    /// Permanently reserved scratch register, clobbered by
    /// macro-instruction expansions and linker thunks; never
    /// allocatable and dead across every call boundary.
    pub scratch: Reg,
    /// Integer argument registers, in order.
    pub arg_regs: &'static [Reg],
    /// First (low) integer return register.
    pub ret: Reg,
    /// Second (high) integer return register, for 128-bit results.
    pub ret_hi: Reg,
    /// Registers a register allocator may use. Includes the emission
    /// scratches (the shared emitter excludes those itself).
    pub allocatable: &'static [Reg],
    /// Subset of `allocatable` preserved across calls.
    pub callee_saved: &'static [Reg],
    /// Float return register.
    pub fret: FReg,
    /// Reserved float scratch register (spill traffic), never
    /// allocatable.
    pub fscratch: FReg,
    /// Float registers a register allocator may use.
    pub fallocatable: &'static [FReg],
}

const fn regs<const N: usize>(start: u8) -> [Reg; N] {
    let mut out = [Reg(0); N];
    let mut i = 0;
    while i < N {
        out[i] = Reg(start + i as u8);
        i += 1;
    }
    out
}

const fn fregs<const N: usize>(start: u8) -> [FReg; N] {
    let mut out = [FReg(0); N];
    let mut i = 0;
    while i < N {
        out[i] = FReg(start + i as u8);
        i += 1;
    }
    out
}

static TX64_ARGS: [Reg; 8] = regs::<8>(0);
static TX64_ALLOC: [Reg; 14] = regs::<14>(0);
static TX64_CALLEE: [Reg; 3] = regs::<3>(11);
static TX64_FALLOC: [FReg; 15] = fregs::<15>(0);

/// The TX64 ABI: 16 GPRs, `sp = r15`, reserved scratch `r14`,
/// args in `r0..r7`, results in `r0`/`r1`, callee-saved `r11..r13`,
/// 16 FP registers with `f15` as the reserved float scratch.
pub static TX64_ABI: Abi = Abi {
    sp: Reg(15),
    scratch: Reg(14),
    arg_regs: &TX64_ARGS,
    ret: Reg(0),
    ret_hi: Reg(1),
    allocatable: &TX64_ALLOC,
    callee_saved: &TX64_CALLEE,
    fret: FReg(0),
    fscratch: FReg(15),
    fallocatable: &TX64_FALLOC,
};

static TA64_ARGS: [Reg; 8] = regs::<8>(0);
static TA64_ALLOC: [Reg; 26] = regs::<26>(0);
static TA64_CALLEE: [Reg; 9] = regs::<9>(17);
static TA64_FALLOC: [FReg; 15] = fregs::<15>(0);

/// The TA64 ABI: 30 GPRs, `sp = r29`, reserved scratch `r28` (plus
/// `r26`/`r27` as internal macro-expansion temporaries), args in
/// `r0..r7`, results in `r0`/`r1`, callee-saved `r17..r25`.
pub static TA64_ABI: Abi = Abi {
    sp: Reg(29),
    scratch: Reg(28),
    arg_regs: &TA64_ARGS,
    ret: Reg(0),
    ret_hi: Reg(1),
    allocatable: &TA64_ALLOC,
    callee_saved: &TA64_CALLEE,
    fret: FReg(0),
    fscratch: FReg(15),
    fallocatable: &TA64_FALLOC,
};

/// The two synthetic instruction-set architectures of the paper.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Isa {
    /// CISC-style: two-address ops, flags, variable-length encoding,
    /// 16 general-purpose registers.
    Tx64,
    /// RISC-style: three-address ops, fixed 4-byte words, 30
    /// general-purpose registers, ±1 MiB direct branch range.
    Ta64,
}

impl Isa {
    /// The ABI description for this ISA.
    pub fn abi(self) -> &'static Abi {
        match self {
            Isa::Tx64 => &TX64_ABI,
            Isa::Ta64 => &TA64_ABI,
        }
    }

    /// Whether machine ALU instructions are two-address (`dst op= src`).
    /// True for TX64; register allocators insert the extra moves.
    pub fn is_two_address(self) -> bool {
        match self {
            Isa::Tx64 => true,
            Isa::Ta64 => false,
        }
    }

    /// Stable lower-case identifier, usable as a cache or report key.
    pub fn name(self) -> &'static str {
        match self {
            Isa::Tx64 => "tx64",
            Isa::Ta64 => "ta64",
        }
    }
}

impl fmt::Display for Isa {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Isa::Tx64 => write!(f, "TX64"),
            Isa::Ta64 => write!(f, "TA64"),
        }
    }
}
