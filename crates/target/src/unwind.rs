//! Unwind metadata: the DWARF-CFI stand-in that back-ends must emit
//! for every function with calls (paper Sec. III-A).
//!
//! The paper measures unwind-table *generation* cost, not actual
//! unwinding, so entries here carry just enough to be checkable: the
//! covered code range, the fixed frame size, and whether the entry is
//! synchronous-only (the cheaper DirectEmit flavour, Sec. VII-A2).

use crate::image::CodeImage;

/// Unwind description of one function (fixed-size frame model).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct UnwindEntry {
    /// Start of the covered range, in bytes from the function start.
    pub start: usize,
    /// End (exclusive) of the covered range.
    pub end: usize,
    /// Fixed frame size in bytes (`sp` at entry minus `sp` in the
    /// body).
    pub frame_size: u32,
    /// Whether the entry is valid only at call sites (synchronous
    /// unwinding, the DirectEmit simplification) rather than at every
    /// instruction.
    pub synchronous_only: bool,
}

/// A process-wide registry mapping absolute addresses to the
/// [`UnwindEntry`] covering them, mirroring `__register_frame`-style
/// JIT unwind registration.
#[derive(Debug, Default)]
pub struct UnwindRegistry {
    // (absolute start, absolute end, entry), sorted by start.
    ranges: Vec<(u64, u64, UnwindEntry)>,
}

impl UnwindRegistry {
    /// Creates an empty registry.
    pub fn new() -> UnwindRegistry {
        UnwindRegistry::default()
    }

    /// Registers every unwind entry of a linked image at its absolute
    /// load address.
    pub fn register_image(&mut self, image: &CodeImage) {
        for &(off, entry) in image.unwind_entries() {
            let base = image.base() + off;
            self.ranges
                .push((base + entry.start as u64, base + entry.end as u64, entry));
        }
        self.ranges.sort_by_key(|&(start, _, _)| start);
    }

    /// Looks up the entry covering an absolute address.
    pub fn lookup(&self, addr: u64) -> Option<&UnwindEntry> {
        let idx = self.ranges.partition_point(|&(start, _, _)| start <= addr);
        let &(start, end, ref entry) = self.ranges[..idx].last()?;
        (addr >= start && addr < end).then_some(entry)
    }

    /// Number of registered entries.
    pub fn len(&self) -> usize {
        self.ranges.len()
    }

    /// Whether the registry is empty.
    pub fn is_empty(&self) -> bool {
        self.ranges.is_empty()
    }
}
