//! The deterministic emulator and its cycle model.
//!
//! Compiled code never runs on the real CPU: the emulator interprets
//! the linked [`CodeImage`] instruction by instruction, charging each
//! one a fixed cost so that reported cycle counts are exactly
//! reproducible across runs and machines (the paper's measurements
//! need a stable denominator).
//!
//! Execution model:
//!
//! * **Registers** are 64-bit and canonical: narrow operations store
//!   their result zero-extended, matching the interpreter tier
//!   bit-for-bit so tiers can be swapped mid-query.
//! * **Memory is host memory.** Loads and stores go straight through
//!   raw pointers (guarded against the null page), so compiled code,
//!   the interpreter tier, and the runtime share data structures by
//!   passing real addresses. The emulated stack is a heap buffer whose
//!   top is handed to the code in the ABI's stack-pointer register.
//! * **Return addresses live on a shadow call stack** inside the
//!   emulator, never in emulated memory — `call` pushes, `ret` pops,
//!   and stack smashes cannot redirect control.
//! * **Runtime helpers** occupy reserved virtual addresses
//!   ([`runtime_addr`]). A `call`/`callind` landing in that range is
//!   dispatched to the host through [`RuntimeDispatch`]; the host can
//!   re-enter compiled code through [`Reentry`]. Control never falls
//!   into the runtime range other than by a call.

use crate::decode::{decode_inst, DecodedInst};
use crate::image::CodeImage;
use crate::isa::{AluOp, Cond, FaluOp, MemArg, Width};
use std::fmt;

/// Fixed cycle cost of crossing the code/runtime boundary, charged per
/// runtime helper call on top of the helper's own modeled cost. The
/// interpreter tier charges the same constant so tier comparisons are
/// apples-to-apples.
pub const CALL_DISPATCH_COST: u64 = 20;

/// Base of the reserved virtual address range for runtime helpers.
const RUNTIME_BASE: u64 = 0x7254_0000_0000;
/// Address stride between runtime helper slots.
const RUNTIME_SLOT: u64 = 16;
/// Number of addressable runtime helper slots.
const RUNTIME_MAX: u64 = 1 << 16;

/// The reserved virtual address of runtime helper `index`, for linker
/// resolvers. The emulator recognizes these addresses at call sites and
/// dispatches to the host instead of fetching.
pub fn runtime_addr(index: usize) -> u64 {
    RUNTIME_BASE + index as u64 * RUNTIME_SLOT
}

/// Reverse of [`runtime_addr`]: the helper index if `addr` is a slot
/// address in the runtime range.
fn runtime_index(addr: u64) -> Option<usize> {
    if (RUNTIME_BASE..RUNTIME_BASE + RUNTIME_MAX * RUNTIME_SLOT).contains(&addr)
        && (addr - RUNTIME_BASE).is_multiple_of(RUNTIME_SLOT)
    {
        Some(((addr - RUNTIME_BASE) / RUNTIME_SLOT) as usize)
    } else {
        None
    }
}

/// A fault raised by emulated code (or by a runtime helper).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Trap {
    /// Signed arithmetic overflow (trapping ops, division overflow,
    /// float-to-int out of range).
    Overflow,
    /// Division or remainder by zero.
    DivByZero,
    /// Control transfer to an address that is neither in the image nor
    /// a runtime helper slot.
    BadJump(u64),
    /// Memory access to a guarded address (the null page).
    BadAccess(u64),
    /// An `unreachable` marker was executed.
    Unreachable,
    /// The fuel budget ([`EmuOptions::fuel`]) was exhausted.
    Fuel,
    /// A runtime-helper-defined error code.
    Runtime(u8),
}

impl fmt::Display for Trap {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Trap::Overflow => write!(f, "signed overflow"),
            Trap::DivByZero => write!(f, "division by zero"),
            Trap::BadJump(a) => write!(f, "bad jump target {a:#x}"),
            Trap::BadAccess(a) => write!(f, "bad memory access at {a:#x}"),
            Trap::Unreachable => write!(f, "unreachable executed"),
            Trap::Fuel => write!(f, "fuel exhausted"),
            Trap::Runtime(c) => write!(f, "runtime error {c}"),
        }
    }
}

impl std::error::Error for Trap {}

/// Deterministic execution counters, accumulated across calls.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ExecStats {
    /// Modeled cycles: per-instruction costs plus runtime helper costs.
    pub cycles: u64,
    /// Machine instructions executed (runtime helper calls count as
    /// one).
    pub insts: u64,
}

/// Emulator configuration.
#[derive(Clone, Copy, Debug)]
pub struct EmuOptions {
    /// Maximum instructions per top-level [`Emulator::call`] (guards
    /// against miscompiled infinite loops). Exhaustion raises
    /// [`Trap::Fuel`].
    pub fuel: u64,
    /// Size in bytes of the emulated stack.
    pub stack_size: usize,
}

impl Default for EmuOptions {
    fn default() -> EmuOptions {
        EmuOptions {
            fuel: u64::MAX,
            stack_size: 1 << 20,
        }
    }
}

/// The host side of the code/runtime boundary: maps helper indices to
/// argument counts, models their cost, and executes them.
pub trait RuntimeDispatch {
    /// Number of 64-bit argument slots helper `index` consumes.
    fn arg_slots(&self, index: usize) -> usize;

    /// Modeled cycle cost of helper `index` with `args` (charged in
    /// addition to [`CALL_DISPATCH_COST`]). Must be deterministic.
    fn runtime_cost(&self, index: usize, args: &[u64]) -> u64;

    /// Executes helper `index`. `reentry` lets the helper call back
    /// into compiled code (function-pointer arguments such as
    /// comparators).
    fn call_runtime(
        &mut self,
        index: usize,
        args: &[u64],
        reentry: Reentry<'_>,
    ) -> Result<[u64; 2], Trap>;
}

/// A capability handed to [`RuntimeDispatch::call_runtime`] that lets a
/// runtime helper call back into compiled code mid-dispatch.
pub struct Reentry<'a> {
    emu: &'a mut Emulator,
}

impl Reentry<'_> {
    /// Calls the compiled function at absolute address `addr` with
    /// `args`, returning its first result register. The interrupted
    /// activation's register file is saved and restored around the
    /// nested one; the nested activation runs on the same stack, below
    /// the current stack pointer, and shares the outer fuel budget.
    ///
    /// # Errors
    /// Returns whatever [`Trap`] the nested code raises.
    pub fn call(
        &mut self,
        host: &mut dyn RuntimeDispatch,
        addr: u64,
        args: &[u64],
    ) -> Result<u64, Trap> {
        let emu = &mut *self.emu;
        let saved_regs = emu.regs;
        let saved_fregs = emu.fregs;
        let saved_flags = emu.flags;
        let sp = emu.regs[emu.image.isa().abi().sp.index()];
        let r = emu.run_activation(host, addr, args, sp);
        emu.regs = saved_regs;
        emu.fregs = saved_fregs;
        emu.flags = saved_flags;
        r.map(|rv| rv[0])
    }
}

/// Condition-flag state (`unordered` is set by `fcmp` on NaN operands;
/// while set, only [`Cond::Ne`] evaluates true).
#[derive(Clone, Copy, Debug, Default)]
struct Flags {
    zf: bool,
    sf: bool,
    of: bool,
    cf: bool,
    unordered: bool,
}

fn eval_cond(c: Cond, f: Flags) -> bool {
    if f.unordered {
        return matches!(c, Cond::Ne);
    }
    match c {
        Cond::Eq => f.zf,
        Cond::Ne => !f.zf,
        Cond::Lt => f.sf != f.of,
        Cond::Le => f.zf || f.sf != f.of,
        Cond::Gt => !f.zf && f.sf == f.of,
        Cond::Ge => f.sf == f.of,
        Cond::B => f.cf,
        Cond::Be => f.cf || f.zf,
        Cond::A => !f.cf && !f.zf,
        Cond::Ae => !f.cf,
        Cond::O => f.of,
        Cond::No => !f.of,
    }
}

fn sext(v: u64, w: Width) -> i64 {
    let bits = w.bits();
    ((v << (64 - bits)) as i64) >> (64 - bits)
}

fn read_mem(addr: u64, w: Width) -> Result<u64, Trap> {
    if addr < 0x10000 {
        return Err(Trap::BadAccess(addr));
    }
    // SAFETY: host-memory execution model (shared with the interpreter
    // tier): emulated code addresses real allocations — the emulated
    // stack, the linked image, and runtime-owned buffers.
    unsafe {
        Ok(match w {
            Width::W8 => std::ptr::read_unaligned(addr as *const u8) as u64,
            Width::W16 => std::ptr::read_unaligned(addr as *const u16) as u64,
            Width::W32 => std::ptr::read_unaligned(addr as *const u32) as u64,
            Width::W64 => std::ptr::read_unaligned(addr as *const u64),
        })
    }
}

fn write_mem(addr: u64, w: Width, v: u64) -> Result<(), Trap> {
    if addr < 0x10000 {
        return Err(Trap::BadAccess(addr));
    }
    // SAFETY: see `read_mem`.
    unsafe {
        match w {
            Width::W8 => std::ptr::write_unaligned(addr as *mut u8, v as u8),
            Width::W16 => std::ptr::write_unaligned(addr as *mut u16, v as u16),
            Width::W32 => std::ptr::write_unaligned(addr as *mut u32, v as u32),
            Width::W64 => std::ptr::write_unaligned(addr as *mut u64, v),
        }
    }
    Ok(())
}

/// Deterministic per-instruction cycle cost (Table III's machine-code
/// row; loads are slower than stores, division dominates).
fn inst_cost(inst: &DecodedInst) -> u64 {
    use DecodedInst as I;
    match inst {
        I::Nop | I::MovRR { .. } | I::MovRI { .. } | I::MovK { .. } => 1,
        I::Alu { op: AluOp::Mul, .. } | I::AluImm { op: AluOp::Mul, .. } => 3,
        I::Alu { .. } | I::AluImm { .. } => 1,
        I::MulFull { .. } => 4,
        I::Crc32 { .. } => 1,
        I::Div { .. } => 25,
        I::Sext { .. } | I::Lea { .. } => 1,
        I::Load { .. } | I::FLoad { .. } | I::Pop { .. } => 4,
        I::Store { .. } | I::FStore { .. } | I::Push { .. } => 2,
        I::Cmp { .. } | I::CmpImm { .. } | I::SetCc { .. } => 1,
        I::Jcc { .. } | I::Jmp { .. } | I::JmpInd { .. } => 1,
        I::Call { .. } | I::CallInd { .. } | I::Ret => 2,
        I::Falu {
            op: FaluOp::Div, ..
        } => 10,
        I::Falu { .. } => 2,
        I::FCmp { .. } | I::FMov { .. } | I::FMovFromGpr { .. } | I::FMovToGpr { .. } => 1,
        I::CvtSiToF { .. } | I::CvtFToSi { .. } => 3,
        I::Trap { .. } => 1,
    }
}

/// Executes linked machine code under the deterministic cycle model.
#[derive(Debug)]
pub struct Emulator {
    image: CodeImage,
    opts: EmuOptions,
    stats: ExecStats,
    stack: Vec<u8>,
    regs: [u64; 32],
    // f64 bit patterns
    fregs: [u64; 16],
    flags: Flags,
    fuel: u64,
}

impl Emulator {
    /// Creates an emulator for `image` with default options.
    pub fn new(image: CodeImage) -> Emulator {
        Emulator::with_options(image, EmuOptions::default())
    }

    /// Creates an emulator with explicit fuel and stack limits.
    pub fn with_options(image: CodeImage, opts: EmuOptions) -> Emulator {
        Emulator {
            image,
            opts,
            stats: ExecStats::default(),
            stack: vec![0u8; opts.stack_size.max(64)],
            regs: [0; 32],
            fregs: [0; 16],
            flags: Flags::default(),
            fuel: 0,
        }
    }

    /// The linked image being executed.
    pub fn image(&self) -> &CodeImage {
        &self.image
    }

    /// Execution counters accumulated over all calls so far.
    pub fn stats(&self) -> ExecStats {
        self.stats
    }

    /// Calls function `name` with 64-bit argument slots, returning the
    /// two ABI result registers. Resets the register file and the fuel
    /// budget, then runs to the entry function's `ret`.
    ///
    /// # Errors
    /// [`Trap::BadJump`]`(0)` if `name` is not defined in the image;
    /// otherwise whatever the code raises.
    pub fn call(
        &mut self,
        host: &mut dyn RuntimeDispatch,
        name: &str,
        args: &[u64],
    ) -> Result<[u64; 2], Trap> {
        let entry = self.image.addr_of(name).ok_or(Trap::BadJump(0))?;
        self.fuel = self.opts.fuel;
        self.regs = [0; 32];
        self.fregs = [0; 16];
        self.flags = Flags::default();
        let top = self.stack.as_ptr() as u64 + self.stack.len() as u64;
        self.run_activation(host, entry, args, top & !15)
    }

    /// Sets up the ABI state for one activation (argument registers,
    /// stack arguments below `sp`) and runs it to completion.
    fn run_activation(
        &mut self,
        host: &mut dyn RuntimeDispatch,
        entry: u64,
        args: &[u64],
        sp: u64,
    ) -> Result<[u64; 2], Trap> {
        let abi = self.image.isa().abi();
        let nreg = abi.arg_regs.len();
        let mut sp = sp;
        if args.len() > nreg {
            let extra = args.len() - nreg;
            sp -= ((extra * 8 + 15) & !15) as u64;
            for (i, &a) in args[nreg..].iter().enumerate() {
                write_mem(sp + 8 * i as u64, Width::W64, a)?;
            }
        }
        for (i, &a) in args.iter().take(nreg).enumerate() {
            self.regs[abi.arg_regs[i].index()] = a;
        }
        self.regs[abi.sp.index()] = sp;
        self.exec(host, entry)?;
        Ok([self.regs[abi.ret.index()], self.regs[abi.ret_hi.index()]])
    }

    /// The fetch/decode/execute loop for one activation. Returns when
    /// a `ret` executes with this activation's shadow stack empty.
    fn exec(&mut self, host: &mut dyn RuntimeDispatch, entry: u64) -> Result<(), Trap> {
        use DecodedInst as I;
        let isa = self.image.isa();
        let abi = isa.abi();
        let base = self.image.base();
        let mut pc = entry;
        let mut shadow: Vec<u64> = Vec::new();
        loop {
            let off = pc.wrapping_sub(base);
            if off >= self.image.len() as u64 {
                return Err(Trap::BadJump(pc));
            }
            if self.fuel == 0 {
                return Err(Trap::Fuel);
            }
            self.fuel -= 1;
            let (inst, len) = decode_inst(isa, self.image.bytes(), off as usize)
                .map_err(|_| Trap::BadJump(pc))?;
            let next = pc + len as u64;
            self.stats.insts += 1;
            self.stats.cycles += inst_cost(&inst);
            pc = next;
            match inst {
                I::Nop => {}
                I::MovRR { dst, src } => self.regs[dst.index()] = self.regs[src.index()],
                I::MovRI { dst, imm } => self.regs[dst.index()] = imm as u64,
                I::MovK { dst, imm16, shift } => {
                    let sh = 16 * (shift as u32 & 3);
                    let r = &mut self.regs[dst.index()];
                    *r = (*r & !(0xFFFFu64 << sh)) | (imm16 as u64) << sh;
                }
                I::Alu {
                    op,
                    width,
                    set_flags,
                    dst,
                    src1,
                    src2,
                } => {
                    let (x, y) = (self.regs[src1.index()], self.regs[src2.index()]);
                    self.regs[dst.index()] = self.alu(op, width, set_flags, x, y)?;
                }
                I::AluImm {
                    op,
                    width,
                    set_flags,
                    dst,
                    src1,
                    imm,
                } => {
                    let x = self.regs[src1.index()];
                    self.regs[dst.index()] = self.alu(op, width, set_flags, x, imm as u64)?;
                }
                I::MulFull {
                    dst_lo,
                    dst_hi,
                    a,
                    b,
                } => {
                    let p = (self.regs[a.index()] as u128) * (self.regs[b.index()] as u128);
                    self.regs[dst_lo.index()] = p as u64;
                    self.regs[dst_hi.index()] = (p >> 64) as u64;
                }
                I::Crc32 { dst, acc, data } => {
                    self.regs[dst.index()] =
                        crate::hash::crc32c_u64(self.regs[acc.index()], self.regs[data.index()]);
                }
                I::Div {
                    signed,
                    rem,
                    width,
                    dst,
                    a,
                    b,
                } => {
                    let (x, y) = (self.regs[a.index()], self.regs[b.index()]);
                    self.regs[dst.index()] = div(signed, rem, width, x, y)?;
                }
                I::Sext { from, dst, src } => {
                    self.regs[dst.index()] = sext(self.regs[src.index()], from) as u64;
                }
                I::Load { width, dst, mem } => {
                    self.regs[dst.index()] = read_mem(self.addr(mem), width)?;
                }
                I::Store { width, src, mem } => {
                    write_mem(self.addr(mem), width, self.regs[src.index()])?;
                }
                I::Lea { dst, mem } => self.regs[dst.index()] = self.addr(mem),
                I::Cmp { width, a, b } => {
                    let (x, y) = (self.regs[a.index()], self.regs[b.index()]);
                    self.alu(AluOp::Sub, width, true, x, y)?;
                }
                I::CmpImm { width, a, imm } => {
                    let x = self.regs[a.index()];
                    self.alu(AluOp::Sub, width, true, x, imm as u64)?;
                }
                I::SetCc { cond, dst } => {
                    self.regs[dst.index()] = eval_cond(cond, self.flags) as u64;
                }
                I::Jcc { cond, rel } => {
                    if eval_cond(cond, self.flags) {
                        pc = next.wrapping_add(rel as i64 as u64);
                    }
                }
                I::Jmp { rel } => pc = next.wrapping_add(rel as i64 as u64),
                I::JmpInd { reg } => pc = self.regs[reg.index()],
                I::Call { rel } => {
                    let target = next.wrapping_add(rel as i64 as u64);
                    if let Some(r) = self.enter(host, target, &mut shadow, next)? {
                        pc = r;
                    }
                }
                I::CallInd { reg } => {
                    let target = self.regs[reg.index()];
                    if let Some(r) = self.enter(host, target, &mut shadow, next)? {
                        pc = r;
                    }
                }
                I::Ret => match shadow.pop() {
                    Some(ret) => pc = ret,
                    None => return Ok(()),
                },
                I::Push { src } => {
                    let sp = self.regs[abi.sp.index()].wrapping_sub(8);
                    self.regs[abi.sp.index()] = sp;
                    write_mem(sp, Width::W64, self.regs[src.index()])?;
                }
                I::Pop { dst } => {
                    let sp = self.regs[abi.sp.index()];
                    self.regs[dst.index()] = read_mem(sp, Width::W64)?;
                    self.regs[abi.sp.index()] = sp.wrapping_add(8);
                }
                I::Falu { op, dst, a, b } => {
                    let x = f64::from_bits(self.fregs[a.index()]);
                    let y = f64::from_bits(self.fregs[b.index()]);
                    let r = match op {
                        FaluOp::Add => x + y,
                        FaluOp::Sub => x - y,
                        FaluOp::Mul => x * y,
                        FaluOp::Div => x / y,
                    };
                    self.fregs[dst.index()] = r.to_bits();
                }
                I::FCmp { a, b } => {
                    let x = f64::from_bits(self.fregs[a.index()]);
                    let y = f64::from_bits(self.fregs[b.index()]);
                    self.flags = Flags {
                        zf: x == y,
                        sf: false,
                        of: false,
                        cf: x < y,
                        unordered: x.is_nan() || y.is_nan(),
                    };
                }
                I::FMov { dst, src } => self.fregs[dst.index()] = self.fregs[src.index()],
                I::FMovFromGpr { dst, src } => {
                    self.fregs[dst.index()] = self.regs[src.index()];
                }
                I::FMovToGpr { dst, src } => {
                    self.regs[dst.index()] = self.fregs[src.index()];
                }
                I::CvtSiToF { dst, src } => {
                    self.fregs[dst.index()] = ((self.regs[src.index()] as i64) as f64).to_bits();
                }
                I::CvtFToSi { dst, src } => {
                    let f = f64::from_bits(self.fregs[src.index()]);
                    if f.is_nan() || f <= -9.3e18 || f >= 9.3e18 {
                        return Err(Trap::Overflow);
                    }
                    self.regs[dst.index()] = f.trunc() as i64 as u64;
                }
                I::FLoad { dst, mem } => {
                    self.fregs[dst.index()] = read_mem(self.addr(mem), Width::W64)?;
                }
                I::FStore { src, mem } => {
                    write_mem(self.addr(mem), Width::W64, self.fregs[src.index()])?;
                }
                I::Trap { code } => {
                    return Err(match code {
                        0 => Trap::Unreachable,
                        1 => Trap::Overflow,
                        c => Trap::Runtime(c),
                    });
                }
            }
        }
    }

    /// Handles a call to `target`: runtime helpers are dispatched to
    /// the host (returning `None`, execution continues at `ret_to`);
    /// code targets push a shadow frame and return `Some(target)`.
    fn enter(
        &mut self,
        host: &mut dyn RuntimeDispatch,
        target: u64,
        shadow: &mut Vec<u64>,
        ret_to: u64,
    ) -> Result<Option<u64>, Trap> {
        if let Some(index) = runtime_index(target) {
            let abi = self.image.isa().abi();
            let slots = host.arg_slots(index);
            let mut argv = Vec::with_capacity(slots);
            let sp = self.regs[abi.sp.index()];
            for i in 0..slots {
                argv.push(match abi.arg_regs.get(i) {
                    Some(r) => self.regs[r.index()],
                    None => read_mem(sp + 8 * (i - abi.arg_regs.len()) as u64, Width::W64)?,
                });
            }
            self.stats.cycles += CALL_DISPATCH_COST + host.runtime_cost(index, &argv);
            let r = host.call_runtime(index, &argv, Reentry { emu: self })?;
            let abi = self.image.isa().abi();
            self.regs[abi.ret.index()] = r[0];
            self.regs[abi.ret_hi.index()] = r[1];
            Ok(None)
        } else {
            shadow.push(ret_to);
            Ok(Some(target))
        }
    }

    /// Effective address of a memory operand.
    fn addr(&self, mem: MemArg) -> u64 {
        let mut a = self.regs[mem.base.index()].wrapping_add(mem.disp as i64 as u64);
        if let Some((idx, scale)) = mem.index {
            a = a.wrapping_add(self.regs[idx.index()].wrapping_mul(scale as u64));
        }
        a
    }

    /// Executes one integer ALU operation at `width`, returning the
    /// canonical (zero-extended) result and updating flags when
    /// requested. Semantics match the interpreter tier exactly.
    fn alu(&mut self, op: AluOp, w: Width, set_flags: bool, x: u64, y: u64) -> Result<u64, Trap> {
        let mask = w.mask();
        let bits = w.bits();
        let (ux, uy) = (x & mask, y & mask);
        let (sx, sy) = (sext(x, w), sext(y, w));
        let wrap = |v: i64| (v as u64) & mask;
        let cin = self.flags.cf as u64;
        // (result, carry-out, signed-overflow)
        let (r, cf, of) = match op {
            AluOp::Add => {
                let r = wrap(sx.wrapping_add(sy));
                let carry = ux as u128 + uy as u128 > mask as u128;
                let ovf = sx.checked_add(sy).is_none_or(|v| sext(wrap(v), w) != v);
                (r, carry, ovf)
            }
            AluOp::Sub => {
                let r = wrap(sx.wrapping_sub(sy));
                let ovf = sx.checked_sub(sy).is_none_or(|v| sext(wrap(v), w) != v);
                (r, ux < uy, ovf)
            }
            AluOp::Adc => {
                let wide = ux as u128 + uy as u128 + cin as u128;
                let r = wide as u64 & mask;
                let sr = sext(r, w);
                let full = sx as i128 + sy as i128 + cin as i128;
                (r, wide > mask as u128, sr as i128 != full)
            }
            AluOp::Sbb => {
                let wide = ux as i128 - uy as i128 - cin as i128;
                let r = wide as u64 & mask;
                let sr = sext(r, w);
                let full = sx as i128 - sy as i128 - cin as i128;
                (r, wide < 0, sr as i128 != full)
            }
            AluOp::Mul => {
                let r = wrap(sx.wrapping_mul(sy));
                let ovf = sx.checked_mul(sy).is_none_or(|v| sext(wrap(v), w) != v);
                (r, ovf, ovf)
            }
            AluOp::And => (ux & uy, false, false),
            AluOp::Or => (ux | uy, false, false),
            AluOp::Xor => (ux ^ uy, false, false),
            AluOp::Shl => ((ux << (y as u32 & (bits - 1))) & mask, false, false),
            AluOp::Shr => (ux >> (y as u32 & (bits - 1)), false, false),
            AluOp::Sar => (wrap(sx >> (y as u32 & (bits - 1))), false, false),
            AluOp::Rotr => {
                let amt = y as u32 & (bits - 1);
                let r = if amt == 0 {
                    ux
                } else {
                    ((ux >> amt) | (ux << (bits - amt))) & mask
                };
                (r, false, false)
            }
        };
        if set_flags {
            self.flags = Flags {
                zf: r == 0,
                sf: sext(r, w) < 0,
                of,
                cf,
                unordered: false,
            };
        }
        Ok(r)
    }
}

fn div(signed: bool, rem: bool, w: Width, x: u64, y: u64) -> Result<u64, Trap> {
    let mask = w.mask();
    if signed {
        let (sx, sy) = (sext(x, w), sext(y, w));
        if sy == 0 {
            return Err(Trap::DivByZero);
        }
        if rem {
            Ok((sx.wrapping_rem(sy) as u64) & mask)
        } else {
            match sx.checked_div(sy) {
                Some(q) if sext((q as u64) & mask, w) == q => Ok((q as u64) & mask),
                _ => Err(Trap::Overflow),
            }
        }
    } else {
        let (ux, uy) = (x & mask, y & mask);
        if uy == 0 {
            return Err(Trap::DivByZero);
        }
        Ok(if rem { ux % uy } else { ux / uy })
    }
}
