//! Instruction decoding for both ISAs.
//!
//! [`decode_inst`] turns encoded bytes back into the ISA-independent
//! [`DecodedInst`] form. The emulator fetches through it and the cgen
//! back-end's disassembler prints from it; every instruction either
//! assembler can emit decodes into exactly one variant (relocation
//! sites excepted — the disassembler resolves those through the
//! recorded [`crate::Reloc`]s instead).

use crate::isa::{AluOp, Cond, FReg, FaluOp, Isa, MemArg, Reg, Width};
use crate::{ta64, tx64};
use std::fmt;

/// A decoded machine instruction, shared across ISAs.
///
/// TX64's two-address ALU forms decode with `src1 == dst`, so
/// re-assembling the printed form reproduces the original bytes.
/// Branch displacements (`rel`) are relative to the **end** of the
/// instruction.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum DecodedInst {
    /// No operation.
    Nop,
    /// `dst = src`.
    MovRR {
        /// Destination.
        dst: Reg,
        /// Source.
        src: Reg,
    },
    /// `dst = imm` (full 64-bit write).
    MovRI {
        /// Destination.
        dst: Reg,
        /// Immediate value.
        imm: i64,
    },
    /// Replace bits `[16*shift, 16*shift+16)` of `dst`. The TA64 `movz`
    /// decodes as `MovRI`; this is the `movk` continuation.
    MovK {
        /// Destination.
        dst: Reg,
        /// Replacement bits.
        imm16: u16,
        /// 16-bit chunk index (0–3).
        shift: u8,
    },
    /// `dst = src1 op src2` at `width`.
    Alu {
        /// Operation.
        op: AluOp,
        /// Operation width.
        width: Width,
        /// Whether flags are written.
        set_flags: bool,
        /// Destination.
        dst: Reg,
        /// Left operand.
        src1: Reg,
        /// Right operand.
        src2: Reg,
    },
    /// `dst = src1 op imm` at `width`.
    AluImm {
        /// Operation.
        op: AluOp,
        /// Operation width.
        width: Width,
        /// Whether flags are written.
        set_flags: bool,
        /// Destination.
        dst: Reg,
        /// Left operand.
        src1: Reg,
        /// Immediate right operand.
        imm: i64,
    },
    /// Unsigned full multiply: `(dst_lo, dst_hi) = a * b`.
    MulFull {
        /// Low 64 bits of the product.
        dst_lo: Reg,
        /// High 64 bits of the product.
        dst_hi: Reg,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// `dst = crc32c(acc, data)`.
    Crc32 {
        /// Destination.
        dst: Reg,
        /// Accumulator input.
        acc: Reg,
        /// Data input.
        data: Reg,
    },
    /// Division/remainder (traps on zero divisor / signed overflow).
    Div {
        /// Signed or unsigned.
        signed: bool,
        /// Remainder instead of quotient.
        rem: bool,
        /// Operation width.
        width: Width,
        /// Destination.
        dst: Reg,
        /// Dividend.
        a: Reg,
        /// Divisor.
        b: Reg,
    },
    /// `dst = sign_extend(src from `from`)`.
    Sext {
        /// Source width.
        from: Width,
        /// Destination.
        dst: Reg,
        /// Source.
        src: Reg,
    },
    /// Zero-extending load.
    Load {
        /// Access width.
        width: Width,
        /// Destination.
        dst: Reg,
        /// Address operand.
        mem: MemArg,
    },
    /// Store of the low `width` bytes.
    Store {
        /// Access width.
        width: Width,
        /// Value to store.
        src: Reg,
        /// Address operand.
        mem: MemArg,
    },
    /// `dst = effective address`.
    Lea {
        /// Destination.
        dst: Reg,
        /// Address operand.
        mem: MemArg,
    },
    /// Flag-setting compare `a - b`.
    Cmp {
        /// Operation width.
        width: Width,
        /// Left operand.
        a: Reg,
        /// Right operand.
        b: Reg,
    },
    /// Flag-setting compare against an immediate.
    CmpImm {
        /// Operation width.
        width: Width,
        /// Left operand.
        a: Reg,
        /// Immediate right operand.
        imm: i64,
    },
    /// `dst = cond ? 1 : 0`.
    SetCc {
        /// Condition tested.
        cond: Cond,
        /// Destination.
        dst: Reg,
    },
    /// Conditional branch; `rel` is relative to the instruction end.
    Jcc {
        /// Condition tested.
        cond: Cond,
        /// Byte displacement from the instruction end.
        rel: i32,
    },
    /// Unconditional branch.
    Jmp {
        /// Byte displacement from the instruction end.
        rel: i32,
    },
    /// Indirect jump through `reg`.
    JmpInd {
        /// Target address register.
        reg: Reg,
    },
    /// Relative call; pushes a shadow-stack frame.
    Call {
        /// Byte displacement from the instruction end.
        rel: i32,
    },
    /// Indirect call through `reg`.
    CallInd {
        /// Target address register.
        reg: Reg,
    },
    /// Return through the shadow call stack.
    Ret,
    /// `sp -= 8; [sp] = src` (TX64 only).
    Push {
        /// Value pushed.
        src: Reg,
    },
    /// `dst = [sp]; sp += 8` (TX64 only).
    Pop {
        /// Destination.
        dst: Reg,
    },
    /// Float arithmetic `dst = a op b`.
    Falu {
        /// Operation.
        op: FaluOp,
        /// Destination.
        dst: FReg,
        /// Left operand.
        a: FReg,
        /// Right operand.
        b: FReg,
    },
    /// Float compare (sets integer flags; unordered satisfies only
    /// `Ne`).
    FCmp {
        /// Left operand.
        a: FReg,
        /// Right operand.
        b: FReg,
    },
    /// Float register move.
    FMov {
        /// Destination.
        dst: FReg,
        /// Source.
        src: FReg,
    },
    /// Bit-move GPR → float register.
    FMovFromGpr {
        /// Destination.
        dst: FReg,
        /// Source.
        src: Reg,
    },
    /// Bit-move float register → GPR.
    FMovToGpr {
        /// Destination.
        dst: Reg,
        /// Source.
        src: FReg,
    },
    /// `dst = (double)(signed)src`.
    CvtSiToF {
        /// Destination.
        dst: FReg,
        /// Source.
        src: Reg,
    },
    /// `dst = (i64)src`; traps on NaN/out-of-range.
    CvtFToSi {
        /// Destination.
        dst: Reg,
        /// Source.
        src: FReg,
    },
    /// Float load from `[base + disp]`.
    FLoad {
        /// Destination.
        dst: FReg,
        /// Address operand.
        mem: MemArg,
    },
    /// Float store to `[base + disp]`.
    FStore {
        /// Value stored.
        src: FReg,
        /// Address operand.
        mem: MemArg,
    },
    /// Unconditional trap (0 = unreachable, 1 = overflow, else
    /// a runtime-defined code).
    Trap {
        /// Trap code.
        code: u8,
    },
}

/// A decoding failure: truncated input or an undefined opcode.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct DecodeError {
    off: usize,
    what: &'static str,
}

impl fmt::Display for DecodeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "decode error at offset {:#x}: {}", self.off, self.what)
    }
}

impl std::error::Error for DecodeError {}

/// Decodes one instruction of `isa` at byte `off`, returning the
/// instruction and its encoded length in bytes.
///
/// # Errors
/// Fails on truncated input or an undefined opcode.
pub fn decode_inst(isa: Isa, code: &[u8], off: usize) -> Result<(DecodedInst, u8), DecodeError> {
    match isa {
        Isa::Tx64 => decode_tx64(code, off),
        Isa::Ta64 => decode_ta64(code, off),
    }
}

fn take<const N: usize>(code: &[u8], off: usize) -> Result<[u8; N], DecodeError> {
    code.get(off..off + N)
        .and_then(|s| s.try_into().ok())
        .ok_or(DecodeError {
            off,
            what: "truncated instruction",
        })
}

fn decode_tx64(code: &[u8], off: usize) -> Result<(DecodedInst, u8), DecodeError> {
    use tx64::opc;
    use DecodedInst as I;
    let op = *code.get(off).ok_or(DecodeError {
        off,
        what: "end of code",
    })?;
    let b = |i: usize| -> Result<u8, DecodeError> {
        code.get(off + i).copied().ok_or(DecodeError {
            off,
            what: "truncated instruction",
        })
    };
    let i32_at = |i: usize| -> Result<i32, DecodeError> {
        Ok(i32::from_le_bytes(take::<4>(code, off + i)?))
    };
    let wsf = |v: u8| (Width::from_code(v & 3), v & 4 != 0);
    Ok(match op {
        opc::NOP => (I::Nop, 1),
        opc::MOVRR => (
            I::MovRR {
                dst: Reg(b(1)?),
                src: Reg(b(2)?),
            },
            3,
        ),
        opc::MOVRI32 => (
            I::MovRI {
                dst: Reg(b(1)?),
                imm: i32_at(2)? as i64,
            },
            6,
        ),
        opc::MOVRI64 => {
            let imm = i64::from_le_bytes(take::<8>(code, off + 2)?);
            (
                I::MovRI {
                    dst: Reg(b(1)?),
                    imm,
                },
                10,
            )
        }
        opc::MOVK => {
            let imm16 = u16::from_le_bytes(take::<2>(code, off + 3)?);
            (
                I::MovK {
                    dst: Reg(b(1)?),
                    imm16,
                    shift: b(2)?,
                },
                5,
            )
        }
        opc::ALURR => {
            let aluop = AluOp::from_code(b(1)?).ok_or(DecodeError {
                off,
                what: "undefined ALU op",
            })?;
            let (width, set_flags) = wsf(b(2)?);
            let dst = Reg(b(3)?);
            (
                I::Alu {
                    op: aluop,
                    width,
                    set_flags,
                    dst,
                    src1: dst,
                    src2: Reg(b(4)?),
                },
                5,
            )
        }
        opc::ALURI8 | opc::ALURI32 => {
            let aluop = AluOp::from_code(b(1)?).ok_or(DecodeError {
                off,
                what: "undefined ALU op",
            })?;
            let (width, set_flags) = wsf(b(2)?);
            let dst = Reg(b(3)?);
            let (imm, len) = if op == opc::ALURI8 {
                (b(4)? as i8 as i64, 5)
            } else {
                (i32_at(4)? as i64, 8)
            };
            (
                I::AluImm {
                    op: aluop,
                    width,
                    set_flags,
                    dst,
                    src1: dst,
                    imm,
                },
                len,
            )
        }
        opc::MULFULL => (
            I::MulFull {
                dst_lo: Reg(b(1)?),
                dst_hi: Reg(b(2)?),
                a: Reg(b(3)?),
                b: Reg(b(4)?),
            },
            5,
        ),
        opc::CRC32 => (
            I::Crc32 {
                dst: Reg(b(1)?),
                acc: Reg(b(2)?),
                data: Reg(b(3)?),
            },
            4,
        ),
        opc::DIV => {
            let srw = b(1)?;
            (
                I::Div {
                    signed: srw & 1 != 0,
                    rem: srw & 2 != 0,
                    width: Width::from_code(srw >> 2),
                    dst: Reg(b(2)?),
                    a: Reg(b(3)?),
                    b: Reg(b(4)?),
                },
                5,
            )
        }
        opc::SEXT => (
            I::Sext {
                from: Width::from_code(b(1)?),
                dst: Reg(b(2)?),
                src: Reg(b(3)?),
            },
            4,
        ),
        opc::LOAD | opc::LOADX | opc::STORE | opc::STOREX => {
            let width = Width::from_code(b(1)?);
            let reg = Reg(b(2)?);
            let (mem, len) = if op == opc::LOADX || op == opc::STOREX {
                (
                    MemArg {
                        base: Reg(b(3)?),
                        index: Some((Reg(b(4)?), b(5)?)),
                        disp: i32_at(6)?,
                    },
                    10,
                )
            } else {
                (
                    MemArg {
                        base: Reg(b(3)?),
                        index: None,
                        disp: i32_at(4)?,
                    },
                    8,
                )
            };
            if op == opc::LOAD || op == opc::LOADX {
                (
                    I::Load {
                        width,
                        dst: reg,
                        mem,
                    },
                    len,
                )
            } else {
                (
                    I::Store {
                        width,
                        src: reg,
                        mem,
                    },
                    len,
                )
            }
        }
        opc::LEA => (
            I::Lea {
                dst: Reg(b(1)?),
                mem: MemArg {
                    base: Reg(b(2)?),
                    index: None,
                    disp: i32_at(3)?,
                },
            },
            7,
        ),
        opc::LEAX => (
            I::Lea {
                dst: Reg(b(1)?),
                mem: MemArg {
                    base: Reg(b(2)?),
                    index: Some((Reg(b(3)?), b(4)?)),
                    disp: i32_at(5)?,
                },
            },
            9,
        ),
        opc::CMP => (
            I::Cmp {
                width: Width::from_code(b(1)?),
                a: Reg(b(2)?),
                b: Reg(b(3)?),
            },
            4,
        ),
        opc::CMPI => (
            I::CmpImm {
                width: Width::from_code(b(1)?),
                a: Reg(b(2)?),
                imm: i32_at(3)? as i64,
            },
            7,
        ),
        opc::SETCC => {
            let cond = Cond::from_code(b(1)?).ok_or(DecodeError {
                off,
                what: "undefined condition",
            })?;
            (
                I::SetCc {
                    cond,
                    dst: Reg(b(2)?),
                },
                3,
            )
        }
        opc::JCC => {
            let cond = Cond::from_code(b(1)?).ok_or(DecodeError {
                off,
                what: "undefined condition",
            })?;
            (
                I::Jcc {
                    cond,
                    rel: i32_at(2)?,
                },
                6,
            )
        }
        opc::JMP => (I::Jmp { rel: i32_at(1)? }, 5),
        opc::JMPIND => (I::JmpInd { reg: Reg(b(1)?) }, 2),
        opc::CALL => (I::Call { rel: i32_at(1)? }, 5),
        opc::CALLIND => (I::CallInd { reg: Reg(b(1)?) }, 2),
        opc::RET => (I::Ret, 1),
        opc::PUSH => (I::Push { src: Reg(b(1)?) }, 2),
        opc::POP => (I::Pop { dst: Reg(b(1)?) }, 2),
        opc::FALU => {
            let fop = FaluOp::from_code(b(1)?).ok_or(DecodeError {
                off,
                what: "undefined float op",
            })?;
            (
                I::Falu {
                    op: fop,
                    dst: FReg(b(2)?),
                    a: FReg(b(3)?),
                    b: FReg(b(4)?),
                },
                5,
            )
        }
        opc::FCMP => (
            I::FCmp {
                a: FReg(b(1)?),
                b: FReg(b(2)?),
            },
            3,
        ),
        opc::FMOV => (
            I::FMov {
                dst: FReg(b(1)?),
                src: FReg(b(2)?),
            },
            3,
        ),
        opc::FMOVFG => (
            I::FMovFromGpr {
                dst: FReg(b(1)?),
                src: Reg(b(2)?),
            },
            3,
        ),
        opc::FMOVTG => (
            I::FMovToGpr {
                dst: Reg(b(1)?),
                src: FReg(b(2)?),
            },
            3,
        ),
        opc::CVTSI2F => (
            I::CvtSiToF {
                dst: FReg(b(1)?),
                src: Reg(b(2)?),
            },
            3,
        ),
        opc::CVTF2SI => (
            I::CvtFToSi {
                dst: Reg(b(1)?),
                src: FReg(b(2)?),
            },
            3,
        ),
        opc::FLOAD => (
            I::FLoad {
                dst: FReg(b(1)?),
                mem: MemArg {
                    base: Reg(b(2)?),
                    index: None,
                    disp: i32_at(3)?,
                },
            },
            7,
        ),
        opc::FSTORE => (
            I::FStore {
                src: FReg(b(1)?),
                mem: MemArg {
                    base: Reg(b(2)?),
                    index: None,
                    disp: i32_at(3)?,
                },
            },
            7,
        ),
        opc::TRAP => (I::Trap { code: b(1)? }, 2),
        _ => {
            return Err(DecodeError {
                off,
                what: "undefined TX64 opcode",
            })
        }
    })
}

fn sext_bits(v: u32, bits: u32) -> i32 {
    ((v << (32 - bits)) as i32) >> (32 - bits)
}

fn decode_ta64(code: &[u8], off: usize) -> Result<(DecodedInst, u8), DecodeError> {
    use ta64::opc;
    use DecodedInst as I;
    let w = u32::from_le_bytes(take::<4>(code, off)?);
    let op = (w >> 24) as u8;
    let aux1 = (w >> 21 & 7) as u8;
    let rd = Reg((w >> 16 & 31) as u8);
    let aux2 = (w >> 10 & 63) as u8;
    let rn = Reg((w >> 5 & 31) as u8);
    let rm = Reg((w & 31) as u8);
    let frd = FReg(rd.0);
    let frn = FReg(rn.0);
    let frm = FReg(rm.0);
    let imm16 = (w & 0xFFFF) as u16;
    let disp11 = sext_bits(w >> 5 & 0x7FF, 11);
    let wsf = (Width::from_code(aux1 & 3), aux1 & 4 != 0);
    let inst = match op {
        opc::NOP => I::Nop,
        opc::MOVRR => I::MovRR { dst: rd, src: rn },
        opc::MOVZ => I::MovRI {
            dst: rd,
            imm: imm16 as i64,
        },
        opc::MOVK => I::MovK {
            dst: rd,
            imm16,
            shift: aux1,
        },
        opc::ALURRR => {
            let aluop = AluOp::from_code(aux2 & 15).ok_or(DecodeError {
                off,
                what: "undefined ALU op",
            })?;
            I::Alu {
                op: aluop,
                width: wsf.0,
                set_flags: wsf.1,
                dst: rd,
                src1: rn,
                src2: rm,
            }
        }
        opc::ALURRI => {
            let aluop = AluOp::from_code((w >> 12 & 15) as u8).ok_or(DecodeError {
                off,
                what: "undefined ALU op",
            })?;
            let imm = sext_bits(w >> 5 & 0x7F, 7) as i64;
            I::AluImm {
                op: aluop,
                width: wsf.0,
                set_flags: wsf.1,
                dst: rd,
                src1: rm,
                imm,
            }
        }
        opc::MULFULL => I::MulFull {
            dst_lo: rd,
            dst_hi: Reg(aux2 & 31),
            a: rn,
            b: rm,
        },
        opc::CRC32 => I::Crc32 {
            dst: rd,
            acc: rn,
            data: rm,
        },
        opc::DIV => I::Div {
            signed: aux1 & 1 != 0,
            rem: aux1 & 2 != 0,
            width: Width::from_code(aux2 & 3),
            dst: rd,
            a: rn,
            b: rm,
        },
        opc::SEXT => I::Sext {
            from: Width::from_code(aux1),
            dst: rd,
            src: rn,
        },
        opc::CMP => I::Cmp {
            width: Width::from_code(aux1),
            a: rn,
            b: rm,
        },
        opc::CMPI => I::CmpImm {
            width: Width::from_code(aux1),
            a: rd,
            imm: imm16 as i16 as i64,
        },
        opc::SETCC => {
            let cond = Cond::from_code(aux2).ok_or(DecodeError {
                off,
                what: "undefined condition",
            })?;
            I::SetCc { cond, dst: rd }
        }
        opc::LOAD => I::Load {
            width: Width::from_code(aux1),
            dst: rd,
            mem: MemArg {
                base: rm,
                index: None,
                disp: disp11,
            },
        },
        opc::STORE => I::Store {
            width: Width::from_code(aux1),
            src: rd,
            mem: MemArg {
                base: rm,
                index: None,
                disp: disp11,
            },
        },
        opc::FLOAD => I::FLoad {
            dst: frd,
            mem: MemArg {
                base: rm,
                index: None,
                disp: disp11,
            },
        },
        opc::FSTORE => I::FStore {
            src: frd,
            mem: MemArg {
                base: rm,
                index: None,
                disp: disp11,
            },
        },
        opc::JCC => {
            let cond = Cond::from_code((w >> 20 & 15) as u8).ok_or(DecodeError {
                off,
                what: "undefined condition",
            })?;
            I::Jcc {
                cond,
                rel: sext_bits(w & 0xFFFF, 16) * 4,
            }
        }
        opc::JMP => I::Jmp {
            rel: sext_bits(w & 0xFF_FFFF, 24) * 4,
        },
        opc::JMPIND => I::JmpInd { reg: rd },
        opc::BL => I::Call {
            rel: sext_bits(w & 0xFF_FFFF, 24) * 4,
        },
        opc::CALLIND => I::CallInd { reg: rd },
        opc::RET => I::Ret,
        opc::FALU => {
            let fop = FaluOp::from_code(aux2).ok_or(DecodeError {
                off,
                what: "undefined float op",
            })?;
            I::Falu {
                op: fop,
                dst: frd,
                a: frn,
                b: frm,
            }
        }
        opc::FCMP => I::FCmp { a: frn, b: frm },
        opc::FMOV => I::FMov { dst: frd, src: frn },
        opc::FMOVFG => I::FMovFromGpr { dst: frd, src: rn },
        opc::FMOVTG => I::FMovToGpr { dst: rd, src: frn },
        opc::CVTSI2F => I::CvtSiToF { dst: frd, src: rn },
        opc::CVTF2SI => I::CvtFToSi { dst: rd, src: frn },
        opc::TRAP => I::Trap {
            code: (w & 0xFF) as u8,
        },
        _ => {
            return Err(DecodeError {
                off,
                what: "undefined TA64 opcode",
            })
        }
    };
    Ok((inst, 4))
}
