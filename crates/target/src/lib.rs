//! `qc-target`: the synthetic target subsystem every back-end compiles
//! against.
//!
//! The paper's compile-time comparison needs all frameworks to hit one
//! deterministic target, so this crate defines two synthetic ISAs
//! ([`Isa::Tx64`], [`Isa::Ta64`]), assemblers for both (the raw
//! [`Tx64Assembler`] and the portable [`MacroAssembler`] behind
//! [`new_masm`]), a decoder ([`decode_inst`]), an in-memory linker with
//! PLT-style thunks and branch veneers ([`ImageBuilder`] →
//! [`CodeImage`]), unwind registration ([`UnwindRegistry`]), and the
//! cycle-counting emulator ([`Emulator`]) that executes linked images
//! against a pluggable runtime ([`RuntimeDispatch`]).
//!
//! Layering: back-ends (crates `direct`, `clift`, `lvm`, `cgen`,
//! `backend`) emit through the assemblers and link through
//! [`ImageBuilder`]; the engine executes through [`Emulator`]; the
//! interpreter tier shares [`Trap`], [`ExecStats`], [`crc32c_u64`], and
//! the cost constants so the tiers agree bit-for-bit and
//! cycle-for-cycle.

#![deny(missing_docs)]

mod decode;
mod emu;
mod hash;
mod image;
mod isa;
mod masm;
mod reloc;
mod ta64;
mod tx64;
mod unwind;

pub use decode::{decode_inst, DecodeError, DecodedInst};
pub use emu::{
    runtime_addr, EmuOptions, Emulator, ExecStats, Reentry, RuntimeDispatch, Trap,
    CALL_DISPATCH_COST,
};
pub use hash::crc32c_u64;
pub use image::{CodeImage, ImageBuilder, ImageCodecError, LinkError};
pub use isa::{Abi, AluOp, Cond, FReg, FaluOp, Isa, MemArg, Reg, Width, TA64_ABI, TX64_ABI};
pub use masm::{new_masm, MLabel, MacroAssembler};
pub use reloc::{Reloc, RelocKind, SymbolRef};
pub use ta64::Ta64Assembler;
pub use tx64::{Tx64Assembler, TxLabel};
pub use unwind::{UnwindEntry, UnwindRegistry};

// Deterministic data generation (storage, workloads) seeds through the
// same rand version this crate pins; re-exported so downstream crates
// need no direct dependency.
pub use rand::{Rng, SeedableRng};
