//! The in-memory linker: lays out functions and data, synthesizes
//! out-of-range call veneers, applies relocations, and produces an
//! executable [`CodeImage`].
//!
//! Mirrors a JIT linker (ORC/RuntimeDyld style): back-ends add code and
//! data under symbolic names, then [`ImageBuilder::link`] resolves every
//! [`Reloc`] against the internal symbol table plus an external resolver
//! (the runtime). Two situations force synthesized stubs:
//!
//! * **External targets** (runtime helpers) live at virtual addresses
//!   far outside the image, so every external call goes through a
//!   PLT-style thunk that materializes the absolute address in the
//!   ISA's reserved scratch register.
//! * **TA64 far branches**: `bl` reaches only ±1 MiB, so internal calls
//!   whose final displacement exceeds that get a veneer (AArch64
//!   linker-veneer territory). TX64's `call rel32` covers ±2 GiB and
//!   never needs one internally.
//!
//! Veneers are emitted in per-item islands placed directly *after* the
//! item containing the call site, so they stay in range of their
//! callers no matter how large the image grows.

use crate::isa::Isa;
use crate::reloc::{Reloc, RelocKind};
use crate::ta64::{self, BL_RANGE};
use crate::tx64;
use crate::unwind::UnwindEntry;
use std::collections::HashMap;
use std::fmt;

/// An error reported by [`ImageBuilder::link`] (or while adding items).
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum LinkError {
    /// A relocation referenced a symbol defined nowhere: not in the
    /// image and unknown to the external resolver.
    Unresolved(String),
    /// Two items were added under the same name.
    Duplicate(String),
    /// A relocation's final displacement did not fit its field.
    OutOfRange(String),
}

impl fmt::Display for LinkError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LinkError::Unresolved(sym) => write!(f, "unresolved symbol `{sym}`"),
            LinkError::Duplicate(sym) => write!(f, "duplicate symbol `{sym}`"),
            LinkError::OutOfRange(sym) => {
                write!(f, "relocation against `{sym}` out of range")
            }
        }
    }
}

impl std::error::Error for LinkError {}

/// Version tag written by [`ImageBuilder::serialize_bytes`]; bumped on
/// any incompatible layout change so stale on-disk artifacts are
/// rejected instead of misparsed.
const IMAGE_FORMAT_VERSION: u32 = 1;

/// An error decoding [`ImageBuilder::serialize_bytes`] output
/// (truncation, bad tags, version mismatch, trailing garbage).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct ImageCodecError(pub String);

impl fmt::Display for ImageCodecError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "image decode error: {}", self.0)
    }
}

impl std::error::Error for ImageCodecError {}

/// Little-endian byte-stream writer for [`ImageBuilder::serialize_bytes`].
#[derive(Default)]
struct Writer(Vec<u8>);

impl Writer {
    fn u8(&mut self, v: u8) {
        self.0.push(v);
    }
    fn u32(&mut self, v: u32) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn u64(&mut self, v: u64) {
        self.0.extend_from_slice(&v.to_le_bytes());
    }
    fn str(&mut self, s: &str) {
        self.blob(s.as_bytes());
    }
    fn blob(&mut self, b: &[u8]) {
        self.u64(b.len() as u64);
        self.0.extend_from_slice(b);
    }
}

/// Bounds-checked reader over [`ImageBuilder::serialize_bytes`] output.
struct Reader<'a> {
    buf: &'a [u8],
    at: usize,
}

impl Reader<'_> {
    fn take(&mut self, n: usize) -> Result<&[u8], ImageCodecError> {
        let end = self
            .at
            .checked_add(n)
            .filter(|&e| e <= self.buf.len())
            .ok_or_else(|| ImageCodecError("truncated image payload".into()))?;
        let slice = &self.buf[self.at..end];
        self.at = end;
        Ok(slice)
    }
    fn u8(&mut self) -> Result<u8, ImageCodecError> {
        Ok(self.take(1)?[0])
    }
    fn bool(&mut self) -> Result<bool, ImageCodecError> {
        match self.u8()? {
            0 => Ok(false),
            1 => Ok(true),
            t => Err(ImageCodecError(format!("invalid bool tag {t}"))),
        }
    }
    fn u32(&mut self) -> Result<u32, ImageCodecError> {
        Ok(u32::from_le_bytes(self.take(4)?.try_into().expect("4")))
    }
    fn u64(&mut self) -> Result<u64, ImageCodecError> {
        Ok(u64::from_le_bytes(self.take(8)?.try_into().expect("8")))
    }
    fn str(&mut self) -> Result<String, ImageCodecError> {
        let bytes = self.blob()?;
        String::from_utf8(bytes).map_err(|_| ImageCodecError("non-UTF-8 name".into()))
    }
    fn blob(&mut self) -> Result<Vec<u8>, ImageCodecError> {
        let len = self.u64()?;
        let len = usize::try_from(len)
            .ok()
            .filter(|&l| l <= self.buf.len().saturating_sub(self.at))
            .ok_or_else(|| ImageCodecError("truncated image payload".into()))?;
        Ok(self.take(len)?.to_vec())
    }
}

#[derive(Clone)]
struct Item {
    name: String,
    bytes: Vec<u8>,
    relocs: Vec<Reloc>,
    align: u64,
    is_code: bool,
}

/// Accumulates functions and data blobs, then links them into a
/// [`CodeImage`].
///
/// Cloneable: a builder is a position-independent description of the
/// image (payload bytes plus symbolic relocations), so the engine's
/// compile-result cache stores unlinked builders and re-links a clone
/// per use — only the link step is repeated, never code generation.
#[derive(Clone)]
pub struct ImageBuilder {
    isa: Isa,
    items: Vec<Item>,
    by_name: HashMap<String, usize>,
    // (provisional offset of the owning function, entry)
    unwind: Vec<(u64, UnwindEntry)>,
    duplicate: Option<String>,
}

/// Where a symbol resolved to.
#[derive(Clone, Copy)]
enum Target {
    Internal(usize),
    External(u64),
}

impl ImageBuilder {
    /// Creates an empty builder for `isa`.
    pub fn new(isa: Isa) -> ImageBuilder {
        ImageBuilder {
            isa,
            items: Vec::new(),
            by_name: HashMap::new(),
            unwind: Vec::new(),
            duplicate: None,
        }
    }

    fn add_item(
        &mut self,
        name: &str,
        bytes: Vec<u8>,
        relocs: Vec<Reloc>,
        align: u64,
        is_code: bool,
    ) -> u64 {
        if self.by_name.contains_key(name) && self.duplicate.is_none() {
            self.duplicate = Some(name.to_string());
        }
        self.by_name.insert(name.to_string(), self.items.len());
        self.items.push(Item {
            name: name.to_string(),
            bytes,
            relocs,
            align,
            is_code,
        });
        self.provisional_offsets()[self.items.len() - 1]
    }

    /// Adds a function's code and relocations, returning its
    /// *provisional* offset (an identifier for [`Self::add_unwind`];
    /// the final offset can move when the linker inserts veneers).
    pub fn add_function(&mut self, name: &str, code: Vec<u8>, relocs: Vec<Reloc>) -> u64 {
        self.add_item(name, code, relocs, 16, true)
    }

    /// Adds a named read-write data blob (constant pools, GOT slots).
    /// Data may carry [`RelocKind::Abs64`] relocations; returns the
    /// provisional offset.
    pub fn add_data(&mut self, name: &str, bytes: Vec<u8>, align: u64, relocs: Vec<Reloc>) -> u64 {
        self.add_item(name, bytes, relocs, align.max(1), false)
    }

    /// Attaches an unwind entry to the function previously returned at
    /// provisional offset `off` by [`Self::add_function`].
    pub fn add_unwind(&mut self, off: u64, entry: UnwindEntry) {
        self.unwind.push((off, entry));
    }

    /// Approximate retained heap size in bytes (payload, relocations,
    /// names), used by the engine's code cache for its byte bound.
    pub fn approx_size(&self) -> usize {
        self.items
            .iter()
            .map(|i| i.name.len() + i.bytes.len() + i.relocs.len() * 32)
            .sum::<usize>()
            + self.unwind.len() * 32
    }

    /// Stable, position-independent serialization of everything added
    /// so far: item names, payload bytes, relocation records, and
    /// unwind entries, in insertion order. Two builders with equal
    /// content link to behaviorally identical images (the final images
    /// themselves differ only in their embedded base address).
    /// Determinism tests compare this instead of linked bytes.
    pub fn content_bytes(&self) -> Vec<u8> {
        let mut out = Vec::new();
        let push_u64 = |out: &mut Vec<u8>, v: u64| out.extend_from_slice(&v.to_le_bytes());
        for item in &self.items {
            push_u64(&mut out, item.name.len() as u64);
            out.extend_from_slice(item.name.as_bytes());
            push_u64(&mut out, item.align);
            out.push(u8::from(item.is_code));
            push_u64(&mut out, item.bytes.len() as u64);
            out.extend_from_slice(&item.bytes);
            push_u64(&mut out, item.relocs.len() as u64);
            for r in &item.relocs {
                push_u64(&mut out, r.offset as u64);
                out.push(r.kind as u8);
                push_u64(&mut out, r.sym.name.len() as u64);
                out.extend_from_slice(r.sym.name.as_bytes());
                push_u64(&mut out, r.addend as u64);
            }
        }
        push_u64(&mut out, self.unwind.len() as u64);
        for &(off, e) in &self.unwind {
            push_u64(&mut out, off);
            push_u64(&mut out, e.start as u64);
            push_u64(&mut out, e.end as u64);
            push_u64(&mut out, u64::from(e.frame_size));
            out.push(u8::from(e.synchronous_only));
        }
        out
    }

    /// Serializes the builder into a self-describing, versioned byte
    /// stream that [`ImageBuilder::deserialize_bytes`] restores exactly:
    /// ISA, every item (name, alignment, kind, payload, relocations),
    /// and the unwind entries. Unlike [`ImageBuilder::content_bytes`]
    /// (a comparison digest), this format carries explicit counts so it
    /// can be parsed back — it is what the engine's persistent artifact
    /// store writes to disk.
    pub fn serialize_bytes(&self) -> Vec<u8> {
        let mut w = Writer::default();
        w.u32(IMAGE_FORMAT_VERSION);
        w.u8(match self.isa {
            Isa::Tx64 => 0,
            Isa::Ta64 => 1,
        });
        w.u64(self.items.len() as u64);
        for item in &self.items {
            w.str(&item.name);
            w.u64(item.align);
            w.u8(u8::from(item.is_code));
            w.blob(&item.bytes);
            w.u64(item.relocs.len() as u64);
            for r in &item.relocs {
                w.u64(r.offset as u64);
                w.u8(r.kind as u8);
                w.str(&r.sym.name);
                w.u64(r.addend as u64);
            }
        }
        w.u64(self.unwind.len() as u64);
        for &(off, e) in &self.unwind {
            w.u64(off);
            w.u64(e.start as u64);
            w.u64(e.end as u64);
            w.u64(u64::from(e.frame_size));
            w.u8(u8::from(e.synchronous_only));
        }
        w.0
    }

    /// Restores a builder from [`ImageBuilder::serialize_bytes`] output.
    ///
    /// # Errors
    /// Returns [`ImageCodecError`] for a version mismatch, truncated
    /// input, invalid tags, or trailing bytes — the caller (the
    /// artifact store) treats any of these as a corrupt file and falls
    /// back to recompilation.
    pub fn deserialize_bytes(bytes: &[u8]) -> Result<ImageBuilder, ImageCodecError> {
        let mut r = Reader { buf: bytes, at: 0 };
        let version = r.u32()?;
        if version != IMAGE_FORMAT_VERSION {
            return Err(ImageCodecError(format!(
                "unsupported image format version {version} (expected {IMAGE_FORMAT_VERSION})"
            )));
        }
        let isa = match r.u8()? {
            0 => Isa::Tx64,
            1 => Isa::Ta64,
            t => return Err(ImageCodecError(format!("invalid ISA tag {t}"))),
        };
        let mut builder = ImageBuilder::new(isa);
        let n_items = r.u64()?;
        for _ in 0..n_items {
            let name = r.str()?;
            let align = r.u64()?;
            if !align.is_power_of_two() {
                return Err(ImageCodecError(format!("invalid alignment {align}")));
            }
            let is_code = r.bool()?;
            let payload = r.blob()?;
            let n_relocs = r.u64()?;
            let mut relocs = Vec::new();
            for _ in 0..n_relocs {
                let offset = r.u64()? as usize;
                let kind = match r.u8()? {
                    t if t == RelocKind::Rel32 as u8 => RelocKind::Rel32,
                    t if t == RelocKind::Abs64 as u8 => RelocKind::Abs64,
                    t if t == RelocKind::Rel24Words as u8 => RelocKind::Rel24Words,
                    t if t == RelocKind::MovSeqAbs64 as u8 => RelocKind::MovSeqAbs64,
                    t => return Err(ImageCodecError(format!("invalid reloc kind {t}"))),
                };
                let sym = crate::reloc::SymbolRef::named(&r.str()?);
                let addend = r.u64()? as i64;
                relocs.push(Reloc {
                    offset,
                    kind,
                    sym,
                    addend,
                });
            }
            builder.add_item(&name, payload, relocs, align, is_code);
        }
        let n_unwind = r.u64()?;
        for _ in 0..n_unwind {
            let off = r.u64()?;
            let entry = UnwindEntry {
                start: r.u64()? as usize,
                end: r.u64()? as usize,
                frame_size: u32::try_from(r.u64()?)
                    .map_err(|_| ImageCodecError("frame size out of range".into()))?,
                synchronous_only: r.bool()?,
            };
            builder.add_unwind(off, entry);
        }
        if r.at != bytes.len() {
            return Err(ImageCodecError(format!(
                "{} trailing bytes after image payload",
                bytes.len() - r.at
            )));
        }
        Ok(builder)
    }

    /// Provisional (veneer-free) layout, used to key unwind entries.
    fn provisional_offsets(&self) -> Vec<u64> {
        let mut offs = Vec::with_capacity(self.items.len());
        let mut off = 0u64;
        for item in &self.items {
            off = align_up(off, item.align);
            offs.push(off);
            off += item.bytes.len() as u64;
        }
        offs
    }

    /// Resolves all relocations and produces an executable image.
    ///
    /// `resolver` maps symbol names defined outside the image (runtime
    /// helpers) to their absolute virtual addresses.
    ///
    /// # Errors
    /// Fails on duplicate item names, symbols neither defined
    /// internally nor known to `resolver`, and displacements that
    /// cannot be made to fit even through a veneer.
    pub fn link(self, resolver: &dyn Fn(&str) -> Option<u64>) -> Result<CodeImage, LinkError> {
        if let Some(name) = self.duplicate {
            return Err(LinkError::Duplicate(name));
        }
        let isa = self.isa;
        let veneer_size: u64 = match isa {
            Isa::Tx64 => 16, // movabs r14, imm64; callind r14; ret (13, padded)
            Isa::Ta64 => 24, // movz/movk*3 r28; callind r28; ret
        };

        // Resolve every relocation's symbol once, up front.
        let mut targets: Vec<Vec<Target>> = Vec::with_capacity(self.items.len());
        for item in &self.items {
            let mut per = Vec::with_capacity(item.relocs.len());
            for r in &item.relocs {
                per.push(match self.by_name.get(&r.sym.name) {
                    Some(&idx) => Target::Internal(idx),
                    None => match resolver(&r.sym.name) {
                        Some(addr) => Target::External(addr),
                        None => return Err(LinkError::Unresolved(r.sym.name.clone())),
                    },
                });
            }
            targets.push(per);
        }

        // Fixpoint veneer placement: each island lives right after the
        // item whose calls it serves, so island slots are always in
        // range. Flagged veneers are never un-flagged (layout growth is
        // monotone), which guarantees termination.
        let mut veneers: Vec<HashMap<String, u64>> =
            self.items.iter().map(|_| HashMap::new()).collect();
        let mut item_offs: Vec<u64> = vec![0; self.items.len()];
        let mut total;
        loop {
            // Lay out items and their islands.
            let mut off = 0u64;
            for (i, item) in self.items.iter().enumerate() {
                off = align_up(off, item.align);
                item_offs[i] = off;
                off += item.bytes.len() as u64;
                off = align_up(off, 16);
                for slot in veneers[i].values_mut() {
                    *slot = off;
                    off += veneer_size;
                }
            }
            total = off;

            // Find call sites that (still) need a veneer.
            let mut changed = false;
            for (i, item) in self.items.iter().enumerate() {
                if !item.is_code {
                    // Data items hold only address relocations, which
                    // never route through veneers.
                    continue;
                }
                for (r, tgt) in item.relocs.iter().zip(&targets[i]) {
                    let is_call = matches!(r.kind, RelocKind::Rel32 | RelocKind::Rel24Words);
                    if !is_call || veneers[i].contains_key(&r.sym.name) {
                        continue;
                    }
                    let needs = match (tgt, r.kind) {
                        // Externals live at far virtual addresses.
                        (Target::External(_), _) => true,
                        // TX64 rel32 spans any realistic image.
                        (Target::Internal(_), RelocKind::Rel32) => false,
                        (Target::Internal(t), RelocKind::Rel24Words) => {
                            let site_end = item_offs[i] + r.offset as u64 + 4;
                            let disp = item_offs[*t] as i64 - site_end as i64;
                            disp.abs() > BL_RANGE
                        }
                        _ => false,
                    };
                    if needs {
                        veneers[i].insert(r.sym.name.clone(), 0);
                        changed = true;
                    }
                }
            }
            if !changed {
                break;
            }
        }

        // Assemble the final buffer. Box<[u8]> so the base address is
        // stable for the lifetime of the image.
        let mut buf = vec![0u8; total as usize];
        for (i, item) in self.items.iter().enumerate() {
            let at = item_offs[i] as usize;
            buf[at..at + item.bytes.len()].copy_from_slice(&item.bytes);
        }
        let mut buf: Box<[u8]> = buf.into_boxed_slice();
        let base = buf.as_ptr() as u64;

        // Absolute address a call relocation should reach, routed
        // through this item's veneer when one was flagged.
        let call_target = |i: usize, name: &str, tgt: Target| -> u64 {
            if let Some(&v) = veneers[i].get(name) {
                return base + v;
            }
            match tgt {
                Target::Internal(t) => base + item_offs[t],
                Target::External(a) => a,
            }
        };
        // Absolute address of the symbol itself (for address-taking
        // relocations, which never go through veneers).
        let sym_addr = |tgt: Target| -> u64 {
            match tgt {
                Target::Internal(t) => base + item_offs[t],
                Target::External(a) => a,
            }
        };

        // Patch relocation sites.
        for (i, item) in self.items.iter().enumerate() {
            for (r, &tgt) in item.relocs.iter().zip(&targets[i]) {
                let field = (item_offs[i] as usize) + r.offset;
                match r.kind {
                    RelocKind::Rel32 => {
                        let dest = call_target(i, &r.sym.name, tgt) as i64 + r.addend;
                        let rel = dest - (base as i64 + field as i64 + 4);
                        let rel = i32::try_from(rel)
                            .map_err(|_| LinkError::OutOfRange(r.sym.name.clone()))?;
                        buf[field..field + 4].copy_from_slice(&rel.to_le_bytes());
                    }
                    RelocKind::Rel24Words => {
                        let dest = call_target(i, &r.sym.name, tgt) as i64 + r.addend;
                        let rel = dest - (base as i64 + field as i64 + 4);
                        debug_assert_eq!(rel % 4, 0, "misaligned TA64 call target");
                        let words = rel / 4;
                        if !(-(1 << 23)..(1 << 23)).contains(&words) {
                            return Err(LinkError::OutOfRange(r.sym.name.clone()));
                        }
                        let old = u32::from_le_bytes(buf[field..field + 4].try_into().unwrap());
                        let new = (old & 0xFF00_0000) | (words as u32 & 0x00FF_FFFF);
                        buf[field..field + 4].copy_from_slice(&new.to_le_bytes());
                    }
                    RelocKind::Abs64 => {
                        let v = (sym_addr(tgt) as i64 + r.addend) as u64;
                        buf[field..field + 8].copy_from_slice(&v.to_le_bytes());
                    }
                    RelocKind::MovSeqAbs64 => {
                        let v = (sym_addr(tgt) as i64 + r.addend) as u64;
                        patch_mov_seq(&mut buf[field..field + 16], v);
                    }
                }
            }
        }

        // Emit veneer bodies.
        for island in &veneers {
            for (name, &voff) in island {
                let tgt = self
                    .items
                    .iter()
                    .zip(&targets)
                    .flat_map(|(it, ts)| it.relocs.iter().zip(ts))
                    .find(|(r, _)| r.sym.name == *name)
                    .map(|(_, &t)| t)
                    .expect("veneer target vanished");
                let dest = sym_addr(tgt);
                emit_veneer(
                    isa,
                    &mut buf[voff as usize..(voff + veneer_size) as usize],
                    dest,
                );
            }
        }

        Ok(CodeImage {
            isa,
            buf,
            symbols: self
                .items
                .iter()
                .zip(&item_offs)
                .map(|(item, &off)| (item.name.clone(), off))
                .collect(),
            unwind: {
                let prov = self.provisional_offsets();
                self.unwind
                    .iter()
                    .map(|&(prov_off, entry)| {
                        let idx = prov
                            .iter()
                            .position(|&p| p == prov_off)
                            .expect("unwind entry for unknown function offset");
                        (item_offs[idx], entry)
                    })
                    .collect()
            },
        })
    }
}

fn align_up(v: u64, align: u64) -> u64 {
    debug_assert!(align.is_power_of_two());
    (v + align - 1) & !(align - 1)
}

/// Rewrites the `imm16` fields of a `movz` + 3×`movk` sequence in place,
/// preserving opcode, shift, and destination-register bits.
fn patch_mov_seq(words: &mut [u8], value: u64) {
    for chunk in 0..4usize {
        let at = chunk * 4;
        let old = u32::from_le_bytes(words[at..at + 4].try_into().unwrap());
        let imm = (value >> (16 * chunk)) as u16;
        let new = (old & 0xFFFF_0000) | imm as u32;
        words[at..at + 4].copy_from_slice(&new.to_le_bytes());
    }
}

/// Writes a thunk/veneer that transfers control to absolute `dest`
/// through the ISA's reserved scratch register. An indirect *call* (not
/// a jump) plus `ret`: with the emulator's shadow call stack the
/// callee's `ret` returns here and this `ret` returns to the original
/// caller.
fn emit_veneer(isa: Isa, out: &mut [u8], dest: u64) {
    match isa {
        Isa::Tx64 => {
            let scratch = crate::isa::TX64_ABI.scratch;
            out[0] = tx64::opc::MOVRI64;
            out[1] = scratch.0;
            out[2..10].copy_from_slice(&dest.to_le_bytes());
            out[10] = tx64::opc::CALLIND;
            out[11] = scratch.0;
            out[12] = tx64::opc::RET;
            for b in &mut out[13..] {
                *b = tx64::opc::NOP;
            }
        }
        Isa::Ta64 => {
            let scratch = crate::isa::TA64_ABI.scratch;
            let mut words = [0u32; 6];
            words[0] = ta64::pack_i16(ta64::opc::MOVZ, 0, scratch.0, dest as u16);
            for (shift, w) in words[1..4].iter_mut().enumerate() {
                *w = ta64::pack_i16(
                    ta64::opc::MOVK,
                    shift as u8 + 1,
                    scratch.0,
                    (dest >> (16 * (shift + 1))) as u16,
                );
            }
            words[4] = ta64::pack_r(ta64::opc::CALLIND, 0, scratch.0, 0, 0, 0);
            words[5] = (ta64::opc::RET as u32) << 24;
            for (w, slot) in words.iter().zip(out.chunks_exact_mut(4)) {
                slot.copy_from_slice(&w.to_le_bytes());
            }
        }
    }
}

/// A linked, executable code image at a stable base address.
///
/// The backing buffer is heap-allocated and never moves, so the
/// absolute addresses patched at link time stay valid for the life of
/// the image (including after the image itself is moved).
#[derive(Debug)]
pub struct CodeImage {
    pub(crate) isa: Isa,
    pub(crate) buf: Box<[u8]>,
    // symbol -> offset from base
    pub(crate) symbols: HashMap<String, u64>,
    // (final function offset, entry)
    pub(crate) unwind: Vec<(u64, UnwindEntry)>,
}

impl CodeImage {
    /// The ISA this image was linked for.
    pub fn isa(&self) -> Isa {
        self.isa
    }

    /// Total image size in bytes (code, data, and veneers).
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// Whether the image contains no bytes.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// The absolute base address of the image.
    pub fn base(&self) -> u64 {
        self.buf.as_ptr() as u64
    }

    /// The raw linked bytes.
    pub fn bytes(&self) -> &[u8] {
        &self.buf
    }

    /// Absolute address of a defined symbol (function or data).
    pub fn addr_of(&self, name: &str) -> Option<u64> {
        self.symbols.get(name).map(|off| self.base() + off)
    }

    /// The registered unwind entries as `(function offset, entry)`
    /// pairs.
    pub fn unwind_entries(&self) -> &[(u64, UnwindEntry)] {
        &self.unwind
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::reloc::SymbolRef;

    fn sample_builder() -> ImageBuilder {
        let mut ib = ImageBuilder::new(Isa::Tx64);
        let off = ib.add_function(
            "f",
            vec![0x90; 24],
            vec![Reloc {
                offset: 3,
                kind: RelocKind::Rel32,
                sym: SymbolRef::named("rt_helper"),
                addend: -4,
            }],
        );
        ib.add_unwind(
            off,
            UnwindEntry {
                start: 0,
                end: 24,
                frame_size: 32,
                synchronous_only: true,
            },
        );
        ib.add_data(
            "pool",
            vec![1, 2, 3, 4, 5, 6, 7, 8],
            8,
            vec![Reloc {
                offset: 0,
                kind: RelocKind::Abs64,
                sym: SymbolRef::named("f"),
                addend: 8,
            }],
        );
        ib
    }

    #[test]
    fn serialize_roundtrip_preserves_content() {
        let ib = sample_builder();
        let bytes = ib.serialize_bytes();
        let back = ImageBuilder::deserialize_bytes(&bytes).expect("roundtrip");
        assert_eq!(ib.content_bytes(), back.content_bytes());
        assert_eq!(back.isa, Isa::Tx64);
        // The restored builder must link like the original.
        let resolve = |name: &str| (name == "rt_helper").then_some(0xdead_0000u64);
        let a = ib.link(&resolve).expect("link original");
        let b = back.link(&resolve).expect("link restored");
        assert_eq!(a.len(), b.len());
        assert_eq!(a.unwind_entries().len(), b.unwind_entries().len());
    }

    #[test]
    fn truncated_payload_is_rejected() {
        let bytes = sample_builder().serialize_bytes();
        for cut in [0, 3, 5, 17, bytes.len() - 1] {
            assert!(
                ImageBuilder::deserialize_bytes(&bytes[..cut]).is_err(),
                "truncation at {cut} must not parse"
            );
        }
    }

    #[test]
    fn trailing_bytes_are_rejected() {
        let mut bytes = sample_builder().serialize_bytes();
        bytes.push(0);
        assert!(ImageBuilder::deserialize_bytes(&bytes).is_err());
    }

    #[test]
    fn wrong_version_is_rejected() {
        let mut bytes = sample_builder().serialize_bytes();
        bytes[0] = bytes[0].wrapping_add(1);
        let err = ImageBuilder::deserialize_bytes(&bytes).err().expect("err");
        assert!(err.to_string().contains("version"));
    }
}
