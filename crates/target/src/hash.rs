//! The CRC-32C step shared by the `crc32` instruction, the emulator,
//! and the runtime's hash-table helpers.

const fn make_table() -> [u32; 256] {
    // CRC-32C (Castagnoli), reflected polynomial.
    const POLY: u32 = 0x82F6_3B78;
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ POLY
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = make_table();

/// One 8-byte CRC-32C step: feeds the little-endian bytes of `data`
/// into the accumulator's low 32 bits and returns the new accumulator
/// zero-extended (no pre/post inversion — chains compose directly).
pub fn crc32c_u64(acc: u64, data: u64) -> u64 {
    let mut crc = acc as u32;
    let bytes = data.to_le_bytes();
    let mut i = 0;
    while i < 8 {
        crc = (crc >> 8) ^ TABLE[((crc ^ bytes[i] as u32) & 0xFF) as usize];
        i += 1;
    }
    crc as u64
}
