//! The portable macro-assembler interface shared by all back-ends.
//!
//! [`MacroAssembler`] presents one three-address, label-based surface
//! over both ISAs; [`new_masm`] picks the implementation. On TX64 the
//! wrapper performs the two-address rewriting the paper charges to the
//! CISC encoding (an extra `mov` when the destination aliases neither
//! source); on TA64 large immediates and indexed addressing expand to
//! multi-word sequences. Either way, consumers emit identical
//! instruction streams and the cost shows up only in code size and
//! cycles.

use crate::isa::{AluOp, Cond, FReg, FaluOp, Isa, MemArg, Reg, Width, TX64_ABI};
use crate::reloc::{Reloc, SymbolRef};
use crate::ta64::Ta64Assembler;
use crate::tx64::{Tx64Assembler, TxLabel};

/// A branch label handed out by [`MacroAssembler::new_label`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct MLabel(pub(crate) u32);

/// Branch fixup formats used by the TA64 assembler.
#[derive(Clone, Copy, Debug)]
pub(crate) enum MFixupKind {
    /// 16-bit word displacement.
    Jcc,
    /// 24-bit word displacement.
    Jmp,
}

/// ISA-independent assembler interface.
///
/// All integer operations are three-address; results are stored
/// zero-extended at the operation width. `finish` resolves labels and
/// returns the encoded bytes plus outstanding relocations.
pub trait MacroAssembler {
    /// Allocates a fresh, unbound label.
    fn new_label(&mut self) -> MLabel;
    /// Binds `label` to the current offset.
    fn bind(&mut self, label: MLabel);
    /// Current emission offset in bytes.
    fn offset(&self) -> usize;
    /// `dst = src` (full 64 bits).
    fn mov_rr(&mut self, dst: Reg, src: Reg);
    /// `dst = imm` (shortest encoding).
    fn mov_ri(&mut self, dst: Reg, imm: i64);
    /// Replaces bits `[16*shift, 16*shift+16)` of `dst` with `imm16`.
    fn movk(&mut self, dst: Reg, imm16: u16, shift: u8);
    /// `dst = &sym`, patched with the absolute address at link time.
    fn mov_sym(&mut self, dst: Reg, sym: SymbolRef);
    /// `dst = a op b` at `width`, optionally setting flags.
    fn alu_rrr(&mut self, op: AluOp, width: Width, set_flags: bool, dst: Reg, a: Reg, b: Reg);
    /// `dst = src op imm` at `width`, optionally setting flags.
    fn alu_rri(&mut self, op: AluOp, width: Width, set_flags: bool, dst: Reg, src: Reg, imm: i64);
    /// `(dst_lo, dst_hi) = a * b` (unsigned 64×64→128).
    fn mulfull(&mut self, dst_lo: Reg, dst_hi: Reg, a: Reg, b: Reg);
    /// `dst = crc32c(acc, data)`.
    fn crc32(&mut self, dst: Reg, acc: Reg, data: Reg);
    /// Division/remainder; traps on zero divisor or signed overflow.
    fn div(&mut self, signed: bool, rem: bool, width: Width, dst: Reg, a: Reg, b: Reg);
    /// `dst = sign_extend(src from `from`)`.
    fn sext(&mut self, from: Width, dst: Reg, src: Reg);
    /// Zero-extending load from `[base + index*scale + disp]`.
    fn load(&mut self, width: Width, dst: Reg, base: Reg, index: Option<(Reg, u8)>, disp: i32);
    /// Store of the low `width` bytes of `src`.
    fn store(&mut self, width: Width, src: Reg, base: Reg, index: Option<(Reg, u8)>, disp: i32);
    /// Float load from `[base + disp]`.
    fn fload(&mut self, dst: FReg, base: Reg, disp: i32);
    /// Float store to `[base + disp]`.
    fn fstore(&mut self, src: FReg, base: Reg, disp: i32);
    /// `dst = base + index*scale + disp` (no memory access).
    fn lea(&mut self, dst: Reg, base: Reg, index: Option<(Reg, u8)>, disp: i32);
    /// Flag-setting compare `a - b`.
    fn cmp(&mut self, width: Width, a: Reg, b: Reg);
    /// Flag-setting compare against an immediate.
    fn cmp_ri(&mut self, width: Width, a: Reg, imm: i64);
    /// `dst = cond ? 1 : 0`.
    fn setcc(&mut self, cond: Cond, dst: Reg);
    /// Conditional branch.
    fn jcc(&mut self, cond: Cond, label: MLabel);
    /// Unconditional branch.
    fn jmp(&mut self, label: MLabel);
    /// Unconditional trap (0 = unreachable, 1 = overflow).
    fn trap(&mut self, code: u8);
    /// Call to an absolute address (expands through the ABI scratch).
    fn call_abs(&mut self, addr: u64);
    /// Relative call to `sym`, relocated at link time.
    fn call_sym(&mut self, sym: SymbolRef);
    /// Indirect call through `reg`.
    fn call_ind(&mut self, reg: Reg);
    /// Float arithmetic `dst = a op b`.
    fn falu(&mut self, op: FaluOp, dst: FReg, a: FReg, b: FReg);
    /// Float compare (unordered operands satisfy only `Ne`).
    fn fcmp(&mut self, a: FReg, b: FReg);
    /// Float register move.
    fn fmov(&mut self, dst: FReg, src: FReg);
    /// Bit-move GPR → float register.
    fn fmov_from_gpr(&mut self, dst: FReg, src: Reg);
    /// Bit-move float register → GPR.
    fn fmov_to_gpr(&mut self, dst: Reg, src: FReg);
    /// `dst = (double)(signed)src`.
    fn cvt_si2f(&mut self, dst: FReg, src: Reg);
    /// `dst = (i64)src`; traps on NaN or out-of-range.
    fn cvt_f2si(&mut self, dst: Reg, src: FReg);
    /// Return to the caller.
    fn ret(&mut self);
    /// Resolves labels and returns `(code, relocations)`.
    fn finish(self: Box<Self>) -> (Vec<u8>, Vec<Reloc>);
}

/// Creates the macro-assembler for `isa`.
pub fn new_masm(isa: Isa) -> Box<dyn MacroAssembler> {
    match isa {
        Isa::Tx64 => Box::new(Tx64Masm::default()),
        Isa::Ta64 => Box::new(Ta64Assembler::new()),
    }
}

/// TX64 implementation: wraps [`Tx64Assembler`] and performs the
/// two-address rewriting.
#[derive(Default, Debug)]
struct Tx64Masm {
    asm: Tx64Assembler,
    labels: Vec<TxLabel>,
}

impl Tx64Masm {
    fn tx(&self, label: MLabel) -> TxLabel {
        self.labels[label.0 as usize]
    }
}

fn commutative(op: AluOp) -> bool {
    matches!(
        op,
        AluOp::Add | AluOp::Adc | AluOp::Mul | AluOp::And | AluOp::Or | AluOp::Xor
    )
}

impl MacroAssembler for Tx64Masm {
    fn new_label(&mut self) -> MLabel {
        let l = self.asm.new_label();
        self.labels.push(l);
        MLabel(self.labels.len() as u32 - 1)
    }

    fn bind(&mut self, label: MLabel) {
        let l = self.tx(label);
        self.asm.bind(l);
    }

    fn offset(&self) -> usize {
        self.asm.offset()
    }

    fn mov_rr(&mut self, dst: Reg, src: Reg) {
        self.asm.mov_rr(dst, src);
    }

    fn mov_ri(&mut self, dst: Reg, imm: i64) {
        self.asm.mov_ri(dst, imm);
    }

    fn movk(&mut self, dst: Reg, imm16: u16, shift: u8) {
        self.asm.movk(dst, imm16, shift);
    }

    fn mov_sym(&mut self, dst: Reg, sym: SymbolRef) {
        self.asm.mov_ri64_sym(dst, sym);
    }

    fn alu_rrr(&mut self, op: AluOp, width: Width, set_flags: bool, dst: Reg, a: Reg, b: Reg) {
        if dst == a {
            self.asm.alu_rr(op, width, set_flags, dst, b);
        } else if dst == b {
            if commutative(op) {
                self.asm.alu_rr(op, width, set_flags, dst, a);
            } else {
                // `dst = a op dst`: save the old dst before clobbering.
                let scratch = TX64_ABI.scratch;
                self.asm.mov_rr(scratch, b);
                self.asm.mov_rr(dst, a);
                self.asm.alu_rr(op, width, set_flags, dst, scratch);
            }
        } else {
            self.asm.mov_rr(dst, a);
            self.asm.alu_rr(op, width, set_flags, dst, b);
        }
    }

    fn alu_rri(&mut self, op: AluOp, width: Width, set_flags: bool, dst: Reg, src: Reg, imm: i64) {
        if dst != src {
            self.asm.mov_rr(dst, src);
        }
        self.asm.alu_ri(op, width, set_flags, dst, imm);
    }

    fn mulfull(&mut self, dst_lo: Reg, dst_hi: Reg, a: Reg, b: Reg) {
        self.asm.mulfull(dst_lo, dst_hi, a, b);
    }

    fn crc32(&mut self, dst: Reg, acc: Reg, data: Reg) {
        self.asm.crc32(dst, acc, data);
    }

    fn div(&mut self, signed: bool, rem: bool, width: Width, dst: Reg, a: Reg, b: Reg) {
        self.asm.div(signed, rem, width, dst, a, b);
    }

    fn sext(&mut self, from: Width, dst: Reg, src: Reg) {
        self.asm.sext(from, dst, src);
    }

    fn load(&mut self, width: Width, dst: Reg, base: Reg, index: Option<(Reg, u8)>, disp: i32) {
        self.asm.load(width, dst, MemArg { base, index, disp });
    }

    fn store(&mut self, width: Width, src: Reg, base: Reg, index: Option<(Reg, u8)>, disp: i32) {
        self.asm.store(width, src, MemArg { base, index, disp });
    }

    fn fload(&mut self, dst: FReg, base: Reg, disp: i32) {
        self.asm.fload(dst, MemArg::base_disp(base, disp));
    }

    fn fstore(&mut self, src: FReg, base: Reg, disp: i32) {
        self.asm.fstore(src, MemArg::base_disp(base, disp));
    }

    fn lea(&mut self, dst: Reg, base: Reg, index: Option<(Reg, u8)>, disp: i32) {
        self.asm.lea(dst, MemArg { base, index, disp });
    }

    fn cmp(&mut self, width: Width, a: Reg, b: Reg) {
        self.asm.cmp_rr(width, a, b);
    }

    fn cmp_ri(&mut self, width: Width, a: Reg, imm: i64) {
        self.asm.cmp_ri(width, a, imm);
    }

    fn setcc(&mut self, cond: Cond, dst: Reg) {
        self.asm.setcc(cond, dst);
    }

    fn jcc(&mut self, cond: Cond, label: MLabel) {
        let l = self.tx(label);
        self.asm.jcc(cond, l);
    }

    fn jmp(&mut self, label: MLabel) {
        let l = self.tx(label);
        self.asm.jmp(l);
    }

    fn trap(&mut self, code: u8) {
        self.asm.trap(code);
    }

    fn call_abs(&mut self, addr: u64) {
        let scratch = TX64_ABI.scratch;
        self.asm.mov_ri64(scratch, addr as i64);
        self.asm.call_ind(scratch);
    }

    fn call_sym(&mut self, sym: SymbolRef) {
        self.asm.call_sym(sym);
    }

    fn call_ind(&mut self, reg: Reg) {
        self.asm.call_ind(reg);
    }

    fn falu(&mut self, op: FaluOp, dst: FReg, a: FReg, b: FReg) {
        self.asm.falu(op, dst, a, b);
    }

    fn fcmp(&mut self, a: FReg, b: FReg) {
        self.asm.fcmp(a, b);
    }

    fn fmov(&mut self, dst: FReg, src: FReg) {
        self.asm.fmov(dst, src);
    }

    fn fmov_from_gpr(&mut self, dst: FReg, src: Reg) {
        self.asm.fmov_from_gpr(dst, src);
    }

    fn fmov_to_gpr(&mut self, dst: Reg, src: FReg) {
        self.asm.fmov_to_gpr(dst, src);
    }

    fn cvt_si2f(&mut self, dst: FReg, src: Reg) {
        self.asm.cvt_si2f(dst, src);
    }

    fn cvt_f2si(&mut self, dst: Reg, src: FReg) {
        self.asm.cvt_f2si(dst, src);
    }

    fn ret(&mut self) {
        self.asm.ret();
    }

    fn finish(self: Box<Self>) -> (Vec<u8>, Vec<Reloc>) {
        self.asm.finish()
    }
}
