//! Relocations and symbol references recorded by the assemblers and
//! resolved by [`crate::ImageBuilder::link`].

/// A named reference to a function, data blob, or runtime symbol.
#[derive(Clone, Debug, PartialEq, Eq, Hash)]
pub struct SymbolRef {
    /// The symbol name (function name, data label, or `rt_*` runtime
    /// helper).
    pub name: String,
}

impl SymbolRef {
    /// Creates a reference to `name`.
    pub fn named(name: &str) -> SymbolRef {
        SymbolRef {
            name: name.to_string(),
        }
    }
}

/// The patch format of a relocation site.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum RelocKind {
    /// TX64 `call rel32`: a signed 32-bit displacement relative to the
    /// end of the 4-byte field. The whole instruction is 5 bytes; the
    /// relocation offset points at the displacement field (opcode + 1).
    Rel32,
    /// TX64 `movabs` (or a 64-bit data slot): an absolute little-endian
    /// 64-bit address. In code the instruction is 10 bytes and the
    /// relocation offset points at the immediate (opcode + 2, with the
    /// destination register byte directly before it).
    Abs64,
    /// TA64 `bl`: a signed 24-bit displacement in 4-byte words relative
    /// to the end of the instruction word. The relocation offset points
    /// at the instruction word itself.
    Rel24Words,
    /// TA64 `movz` + 3×`movk` absolute-address sequence (16 bytes). The
    /// relocation offset points at the first word; the destination
    /// register is bits `[20:16]` of that word.
    MovSeqAbs64,
}

/// One relocation to patch at link time.
#[derive(Clone, Debug, PartialEq)]
pub struct Reloc {
    /// Byte offset of the patch field within the function (or data
    /// blob) that carries the relocation. See [`RelocKind`] for what
    /// the offset points at.
    pub offset: usize,
    /// Patch format.
    pub kind: RelocKind,
    /// Referenced symbol.
    pub sym: SymbolRef,
    /// Constant added to the resolved address.
    pub addend: i64,
}
