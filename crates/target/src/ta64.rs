//! The TA64 assembler: fixed 4-byte words, three-address operations,
//! 5-bit register fields, ±1 MiB direct branch range.
//!
//! TA64 is the paper's RISC stand-in. There is no raw per-ISA assembler
//! interface (nothing needs one); the type below implements
//! [`crate::MacroAssembler`] directly and is reached through
//! [`crate::new_masm`]. Operations the fixed 32-bit words cannot express
//! (large immediates, indexed addressing, `lea`) are expanded into
//! multi-word sequences through the ISA's reserved internal scratch
//! registers `r27` and `r26`.
//!
//! Word layout (little-endian): opcode in bits `[31:24]`, a 3-bit
//! auxiliary field in `[23:21]`, the destination register in `[20:16]`
//! (this placement is load-bearing: the linker and disassembler extract
//! the `movz` destination as `(word >> 16) & 31`), and
//! format-dependent low bits.

use crate::isa::{AluOp, Cond, FReg, FaluOp, Reg, Width};
use crate::masm::{MFixupKind, MLabel};
use crate::reloc::{Reloc, RelocKind, SymbolRef};

/// TA64 opcode bytes (also consumed by the decoder).
pub(crate) mod opc {
    pub const NOP: u8 = 0x00;
    pub const MOVRR: u8 = 0x01;
    pub const MOVZ: u8 = 0x02;
    pub const MOVK: u8 = 0x03;
    pub const ALURRR: u8 = 0x10;
    pub const ALURRI: u8 = 0x11;
    pub const MULFULL: u8 = 0x12;
    pub const CRC32: u8 = 0x13;
    pub const DIV: u8 = 0x14;
    pub const SEXT: u8 = 0x15;
    pub const CMP: u8 = 0x16;
    pub const CMPI: u8 = 0x17;
    pub const SETCC: u8 = 0x18;
    pub const LOAD: u8 = 0x20;
    pub const STORE: u8 = 0x21;
    pub const FLOAD: u8 = 0x22;
    pub const FSTORE: u8 = 0x23;
    pub const JCC: u8 = 0x30;
    pub const JMP: u8 = 0x31;
    pub const JMPIND: u8 = 0x32;
    pub const BL: u8 = 0x33;
    pub const CALLIND: u8 = 0x34;
    pub const RET: u8 = 0x35;
    pub const FALU: u8 = 0x40;
    pub const FCMP: u8 = 0x41;
    pub const FMOV: u8 = 0x42;
    pub const FMOVFG: u8 = 0x43;
    pub const FMOVTG: u8 = 0x44;
    pub const CVTSI2F: u8 = 0x45;
    pub const CVTF2SI: u8 = 0x46;
    pub const TRAP: u8 = 0x50;
}

/// First internal expansion scratch (reserved; not allocatable).
pub(crate) const S1: Reg = Reg(27);
/// Second internal expansion scratch (reserved; not allocatable).
pub(crate) const S2: Reg = Reg(26);

/// Range of a direct `bl` on TA64 in bytes (±1 MiB). Calls whose final
/// displacement exceeds this get a linker veneer.
pub(crate) const BL_RANGE: i64 = 1 << 20;

pub(crate) fn pack_r(op: u8, aux1: u8, rd: u8, aux2: u8, rn: u8, rm: u8) -> u32 {
    (op as u32) << 24
        | (aux1 as u32 & 7) << 21
        | (rd as u32 & 31) << 16
        | (aux2 as u32 & 63) << 10
        | (rn as u32 & 31) << 5
        | (rm as u32 & 31)
}

pub(crate) fn pack_i16(op: u8, aux1: u8, rd: u8, imm16: u16) -> u32 {
    (op as u32) << 24 | (aux1 as u32 & 7) << 21 | (rd as u32 & 31) << 16 | imm16 as u32
}

pub(crate) fn pack_ls(op: u8, aux1: u8, rd: u8, disp11: i32, rn: u8) -> u32 {
    debug_assert!((-1024..1024).contains(&disp11));
    (op as u32) << 24
        | (aux1 as u32 & 7) << 21
        | (rd as u32 & 31) << 16
        | (disp11 as u32 & 0x7FF) << 5
        | (rn as u32 & 31)
}

pub(crate) fn pack_rri(op: u8, aux1: u8, rd: u8, aluop: u8, imm7: i64, rn: u8) -> u32 {
    debug_assert!((-64..64).contains(&imm7));
    (op as u32) << 24
        | (aux1 as u32 & 7) << 21
        | (rd as u32 & 31) << 16
        | (aluop as u32 & 15) << 12
        | ((imm7 as u32) & 0x7F) << 5
        | (rn as u32 & 31)
}

pub(crate) fn fits_ls(disp: i32) -> bool {
    (-1024..1024).contains(&disp)
}

/// Fixed-width TA64 encoder; implements [`crate::MacroAssembler`].
#[derive(Default, Debug)]
pub struct Ta64Assembler {
    pub(crate) words: Vec<u32>,
    pub(crate) relocs: Vec<Reloc>,
    pub(crate) labels: Vec<Option<usize>>,
    // (word index, label, branch format)
    pub(crate) fixups: Vec<(usize, u32, MFixupKind)>,
}

impl Ta64Assembler {
    pub(crate) fn new() -> Ta64Assembler {
        Ta64Assembler::default()
    }

    pub(crate) fn w(&mut self, word: u32) {
        self.words.push(word);
    }

    pub(crate) fn byte_offset(&self) -> usize {
        self.words.len() * 4
    }

    /// `dst = imm`: `movz` of the low 16 bits plus a `movk` for every
    /// non-zero remaining 16-bit chunk.
    pub(crate) fn emit_mov_ri(&mut self, dst: Reg, imm: i64) {
        let v = imm as u64;
        self.w(pack_i16(opc::MOVZ, 0, dst.0, v as u16));
        for shift in 1..4u8 {
            let chunk = (v >> (16 * shift)) as u16;
            if chunk != 0 {
                self.w(pack_i16(opc::MOVK, shift, dst.0, chunk));
            }
        }
    }

    /// Materializes `[base + index*scale + disp]` into a `(reg, disp)`
    /// pair directly encodable by the load/store word format.
    pub(crate) fn lower_addr(
        &mut self,
        base: Reg,
        index: Option<(Reg, u8)>,
        disp: i32,
    ) -> (Reg, i32) {
        let reg = match index {
            None => {
                if fits_ls(disp) {
                    return (base, disp);
                }
                base
            }
            Some((ri, scale)) => {
                debug_assert!(scale.is_power_of_two(), "bad scale {scale}");
                let log2 = scale.trailing_zeros() as i64;
                if log2 == 0 {
                    self.w(pack_r(
                        opc::ALURRR,
                        Width::W64.code(),
                        S1.0,
                        AluOp::Add.code(),
                        ri.0,
                        base.0,
                    ));
                } else {
                    self.w(pack_rri(
                        opc::ALURRI,
                        Width::W64.code(),
                        S1.0,
                        AluOp::Shl.code(),
                        log2,
                        ri.0,
                    ));
                    self.w(pack_r(
                        opc::ALURRR,
                        Width::W64.code(),
                        S1.0,
                        AluOp::Add.code(),
                        S1.0,
                        base.0,
                    ));
                }
                S1
            }
        };
        if fits_ls(disp) {
            return (reg, disp);
        }
        self.emit_mov_ri(S2, disp as i64);
        self.w(pack_r(
            opc::ALURRR,
            Width::W64.code(),
            S1.0,
            AluOp::Add.code(),
            reg.0,
            S2.0,
        ));
        (S1, 0)
    }
}

impl crate::masm::MacroAssembler for Ta64Assembler {
    fn new_label(&mut self) -> MLabel {
        self.labels.push(None);
        MLabel(self.labels.len() as u32 - 1)
    }

    fn bind(&mut self, label: MLabel) {
        self.labels[label.0 as usize] = Some(self.words.len());
    }

    fn offset(&self) -> usize {
        self.byte_offset()
    }

    fn mov_rr(&mut self, dst: Reg, src: Reg) {
        self.w(pack_r(opc::MOVRR, 0, dst.0, 0, src.0, 0));
    }

    fn mov_ri(&mut self, dst: Reg, imm: i64) {
        self.emit_mov_ri(dst, imm);
    }

    fn movk(&mut self, dst: Reg, imm16: u16, shift: u8) {
        self.w(pack_i16(opc::MOVK, shift, dst.0, imm16));
    }

    fn mov_sym(&mut self, dst: Reg, sym: SymbolRef) {
        let at = self.byte_offset();
        self.w(pack_i16(opc::MOVZ, 0, dst.0, 0));
        for shift in 1..4u8 {
            self.w(pack_i16(opc::MOVK, shift, dst.0, 0));
        }
        self.relocs.push(Reloc {
            offset: at,
            kind: RelocKind::MovSeqAbs64,
            sym,
            addend: 0,
        });
    }

    fn alu_rrr(&mut self, op: AluOp, width: Width, set_flags: bool, dst: Reg, a: Reg, b: Reg) {
        let aux = width.code() | (set_flags as u8) << 2;
        self.w(pack_r(opc::ALURRR, aux, dst.0, op.code(), a.0, b.0));
    }

    fn alu_rri(&mut self, op: AluOp, width: Width, set_flags: bool, dst: Reg, src: Reg, imm: i64) {
        if (-64..64).contains(&imm) {
            let aux = width.code() | (set_flags as u8) << 2;
            self.w(pack_rri(opc::ALURRI, aux, dst.0, op.code(), imm, src.0));
        } else {
            self.emit_mov_ri(S1, imm);
            self.alu_rrr(op, width, set_flags, dst, src, S1);
        }
    }

    fn mulfull(&mut self, dst_lo: Reg, dst_hi: Reg, a: Reg, b: Reg) {
        self.w(pack_r(opc::MULFULL, 0, dst_lo.0, dst_hi.0, a.0, b.0));
    }

    fn crc32(&mut self, dst: Reg, acc: Reg, data: Reg) {
        self.w(pack_r(opc::CRC32, 0, dst.0, 0, acc.0, data.0));
    }

    fn div(&mut self, signed: bool, rem: bool, width: Width, dst: Reg, a: Reg, b: Reg) {
        let aux = (signed as u8) | (rem as u8) << 1;
        self.w(pack_r(opc::DIV, aux, dst.0, width.code(), a.0, b.0));
    }

    fn sext(&mut self, from: Width, dst: Reg, src: Reg) {
        self.w(pack_r(opc::SEXT, from.code(), dst.0, 0, src.0, 0));
    }

    fn load(&mut self, width: Width, dst: Reg, base: Reg, index: Option<(Reg, u8)>, disp: i32) {
        let (b, d) = self.lower_addr(base, index, disp);
        self.w(pack_ls(opc::LOAD, width.code(), dst.0, d, b.0));
    }

    fn store(&mut self, width: Width, src: Reg, base: Reg, index: Option<(Reg, u8)>, disp: i32) {
        let (b, d) = self.lower_addr(base, index, disp);
        self.w(pack_ls(opc::STORE, width.code(), src.0, d, b.0));
    }

    fn fload(&mut self, dst: FReg, base: Reg, disp: i32) {
        let (b, d) = self.lower_addr(base, None, disp);
        self.w(pack_ls(opc::FLOAD, 0, dst.0, d, b.0));
    }

    fn fstore(&mut self, src: FReg, base: Reg, disp: i32) {
        let (b, d) = self.lower_addr(base, None, disp);
        self.w(pack_ls(opc::FSTORE, 0, src.0, d, b.0));
    }

    fn lea(&mut self, dst: Reg, base: Reg, index: Option<(Reg, u8)>, disp: i32) {
        let (b, d) = self.lower_addr(base, index, disp);
        if d == 0 {
            self.mov_rr(dst, b);
        } else if (-64..64).contains(&(d as i64)) {
            self.alu_rri(AluOp::Add, Width::W64, false, dst, b, d as i64);
        } else {
            self.emit_mov_ri(S2, d as i64);
            self.alu_rrr(AluOp::Add, Width::W64, false, dst, b, S2);
        }
    }

    fn cmp(&mut self, width: Width, a: Reg, b: Reg) {
        self.w(pack_r(opc::CMP, width.code(), 0, 0, a.0, b.0));
    }

    fn cmp_ri(&mut self, width: Width, a: Reg, imm: i64) {
        if let Ok(v) = i16::try_from(imm) {
            self.w(pack_i16(opc::CMPI, width.code(), a.0, v as u16));
        } else {
            self.emit_mov_ri(S1, imm);
            self.cmp(width, a, S1);
        }
    }

    fn setcc(&mut self, cond: Cond, dst: Reg) {
        self.w(pack_r(opc::SETCC, 0, dst.0, cond.code(), 0, 0));
    }

    fn jcc(&mut self, cond: Cond, label: MLabel) {
        self.fixups
            .push((self.words.len(), label.0, MFixupKind::Jcc));
        self.w((opc::JCC as u32) << 24 | (cond.code() as u32) << 20);
    }

    fn jmp(&mut self, label: MLabel) {
        self.fixups
            .push((self.words.len(), label.0, MFixupKind::Jmp));
        self.w((opc::JMP as u32) << 24);
    }

    fn trap(&mut self, code: u8) {
        self.w((opc::TRAP as u32) << 24 | code as u32);
    }

    fn call_abs(&mut self, addr: u64) {
        self.emit_mov_ri(S1, addr as i64);
        self.w(pack_r(opc::CALLIND, 0, S1.0, 0, 0, 0));
    }

    fn call_sym(&mut self, sym: SymbolRef) {
        let at = self.byte_offset();
        self.w((opc::BL as u32) << 24);
        self.relocs.push(Reloc {
            offset: at,
            kind: RelocKind::Rel24Words,
            sym,
            addend: 0,
        });
    }

    fn call_ind(&mut self, reg: Reg) {
        self.w(pack_r(opc::CALLIND, 0, reg.0, 0, 0, 0));
    }

    fn falu(&mut self, op: FaluOp, dst: FReg, a: FReg, b: FReg) {
        self.w(pack_r(opc::FALU, 0, dst.0, op.code(), a.0, b.0));
    }

    fn fcmp(&mut self, a: FReg, b: FReg) {
        self.w(pack_r(opc::FCMP, 0, 0, 0, a.0, b.0));
    }

    fn fmov(&mut self, dst: FReg, src: FReg) {
        self.w(pack_r(opc::FMOV, 0, dst.0, 0, src.0, 0));
    }

    fn fmov_from_gpr(&mut self, dst: FReg, src: Reg) {
        self.w(pack_r(opc::FMOVFG, 0, dst.0, 0, src.0, 0));
    }

    fn fmov_to_gpr(&mut self, dst: Reg, src: FReg) {
        self.w(pack_r(opc::FMOVTG, 0, dst.0, 0, src.0, 0));
    }

    fn cvt_si2f(&mut self, dst: FReg, src: Reg) {
        self.w(pack_r(opc::CVTSI2F, 0, dst.0, 0, src.0, 0));
    }

    fn cvt_f2si(&mut self, dst: Reg, src: FReg) {
        self.w(pack_r(opc::CVTF2SI, 0, dst.0, 0, src.0, 0));
    }

    fn ret(&mut self) {
        self.w((opc::RET as u32) << 24);
    }

    fn finish(self: Box<Self>) -> (Vec<u8>, Vec<Reloc>) {
        let mut me = *self;
        for &(site, label, kind) in &me.fixups {
            let target = me.labels[label as usize].expect("unbound TA64 label");
            let rel_words = target as i64 - (site as i64 + 1);
            match kind {
                MFixupKind::Jcc => {
                    assert!(
                        (-(1 << 15)..(1 << 15)).contains(&rel_words),
                        "TA64 jcc out of range"
                    );
                    me.words[site] |= (rel_words as u32) & 0xFFFF;
                }
                MFixupKind::Jmp => {
                    assert!(
                        (-(1 << 23)..(1 << 23)).contains(&rel_words),
                        "TA64 jmp out of range"
                    );
                    me.words[site] |= (rel_words as u32) & 0xFF_FFFF;
                }
            }
        }
        let mut bytes = Vec::with_capacity(me.words.len() * 4);
        for w in &me.words {
            bytes.extend_from_slice(&w.to_le_bytes());
        }
        (bytes, me.relocs)
    }
}
