//! The TX64 assembler and its variable-length binary encoding.
//!
//! TX64 is the paper's CISC stand-in: instructions are 1–10 bytes, ALU
//! operations are two-address (`dst op= src`), and comparisons set a
//! flags register. [`Tx64Assembler`] is the raw, ISA-specific interface
//! used by the DirectEmit back-end; the portable
//! [`crate::MacroAssembler`] wraps it for the shared emitter.

use crate::isa::{AluOp, Cond, FReg, FaluOp, MemArg, Reg, Width};
use crate::reloc::{Reloc, RelocKind, SymbolRef};

/// TX64 opcode bytes (also consumed by the decoder).
pub(crate) mod opc {
    pub const NOP: u8 = 0x00;
    pub const MOVRR: u8 = 0x01;
    pub const MOVRI32: u8 = 0x02;
    pub const MOVRI64: u8 = 0x03;
    pub const MOVK: u8 = 0x04;
    pub const ALURR: u8 = 0x05;
    pub const ALURI8: u8 = 0x06;
    pub const ALURI32: u8 = 0x07;
    pub const MULFULL: u8 = 0x08;
    pub const CRC32: u8 = 0x09;
    pub const DIV: u8 = 0x0A;
    pub const SEXT: u8 = 0x0B;
    pub const LOAD: u8 = 0x0C;
    pub const LOADX: u8 = 0x0D;
    pub const STORE: u8 = 0x0E;
    pub const STOREX: u8 = 0x0F;
    pub const LEA: u8 = 0x10;
    pub const LEAX: u8 = 0x11;
    pub const CMP: u8 = 0x12;
    pub const CMPI: u8 = 0x13;
    pub const SETCC: u8 = 0x14;
    pub const JCC: u8 = 0x15;
    pub const JMP: u8 = 0x16;
    pub const JMPIND: u8 = 0x17;
    pub const CALL: u8 = 0x18;
    pub const CALLIND: u8 = 0x19;
    pub const RET: u8 = 0x1A;
    pub const PUSH: u8 = 0x1B;
    pub const POP: u8 = 0x1C;
    pub const FALU: u8 = 0x1D;
    pub const FCMP: u8 = 0x1E;
    pub const FMOV: u8 = 0x1F;
    pub const FMOVFG: u8 = 0x20;
    pub const FMOVTG: u8 = 0x21;
    pub const CVTSI2F: u8 = 0x22;
    pub const CVTF2SI: u8 = 0x23;
    pub const FLOAD: u8 = 0x24;
    pub const FSTORE: u8 = 0x25;
    pub const TRAP: u8 = 0x26;
}

pub(crate) fn wsf(width: Width, set_flags: bool) -> u8 {
    width.code() | (set_flags as u8) << 2
}

/// A TX64 branch label handed out by [`Tx64Assembler::new_label`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TxLabel(pub(crate) u32);

/// Direct TX64 encoder with label fixups and relocation recording.
#[derive(Default, Debug)]
pub struct Tx64Assembler {
    code: Vec<u8>,
    relocs: Vec<Reloc>,
    labels: Vec<Option<usize>>,
    // (offset of the rel32 field, label) — displacement is relative to
    // the end of the field.
    fixups: Vec<(usize, u32)>,
}

impl Tx64Assembler {
    /// Creates an empty assembler.
    pub fn new() -> Tx64Assembler {
        Tx64Assembler::default()
    }

    /// Current emission offset in bytes.
    pub fn offset(&self) -> usize {
        self.code.len()
    }

    /// Allocates a fresh, unbound label.
    pub fn new_label(&mut self) -> TxLabel {
        self.labels.push(None);
        TxLabel(self.labels.len() as u32 - 1)
    }

    /// Binds `label` to the current offset.
    pub fn bind(&mut self, label: TxLabel) {
        self.labels[label.0 as usize] = Some(self.code.len());
    }

    fn b(&mut self, bytes: &[u8]) {
        self.code.extend_from_slice(bytes);
    }

    /// `nop`.
    pub fn nop(&mut self) {
        self.b(&[opc::NOP]);
    }

    /// `dst = src` (full 64 bits).
    pub fn mov_rr(&mut self, dst: Reg, src: Reg) {
        self.b(&[opc::MOVRR, dst.0, src.0]);
    }

    /// `dst = imm`, choosing the shortest encoding.
    pub fn mov_ri(&mut self, dst: Reg, imm: i64) {
        if let Ok(v) = i32::try_from(imm) {
            self.b(&[opc::MOVRI32, dst.0]);
            self.code.extend_from_slice(&v.to_le_bytes());
        } else {
            self.mov_ri64(dst, imm);
        }
    }

    /// `dst = imm` in the full 10-byte `movabs` form.
    pub fn mov_ri64(&mut self, dst: Reg, imm: i64) {
        self.b(&[opc::MOVRI64, dst.0]);
        self.code.extend_from_slice(&imm.to_le_bytes());
    }

    /// `movabs dst, @sym`: a 10-byte move patched with the absolute
    /// address of `sym` at link time.
    pub fn mov_ri64_sym(&mut self, dst: Reg, sym: SymbolRef) {
        let at = self.code.len();
        self.b(&[opc::MOVRI64, dst.0]);
        self.code.extend_from_slice(&0u64.to_le_bytes());
        self.relocs.push(Reloc {
            offset: at + 2,
            kind: RelocKind::Abs64,
            sym,
            addend: 0,
        });
    }

    /// Replaces bits `[16*shift, 16*shift+16)` of `dst` with `imm16`.
    pub fn movk(&mut self, dst: Reg, imm16: u16, shift: u8) {
        let [lo, hi] = imm16.to_le_bytes();
        self.b(&[opc::MOVK, dst.0, shift, lo, hi]);
    }

    /// Two-address ALU: `dst = dst op src` at `width`.
    pub fn alu_rr(&mut self, op: AluOp, width: Width, set_flags: bool, dst: Reg, src: Reg) {
        self.b(&[opc::ALURR, op.code(), wsf(width, set_flags), dst.0, src.0]);
    }

    /// `dst = dst op imm` with a 32-bit immediate field.
    pub fn alu_ri32(&mut self, op: AluOp, width: Width, set_flags: bool, dst: Reg, imm: i32) {
        self.b(&[opc::ALURI32, op.code(), wsf(width, set_flags), dst.0]);
        self.code.extend_from_slice(&imm.to_le_bytes());
    }

    /// `dst = dst op imm`, choosing the shortest immediate form and
    /// falling back to the reserved scratch for 64-bit immediates.
    pub fn alu_ri(&mut self, op: AluOp, width: Width, set_flags: bool, dst: Reg, imm: i64) {
        if let Ok(v) = i8::try_from(imm) {
            self.b(&[
                opc::ALURI8,
                op.code(),
                wsf(width, set_flags),
                dst.0,
                v as u8,
            ]);
        } else if let Ok(v) = i32::try_from(imm) {
            self.alu_ri32(op, width, set_flags, dst, v);
        } else {
            let scratch = crate::isa::TX64_ABI.scratch;
            debug_assert_ne!(dst, scratch, "64-bit alu_ri immediate needs the scratch");
            self.mov_ri64(scratch, imm);
            self.alu_rr(op, width, set_flags, dst, scratch);
        }
    }

    /// `(dst_lo, dst_hi) = a * b` as a full unsigned 64×64→128 product.
    pub fn mulfull(&mut self, dst_lo: Reg, dst_hi: Reg, a: Reg, b: Reg) {
        self.b(&[opc::MULFULL, dst_lo.0, dst_hi.0, a.0, b.0]);
    }

    /// `dst = crc32c(acc, data)` over all 8 data bytes.
    pub fn crc32(&mut self, dst: Reg, acc: Reg, data: Reg) {
        self.b(&[opc::CRC32, dst.0, acc.0, data.0]);
    }

    /// Division/remainder at `width`; traps on zero divisors and signed
    /// quotient overflow.
    pub fn div(&mut self, signed: bool, rem: bool, width: Width, dst: Reg, a: Reg, b: Reg) {
        let srw = (signed as u8) | (rem as u8) << 1 | width.code() << 2;
        self.b(&[opc::DIV, srw, dst.0, a.0, b.0]);
    }

    /// `dst = sign_extend(src from `from` bits)` to 64 bits.
    pub fn sext(&mut self, from: Width, dst: Reg, src: Reg) {
        self.b(&[opc::SEXT, from.code(), dst.0, src.0]);
    }

    fn mem_tail(&mut self, mem: MemArg) {
        match mem.index {
            None => {
                self.code.push(mem.base.0);
                self.code.extend_from_slice(&mem.disp.to_le_bytes());
            }
            Some((idx, scale)) => {
                // Synthetic ISA: any power-of-two scale encodes in the
                // byte (i128 columns use stride 16).
                debug_assert!(scale.is_power_of_two(), "bad scale {scale}");
                self.b(&[mem.base.0, idx.0, scale]);
                self.code.extend_from_slice(&mem.disp.to_le_bytes());
            }
        }
    }

    /// Zero-extending load of `width` bytes from `mem`.
    pub fn load(&mut self, width: Width, dst: Reg, mem: MemArg) {
        let op = if mem.index.is_some() {
            opc::LOADX
        } else {
            opc::LOAD
        };
        self.b(&[op, width.code(), dst.0]);
        self.mem_tail(mem);
    }

    /// Store of the low `width` bytes of `src` to `mem`.
    pub fn store(&mut self, width: Width, src: Reg, mem: MemArg) {
        let op = if mem.index.is_some() {
            opc::STOREX
        } else {
            opc::STORE
        };
        self.b(&[op, width.code(), src.0]);
        self.mem_tail(mem);
    }

    /// 64-bit float load.
    pub fn fload(&mut self, dst: FReg, mem: MemArg) {
        debug_assert!(mem.index.is_none(), "float loads are base+disp only");
        self.b(&[opc::FLOAD, dst.0, mem.base.0]);
        self.code.extend_from_slice(&mem.disp.to_le_bytes());
    }

    /// 64-bit float store.
    pub fn fstore(&mut self, src: FReg, mem: MemArg) {
        debug_assert!(mem.index.is_none(), "float stores are base+disp only");
        self.b(&[opc::FSTORE, src.0, mem.base.0]);
        self.code.extend_from_slice(&mem.disp.to_le_bytes());
    }

    /// `dst = effective address of mem` (no memory access).
    pub fn lea(&mut self, dst: Reg, mem: MemArg) {
        let op = if mem.index.is_some() {
            opc::LEAX
        } else {
            opc::LEA
        };
        self.b(&[op, dst.0]);
        self.mem_tail(mem);
    }

    /// Flag-setting compare `a - b` at `width`.
    pub fn cmp_rr(&mut self, width: Width, a: Reg, b: Reg) {
        self.b(&[opc::CMP, width.code(), a.0, b.0]);
    }

    /// Flag-setting compare against an immediate.
    pub fn cmp_ri(&mut self, width: Width, a: Reg, imm: i64) {
        if let Ok(v) = i32::try_from(imm) {
            self.b(&[opc::CMPI, width.code(), a.0]);
            self.code.extend_from_slice(&v.to_le_bytes());
        } else {
            let scratch = crate::isa::TX64_ABI.scratch;
            debug_assert_ne!(a, scratch, "64-bit cmp_ri immediate needs the scratch");
            self.mov_ri64(scratch, imm);
            self.cmp_rr(width, a, scratch);
        }
    }

    /// `dst = cond ? 1 : 0`.
    pub fn setcc(&mut self, cond: Cond, dst: Reg) {
        self.b(&[opc::SETCC, cond.code(), dst.0]);
    }

    /// Conditional branch to `label`.
    pub fn jcc(&mut self, cond: Cond, label: TxLabel) {
        self.b(&[opc::JCC, cond.code()]);
        self.fixups.push((self.code.len(), label.0));
        self.code.extend_from_slice(&0i32.to_le_bytes());
    }

    /// Unconditional branch to `label`.
    pub fn jmp(&mut self, label: TxLabel) {
        self.b(&[opc::JMP]);
        self.fixups.push((self.code.len(), label.0));
        self.code.extend_from_slice(&0i32.to_le_bytes());
    }

    /// `call @sym`: a 5-byte relative call patched at link time (with a
    /// thunk if the target is out of the ±2 GiB range).
    pub fn call_sym(&mut self, sym: SymbolRef) {
        let at = self.code.len();
        self.b(&[opc::CALL]);
        self.code.extend_from_slice(&0i32.to_le_bytes());
        self.relocs.push(Reloc {
            offset: at + 1,
            kind: RelocKind::Rel32,
            sym,
            addend: 0,
        });
    }

    /// Indirect call through `reg`.
    pub fn call_ind(&mut self, reg: Reg) {
        self.b(&[opc::CALLIND, reg.0]);
    }

    /// Return to the caller (shadow call stack).
    pub fn ret(&mut self) {
        self.b(&[opc::RET]);
    }

    /// `sp -= 8; [sp] = src`.
    pub fn push(&mut self, src: Reg) {
        self.b(&[opc::PUSH, src.0]);
    }

    /// `dst = [sp]; sp += 8`.
    pub fn pop(&mut self, dst: Reg) {
        self.b(&[opc::POP, dst.0]);
    }

    /// Float arithmetic `dst = a op b`.
    pub fn falu(&mut self, op: FaluOp, dst: FReg, a: FReg, b: FReg) {
        self.b(&[opc::FALU, op.code(), dst.0, a.0, b.0]);
    }

    /// Float compare, setting integer flags (unordered sets none).
    pub fn fcmp(&mut self, a: FReg, b: FReg) {
        self.b(&[opc::FCMP, a.0, b.0]);
    }

    /// Float register move.
    pub fn fmov(&mut self, dst: FReg, src: FReg) {
        self.b(&[opc::FMOV, dst.0, src.0]);
    }

    /// Bit-move of a GPR into a float register.
    pub fn fmov_from_gpr(&mut self, dst: FReg, src: Reg) {
        self.b(&[opc::FMOVFG, dst.0, src.0]);
    }

    /// Bit-move of a float register into a GPR.
    pub fn fmov_to_gpr(&mut self, dst: Reg, src: FReg) {
        self.b(&[opc::FMOVTG, dst.0, src.0]);
    }

    /// `dst = (double)(signed)src`.
    pub fn cvt_si2f(&mut self, dst: FReg, src: Reg) {
        self.b(&[opc::CVTSI2F, dst.0, src.0]);
    }

    /// `dst = (i64)src`, trapping on NaN or out-of-range values.
    pub fn cvt_f2si(&mut self, dst: Reg, src: FReg) {
        self.b(&[opc::CVTF2SI, dst.0, src.0]);
    }

    /// Unconditional trap with `code` (0 = unreachable, 1 = overflow).
    pub fn trap(&mut self, code: u8) {
        self.b(&[opc::TRAP, code]);
    }

    /// Resolves all label fixups and returns `(code, relocations)`.
    ///
    /// # Panics
    /// Panics if a referenced label was never bound.
    pub fn finish(mut self) -> (Vec<u8>, Vec<Reloc>) {
        for &(field, label) in &self.fixups {
            let target = self.labels[label as usize].expect("unbound TX64 label");
            let rel = target as i64 - (field as i64 + 4);
            let rel = i32::try_from(rel).expect("TX64 branch out of range");
            self.code[field..field + 4].copy_from_slice(&rel.to_le_bytes());
        }
        (self.code, self.relocs)
    }
}
