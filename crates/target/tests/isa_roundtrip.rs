//! Property tests for the target subsystem: `decode_inst` inverts both
//! assemblers, and the linker correctly wires calls to external symbols
//! supplied by the resolver.

use proptest::prelude::*;
use qc_target::{
    decode_inst, runtime_addr, AluOp, Cond, DecodedInst, Emulator, FReg, FaluOp, ImageBuilder, Isa,
    MemArg, Reentry, Reg, RuntimeDispatch, SymbolRef, Trap, Tx64Assembler, Width, TA64_ABI,
    TX64_ABI,
};

// Operand strategies kept inside both ISAs' single-instruction
// encodings: registers below every reserved/scratch register, ALU
// immediates within TA64's imm7, displacements within disp11.

fn reg() -> impl Strategy<Value = Reg> {
    (0u8..14).prop_map(Reg)
}

fn freg() -> impl Strategy<Value = FReg> {
    (0u8..8).prop_map(FReg)
}

fn width() -> impl Strategy<Value = Width> {
    prop_oneof![
        Just(Width::W8),
        Just(Width::W16),
        Just(Width::W32),
        Just(Width::W64)
    ]
}

fn alu_op() -> impl Strategy<Value = AluOp> {
    prop_oneof![
        Just(AluOp::Add),
        Just(AluOp::Sub),
        Just(AluOp::Adc),
        Just(AluOp::Sbb),
        Just(AluOp::Mul),
        Just(AluOp::And),
        Just(AluOp::Or),
        Just(AluOp::Xor),
        Just(AluOp::Shl),
        Just(AluOp::Shr),
        Just(AluOp::Sar),
        Just(AluOp::Rotr),
    ]
}

fn falu_op() -> impl Strategy<Value = FaluOp> {
    prop_oneof![
        Just(FaluOp::Add),
        Just(FaluOp::Sub),
        Just(FaluOp::Mul),
        Just(FaluOp::Div)
    ]
}

fn cond() -> impl Strategy<Value = Cond> {
    prop_oneof![
        Just(Cond::Eq),
        Just(Cond::Ne),
        Just(Cond::Lt),
        Just(Cond::Le),
        Just(Cond::Gt),
        Just(Cond::Ge),
        Just(Cond::B),
        Just(Cond::Be),
        Just(Cond::A),
        Just(Cond::Ae),
        Just(Cond::O),
        Just(Cond::No),
    ]
}

/// Instructions that encode to exactly one machine instruction on both
/// ISAs, as the expected decode results.
fn inst() -> impl Strategy<Value = DecodedInst> {
    prop_oneof![
        Just(DecodedInst::Nop),
        (reg(), reg()).prop_map(|(dst, src)| DecodedInst::MovRR { dst, src }),
        (reg(), 0i64..32_768).prop_map(|(dst, imm)| DecodedInst::MovRI { dst, imm }),
        (reg(), any::<u16>(), 1u8..4).prop_map(|(dst, imm16, shift)| DecodedInst::MovK {
            dst,
            imm16,
            shift
        }),
        (alu_op(), width(), any::<bool>(), reg(), reg(), reg()).prop_map(
            |(op, width, set_flags, dst, src1, src2)| DecodedInst::Alu {
                op,
                width,
                set_flags,
                dst,
                src1,
                src2
            }
        ),
        (alu_op(), width(), any::<bool>(), reg(), reg(), -64i64..64).prop_map(
            |(op, width, set_flags, dst, src1, imm)| DecodedInst::AluImm {
                op,
                width,
                set_flags,
                dst,
                src1,
                imm
            }
        ),
        (reg(), reg(), reg(), reg()).prop_map(|(dst_lo, dst_hi, a, b)| DecodedInst::MulFull {
            dst_lo,
            dst_hi,
            a,
            b
        }),
        (reg(), reg(), reg()).prop_map(|(dst, acc, data)| DecodedInst::Crc32 { dst, acc, data }),
        (any::<bool>(), any::<bool>(), width(), reg(), reg(), reg()).prop_map(
            |(signed, rem, width, dst, a, b)| DecodedInst::Div {
                signed,
                rem,
                width,
                dst,
                a,
                b
            }
        ),
        (
            prop_oneof![Just(Width::W8), Just(Width::W16), Just(Width::W32)],
            reg(),
            reg()
        )
            .prop_map(|(from, dst, src)| DecodedInst::Sext { from, dst, src }),
        (width(), reg(), reg(), -1000i32..1000).prop_map(|(width, dst, base, disp)| {
            DecodedInst::Load {
                width,
                dst,
                mem: MemArg {
                    base,
                    index: None,
                    disp,
                },
            }
        }),
        (width(), reg(), reg(), -1000i32..1000).prop_map(|(width, src, base, disp)| {
            DecodedInst::Store {
                width,
                src,
                mem: MemArg {
                    base,
                    index: None,
                    disp,
                },
            }
        }),
        (width(), reg(), reg()).prop_map(|(width, a, b)| DecodedInst::Cmp { width, a, b }),
        (width(), reg(), -1000i64..1000).prop_map(|(width, a, imm)| DecodedInst::CmpImm {
            width,
            a,
            imm
        }),
        (cond(), reg()).prop_map(|(cond, dst)| DecodedInst::SetCc { cond, dst }),
        (reg()).prop_map(|reg| DecodedInst::CallInd { reg }),
        Just(DecodedInst::Ret),
        (falu_op(), freg(), freg(), freg()).prop_map(|(op, dst, a, b)| DecodedInst::Falu {
            op,
            dst,
            a,
            b
        }),
        (freg(), freg()).prop_map(|(a, b)| DecodedInst::FCmp { a, b }),
        (freg(), freg()).prop_map(|(dst, src)| DecodedInst::FMov { dst, src }),
        (freg(), reg()).prop_map(|(dst, src)| DecodedInst::FMovFromGpr { dst, src }),
        (reg(), freg()).prop_map(|(dst, src)| DecodedInst::FMovToGpr { dst, src }),
        (freg(), reg()).prop_map(|(dst, src)| DecodedInst::CvtSiToF { dst, src }),
        (reg(), freg()).prop_map(|(dst, src)| DecodedInst::CvtFToSi { dst, src }),
        (freg(), reg(), -1000i32..1000).prop_map(|(dst, base, disp)| DecodedInst::FLoad {
            dst,
            mem: MemArg {
                base,
                index: None,
                disp
            }
        }),
        (freg(), reg(), -1000i32..1000).prop_map(|(src, base, disp)| DecodedInst::FStore {
            src,
            mem: MemArg {
                base,
                index: None,
                disp
            }
        }),
        (any::<u8>()).prop_map(|code| DecodedInst::Trap { code }),
    ]
}

/// Emits `i` through the raw TX64 encoder.
fn emit_tx64(asm: &mut Tx64Assembler, i: &DecodedInst) {
    match *i {
        DecodedInst::Nop => asm.nop(),
        DecodedInst::MovRR { dst, src } => asm.mov_rr(dst, src),
        DecodedInst::MovRI { dst, imm } => asm.mov_ri(dst, imm),
        DecodedInst::MovK { dst, imm16, shift } => asm.movk(dst, imm16, shift),
        DecodedInst::Alu {
            op,
            width,
            set_flags,
            dst,
            src2,
            ..
        } => {
            // TX64 ALU is two-address: src1 is always dst.
            asm.alu_rr(op, width, set_flags, dst, src2)
        }
        DecodedInst::AluImm {
            op,
            width,
            set_flags,
            dst,
            imm,
            ..
        } => asm.alu_ri(op, width, set_flags, dst, imm),
        DecodedInst::MulFull {
            dst_lo,
            dst_hi,
            a,
            b,
        } => asm.mulfull(dst_lo, dst_hi, a, b),
        DecodedInst::Crc32 { dst, acc, data } => asm.crc32(dst, acc, data),
        DecodedInst::Div {
            signed,
            rem,
            width,
            dst,
            a,
            b,
        } => asm.div(signed, rem, width, dst, a, b),
        DecodedInst::Sext { from, dst, src } => asm.sext(from, dst, src),
        DecodedInst::Load { width, dst, mem } => asm.load(width, dst, mem),
        DecodedInst::Store { width, src, mem } => asm.store(width, src, mem),
        DecodedInst::Cmp { width, a, b } => asm.cmp_rr(width, a, b),
        DecodedInst::CmpImm { width, a, imm } => asm.cmp_ri(width, a, imm),
        DecodedInst::SetCc { cond, dst } => asm.setcc(cond, dst),
        DecodedInst::CallInd { reg } => asm.call_ind(reg),
        DecodedInst::Ret => asm.ret(),
        DecodedInst::Falu { op, dst, a, b } => asm.falu(op, dst, a, b),
        DecodedInst::FCmp { a, b } => asm.fcmp(a, b),
        DecodedInst::FMov { dst, src } => asm.fmov(dst, src),
        DecodedInst::FMovFromGpr { dst, src } => asm.fmov_from_gpr(dst, src),
        DecodedInst::FMovToGpr { dst, src } => asm.fmov_to_gpr(dst, src),
        DecodedInst::CvtSiToF { dst, src } => asm.cvt_si2f(dst, src),
        DecodedInst::CvtFToSi { dst, src } => asm.cvt_f2si(dst, src),
        DecodedInst::FLoad { dst, mem } => asm.fload(dst, mem),
        DecodedInst::FStore { src, mem } => asm.fstore(src, mem),
        DecodedInst::Trap { code } => asm.trap(code),
        _ => unreachable!("strategy produced an unsupported instruction"),
    }
}

/// Emits `i` through the TA64 macro-assembler (every generated form is
/// a single 4-byte word).
fn emit_ta64(asm: &mut dyn qc_target::MacroAssembler, i: &DecodedInst) {
    match *i {
        DecodedInst::Nop => {
            // The portable interface has no explicit nop; TA64 encodes
            // one as `mov r0, r0` — skip (handled by caller filter).
            unreachable!("nop filtered out for TA64")
        }
        DecodedInst::MovRR { dst, src } => asm.mov_rr(dst, src),
        DecodedInst::MovRI { dst, imm } => asm.mov_ri(dst, imm),
        DecodedInst::MovK { dst, imm16, shift } => asm.movk(dst, imm16, shift),
        DecodedInst::Alu {
            op,
            width,
            set_flags,
            dst,
            src1,
            src2,
        } => asm.alu_rrr(op, width, set_flags, dst, src1, src2),
        DecodedInst::AluImm {
            op,
            width,
            set_flags,
            dst,
            src1,
            imm,
        } => asm.alu_rri(op, width, set_flags, dst, src1, imm),
        DecodedInst::MulFull {
            dst_lo,
            dst_hi,
            a,
            b,
        } => asm.mulfull(dst_lo, dst_hi, a, b),
        DecodedInst::Crc32 { dst, acc, data } => asm.crc32(dst, acc, data),
        DecodedInst::Div {
            signed,
            rem,
            width,
            dst,
            a,
            b,
        } => asm.div(signed, rem, width, dst, a, b),
        DecodedInst::Sext { from, dst, src } => asm.sext(from, dst, src),
        DecodedInst::Load { width, dst, mem } => {
            asm.load(width, dst, mem.base, mem.index, mem.disp)
        }
        DecodedInst::Store { width, src, mem } => {
            asm.store(width, src, mem.base, mem.index, mem.disp)
        }
        DecodedInst::Cmp { width, a, b } => asm.cmp(width, a, b),
        DecodedInst::CmpImm { width, a, imm } => asm.cmp_ri(width, a, imm),
        DecodedInst::SetCc { cond, dst } => asm.setcc(cond, dst),
        DecodedInst::CallInd { reg } => asm.call_ind(reg),
        DecodedInst::Ret => asm.ret(),
        DecodedInst::Falu { op, dst, a, b } => asm.falu(op, dst, a, b),
        DecodedInst::FCmp { a, b } => asm.fcmp(a, b),
        DecodedInst::FMov { dst, src } => asm.fmov(dst, src),
        DecodedInst::FMovFromGpr { dst, src } => asm.fmov_from_gpr(dst, src),
        DecodedInst::FMovToGpr { dst, src } => asm.fmov_to_gpr(dst, src),
        DecodedInst::CvtSiToF { dst, src } => asm.cvt_si2f(dst, src),
        DecodedInst::CvtFToSi { dst, src } => asm.cvt_f2si(dst, src),
        DecodedInst::FLoad { dst, mem } => asm.fload(dst, mem.base, mem.disp),
        DecodedInst::FStore { src, mem } => asm.fstore(src, mem.base, mem.disp),
        DecodedInst::Trap { code } => asm.trap(code),
        _ => unreachable!("strategy produced an unsupported instruction"),
    }
}

fn decode_all(isa: Isa, code: &[u8]) -> Vec<DecodedInst> {
    let mut out = Vec::new();
    let mut off = 0;
    while off < code.len() {
        let (inst, len) =
            decode_inst(isa, code, off).unwrap_or_else(|e| panic!("decode failed: {e}"));
        out.push(inst);
        off += len as usize;
    }
    out
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn tx64_decode_inverts_encode(insts in prop::collection::vec(inst(), 1..40)) {
        // TX64 ALU forms are two-address: the decoded src1 is the
        // destination, so normalize the expectation.
        let insts: Vec<DecodedInst> = insts
            .into_iter()
            .map(|i| match i {
                DecodedInst::Alu { op, width, set_flags, dst, src2, .. } => {
                    DecodedInst::Alu { op, width, set_flags, dst, src1: dst, src2 }
                }
                DecodedInst::AluImm { op, width, set_flags, dst, imm, .. } => {
                    DecodedInst::AluImm { op, width, set_flags, dst, src1: dst, imm }
                }
                other => other,
            })
            .collect();
        let mut asm = Tx64Assembler::new();
        for i in &insts {
            emit_tx64(&mut asm, i);
        }
        let (code, relocs) = asm.finish();
        prop_assert!(relocs.is_empty());
        let decoded = decode_all(Isa::Tx64, &code);
        prop_assert_eq!(decoded, insts);
    }

    #[test]
    fn ta64_decode_inverts_encode(insts in prop::collection::vec(inst(), 1..40)) {
        // TA64 has no dedicated nop encoding in the portable interface.
        let insts: Vec<DecodedInst> =
            insts.into_iter().filter(|i| !matches!(i, DecodedInst::Nop)).collect();
        let mut asm = qc_target::new_masm(Isa::Ta64);
        for i in &insts {
            emit_ta64(asm.as_mut(), i);
        }
        let (code, relocs) = asm.finish();
        prop_assert!(relocs.is_empty());
        prop_assert_eq!(code.len(), insts.len() * 4, "each form must be one word");
        let decoded = decode_all(Isa::Ta64, &code);
        prop_assert_eq!(decoded, insts);
    }
}

/// Host that serves external helper calls for the linker property test.
struct AddHost;

impl RuntimeDispatch for AddHost {
    fn arg_slots(&self, _index: usize) -> usize {
        2
    }

    fn runtime_cost(&self, _index: usize, _args: &[u64]) -> u64 {
        1
    }

    fn call_runtime(
        &mut self,
        index: usize,
        args: &[u64],
        _reentry: Reentry<'_>,
    ) -> Result<[u64; 2], Trap> {
        Ok([args[0].wrapping_add(args[1]).wrapping_add(index as u64), 0])
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Calls through resolver-supplied external symbols must reach the
    /// runtime with their arguments intact, on both ISAs.
    #[test]
    fn linker_routes_external_symbols(
        x in any::<u64>(),
        y in any::<u64>(),
        index in 0usize..64,
    ) {
        for isa in [Isa::Tx64, Isa::Ta64] {
            let abi = match isa {
                Isa::Tx64 => &TX64_ABI,
                Isa::Ta64 => &TA64_ABI,
            };
            let mut asm = qc_target::new_masm(isa);
            // fn f(a, b) = ext(a, b): a tail-position call through the
            // resolver-provided address.
            asm.call_sym(SymbolRef::named("ext_helper"));
            asm.mov_rr(abi.ret, abi.ret);
            asm.ret();
            let (code, relocs) = asm.finish();
            prop_assert!(!relocs.is_empty(), "external call must produce a relocation");

            let mut builder = ImageBuilder::new(isa);
            builder.add_function("f", code, relocs);
            let image = builder
                .link(&|sym| (sym == "ext_helper").then(|| runtime_addr(index)))
                .unwrap_or_else(|e| panic!("{isa}: link failed: {e}"));

            let mut emu = Emulator::new(image);
            let mut host = AddHost;
            let got = emu
                .call(&mut host, "f", &[x, y])
                .unwrap_or_else(|t| panic!("{isa}: trapped: {t}"));
            prop_assert_eq!(got[0], x.wrapping_add(y).wrapping_add(index as u64));
        }
    }

    /// A relocation against a symbol the resolver does not know must
    /// surface as `LinkError::Unresolved` naming the symbol.
    #[test]
    fn unresolved_symbols_name_the_culprit(seed in any::<u8>()) {
        let isa = if seed & 1 == 0 { Isa::Tx64 } else { Isa::Ta64 };
        let mut asm = qc_target::new_masm(isa);
        asm.call_sym(SymbolRef::named("missing_helper"));
        asm.ret();
        let (code, relocs) = asm.finish();
        let mut builder = ImageBuilder::new(isa);
        builder.add_function("f", code, relocs);
        let err = builder.link(&|_| None).expect_err("link must fail");
        prop_assert!(err.to_string().contains("missing_helper"));
    }
}
