//! The 103-query TPC-DS-shaped suite (procedurally generated).

use crate::BenchQuery;
use qc_plan::{col, lit_dec, lit_i32, lit_i64, lit_str, AggFunc, Expr, PlanNode};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

const CATEGORIES: [&str; 10] = [
    "Books",
    "Electronics",
    "Home",
    "Jewelry",
    "Men",
    "Music",
    "Shoes",
    "Sports",
    "Children",
    "Women",
];
const STATES: [&str; 8] = ["TN", "CA", "TX", "NY", "WA", "GA", "OH", "IL"];

struct Fact {
    table: &'static str,
    prefix: &'static str,
}

const FACTS: [Fact; 3] = [
    Fact {
        table: "store_sales",
        prefix: "ss",
    },
    Fact {
        table: "catalog_sales",
        prefix: "cs",
    },
    Fact {
        table: "web_sales",
        prefix: "ws",
    },
];

/// Builds the 103 deterministic TPC-DS-shaped queries.
pub fn dslike_suite() -> Vec<BenchQuery> {
    (0..103)
        .map(|i| BenchQuery {
            name: format!("DS{i:03}"),
            plan: gen_query(i),
        })
        .collect()
}

#[allow(clippy::too_many_lines)]
fn gen_query(index: usize) -> PlanNode {
    let mut rng = StdRng::seed_from_u64(0xD5_0000 + index as u64);
    let fact = &FACTS[rng.gen_range(0..FACTS.len())];
    let c = |n: &str| format!("{}_{n}", fact.prefix);

    // Fact columns always loaded.
    let item_sk = c("item_sk");
    let cust_sk = c("customer_sk");
    let store_sk = c("store_sk");
    let date_sk = c("sold_date_sk");
    let promo_sk = c("promo_sk");
    let qty = c("quantity");
    let price = c("sales_price");
    let ext = c("ext_sales_price");
    let cost = c("wholesale_cost");
    let profit = c("net_profit");
    let all_cols: Vec<&str> = vec![
        &item_sk, &cust_sk, &store_sk, &date_sk, &promo_sk, &qty, &price, &ext, &cost, &profit,
    ];

    // Fact predicates (0–3).
    let mut preds: Vec<Expr> = Vec::new();
    for _ in 0..rng.gen_range(0..=3u32) {
        preds.push(match rng.gen_range(0..4u32) {
            0 => col(&qty).gt(lit_i32(rng.gen_range(5..60))),
            1 => col(&price).lt(lit_dec(rng.gen_range(5_000..28_000), 2)),
            2 => col(&profit).gt(lit_dec(rng.gen_range(0..100_000), 2)),
            _ => col(&cost).le(lit_dec(rng.gen_range(2_000..25_000), 2)),
        });
    }
    let filter = preds.into_iter().reduce(Expr::and);
    let mut plan = match filter {
        Some(f) => PlanNode::scan_filtered(fact.table, &all_cols, f),
        None => PlanNode::scan(fact.table, &all_cols),
    };

    // Dimension joins (1–3 distinct dimensions).
    let mut group_candidates: Vec<String> = Vec::new();
    let mut dims: Vec<u32> = (0..5u32).collect();
    for _ in 0..rng.gen_range(1..=3u32) {
        let pick = dims.remove(rng.gen_range(0..dims.len()));
        match pick {
            0 => {
                let mut dim =
                    PlanNode::scan("item", &["i_item_sk", "i_category", "i_current_price"]);
                if rng.gen_bool(0.5) {
                    let cat = CATEGORIES[rng.gen_range(0..CATEGORIES.len())];
                    dim = dim.filter(col("i_category").eq(lit_str(cat)));
                }
                plan = plan.hash_join(dim, &[&item_sk], &["i_item_sk"], &["i_category"]);
                group_candidates.push("i_category".into());
            }
            1 => {
                let mut dim = PlanNode::scan("date_dim", &["d_date_sk", "d_year", "d_moy"]);
                if rng.gen_bool(0.6) {
                    let y = rng.gen_range(1998..2003);
                    dim = dim.filter(col("d_year").eq(lit_i32(y)));
                }
                plan = plan.hash_join(dim, &[&date_sk], &["d_date_sk"], &["d_year", "d_moy"]);
                group_candidates.push("d_moy".into());
            }
            2 => {
                let dim = PlanNode::scan("store", &["s_store_sk", "s_state"]);
                plan = plan.hash_join(dim, &[&store_sk], &["s_store_sk"], &["s_state"]);
                group_candidates.push("s_state".into());
            }
            3 => {
                let mut dim = PlanNode::scan(
                    "customer_ds",
                    &["c_customer_sk", "c_birth_year", "c_preferred"],
                );
                if rng.gen_bool(0.4) {
                    dim = dim.filter(col("c_birth_year").lt(lit_i32(1975)));
                }
                plan = plan.hash_join(dim, &[&cust_sk], &["c_customer_sk"], &["c_birth_year"]);
                group_candidates.push("c_birth_year".into());
            }
            _ => {
                let dim = PlanNode::scan("promotion", &["p_promo_sk", "p_channel_email"]).filter(
                    col("p_channel_email")
                        .eq(lit_str(STATES[0]))
                        .or(col("p_channel_email").eq(lit_str("Y"))),
                );
                plan = plan.hash_join(dim, &[&promo_sk], &["p_promo_sk"], &["p_channel_email"]);
                group_candidates.push("p_channel_email".into());
            }
        }
    }

    // Computed revenue column (decimal arithmetic with overflow checks).
    plan = plan.map(vec![(
        "margin",
        col(&ext)
            .mul(lit_dec(100, 2))
            .sub(col(&cost).mul(lit_dec(100, 2))),
    )]);

    // Aggregation.
    let nkeys = rng.gen_range(1..=group_candidates.len().min(2));
    let keys: Vec<&str> = group_candidates
        .iter()
        .take(nkeys)
        .map(String::as_str)
        .collect();
    let mut aggs: Vec<(&str, AggFunc)> = vec![("n", AggFunc::CountStar)];
    if rng.gen_bool(0.9) {
        aggs.push(("total_ext", AggFunc::Sum(col(&ext))));
    }
    if rng.gen_bool(0.6) {
        aggs.push(("total_margin", AggFunc::Sum(col("margin"))));
    }
    if rng.gen_bool(0.5) {
        aggs.push(("max_profit", AggFunc::Max(col(&profit))));
    }
    if rng.gen_bool(0.4) {
        aggs.push(("avg_qty", AggFunc::Avg(col(&qty))));
    }
    if rng.gen_bool(0.3) {
        aggs.push(("min_price", AggFunc::Min(col(&price))));
    }
    plan = plan.group_by(&keys, aggs);

    // Optional top-k sort (ties broken by the group keys for determinism).
    if rng.gen_bool(0.7) {
        let mut sort_keys: Vec<(&str, bool)> = vec![("n", false)];
        for k in &keys {
            sort_keys.push((k, true));
        }
        let limit = if rng.gen_bool(0.5) {
            Some(rng.gen_range(5..50))
        } else {
            None
        };
        plan = plan.sort(&sort_keys, limit);
    }

    // Occasionally a post-aggregation filter (HAVING).
    if rng.gen_bool(0.25) {
        plan = plan.filter(col("n").gt(lit_i64(1)));
    }
    plan
}
