//! The 22-query TPC-H-shaped suite.

use crate::BenchQuery;
use qc_plan::{col, lit_dec, lit_i32, lit_str, AggFunc, PlanNode};

fn q(name: &str, plan: PlanNode) -> BenchQuery {
    BenchQuery {
        name: name.to_string(),
        plan,
    }
}

/// Builds the 22 TPC-H-shaped queries.
// One commented `push` per query reads better than a single 400-line
// `vec![]` literal.
#[allow(clippy::too_many_lines, clippy::vec_init_then_push)]
pub fn hlike_suite() -> Vec<BenchQuery> {
    let mut out = Vec::new();

    // H01: pricing summary report — the classic scan + wide aggregation.
    out.push(q(
        "H01",
        PlanNode::scan_filtered(
            "lineitem",
            &[
                "l_returnflag",
                "l_linestatus",
                "l_quantity",
                "l_extendedprice",
                "l_discount",
                "l_tax",
            ],
            col("l_shipdate").le(lit_i32(10_300)),
        )
        .map(vec![(
            "disc_price",
            col("l_extendedprice").mul(lit_dec(100, 2).sub(col("l_discount"))),
        )])
        .map(vec![(
            "charge",
            col("disc_price").mul(lit_dec(10_000, 4).add(col("l_tax").mul(lit_dec(100, 2)))),
        )])
        .group_by(
            &["l_returnflag", "l_linestatus"],
            vec![
                ("sum_qty", AggFunc::Sum(col("l_quantity"))),
                ("sum_base", AggFunc::Sum(col("l_extendedprice"))),
                ("sum_disc", AggFunc::Sum(col("disc_price"))),
                ("avg_qty", AggFunc::Avg(col("l_quantity"))),
                ("avg_price", AggFunc::Avg(col("l_extendedprice"))),
                ("n", AggFunc::CountStar),
            ],
        )
        .sort(&[("l_returnflag", true), ("l_linestatus", true)], None),
    ));

    // H03: shipping priority — join chain + group + top-k.
    out.push(q(
        "H03",
        PlanNode::scan_filtered(
            "lineitem",
            &["l_orderkey", "l_extendedprice", "l_discount"],
            col("l_shipdate").gt(lit_i32(9_200)),
        )
        .hash_join(
            PlanNode::scan(
                "orders",
                &["o_orderkey", "o_custkey", "o_orderdate", "o_shippriority"],
            )
            .filter(col("o_orderdate").lt(lit_i32(9_200)))
            .hash_join(
                PlanNode::scan("customer", &["c_custkey", "c_mktsegment"])
                    .filter(col("c_mktsegment").eq(lit_str("BUILDING"))),
                &["o_custkey"],
                &["c_custkey"],
                &[],
            ),
            &["l_orderkey"],
            &["o_orderkey"],
            &["o_orderdate", "o_shippriority"],
        )
        .map(vec![(
            "rev",
            col("l_extendedprice").mul(lit_dec(100, 2).sub(col("l_discount"))),
        )])
        .group_by(
            &["l_orderkey", "o_orderdate", "o_shippriority"],
            vec![("revenue", AggFunc::Sum(col("rev")))],
        )
        .sort(&[("revenue", false), ("l_orderkey", true)], Some(10)),
    ));

    // H04: order priority checking.
    out.push(q(
        "H04",
        PlanNode::scan("orders", &["o_orderpriority", "o_orderdate"])
            .filter(
                col("o_orderdate")
                    .ge(lit_i32(9_000))
                    .and(col("o_orderdate").lt(lit_i32(9_090))),
            )
            .group_by(&["o_orderpriority"], vec![("n", AggFunc::CountStar)])
            .sort(&[("o_orderpriority", true)], None),
    ));

    // H05: local supplier volume — long join chain.
    out.push(q(
        "H05",
        PlanNode::scan(
            "lineitem",
            &["l_orderkey", "l_suppkey", "l_extendedprice", "l_discount"],
        )
        .hash_join(
            PlanNode::scan("orders", &["o_orderkey", "o_orderdate"])
                .filter(col("o_orderdate").lt(lit_i32(9_500))),
            &["l_orderkey"],
            &["o_orderkey"],
            &[],
        )
        .hash_join(
            PlanNode::scan("supplier", &["s_suppkey", "s_nationkey"]),
            &["l_suppkey"],
            &["s_suppkey"],
            &["s_nationkey"],
        )
        .hash_join(
            PlanNode::scan("nation", &["n_nationkey", "n_name", "n_regionkey"]).hash_join(
                PlanNode::scan("region", &["r_regionkey", "r_name"])
                    .filter(col("r_name").eq(lit_str("ASIA"))),
                &["n_regionkey"],
                &["r_regionkey"],
                &[],
            ),
            &["s_nationkey"],
            &["n_nationkey"],
            &["n_name"],
        )
        .map(vec![(
            "rev",
            col("l_extendedprice").mul(lit_dec(100, 2).sub(col("l_discount"))),
        )])
        .group_by(&["n_name"], vec![("revenue", AggFunc::Sum(col("rev")))])
        .sort(&[("revenue", false), ("n_name", true)], None),
    ));

    // H06: forecasting revenue change — pure filter + aggregate.
    out.push(q(
        "H06",
        PlanNode::scan_filtered(
            "lineitem",
            &["l_extendedprice", "l_discount", "l_quantity"],
            col("l_shipdate")
                .ge(lit_i32(9_000))
                .and(col("l_shipdate").lt(lit_i32(9_365)))
                .and(col("l_discount").ge(lit_dec(5, 2)))
                .and(col("l_discount").le(lit_dec(7, 2)))
                .and(col("l_quantity").lt(lit_dec(2_400, 2))),
        )
        .map(vec![("rev", col("l_extendedprice").mul(col("l_discount")))])
        .group_by(
            &[],
            vec![
                ("revenue", AggFunc::Sum(col("rev"))),
                ("n", AggFunc::CountStar),
            ],
        ),
    ));

    // H07..H22: systematic H-shaped variants.
    out.push(q(
        "H07",
        PlanNode::scan(
            "lineitem",
            &["l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"],
        )
        .filter(
            col("l_shipdate")
                .ge(lit_i32(9_100))
                .and(col("l_shipdate").le(lit_i32(9_800))),
        )
        .hash_join(
            PlanNode::scan("supplier", &["s_suppkey", "s_nationkey"]),
            &["l_suppkey"],
            &["s_suppkey"],
            &["s_nationkey"],
        )
        .hash_join(
            PlanNode::scan("nation", &["n_nationkey", "n_name"]),
            &["s_nationkey"],
            &["n_nationkey"],
            &["n_name"],
        )
        .map(vec![(
            "vol",
            col("l_extendedprice").mul(lit_dec(100, 2).sub(col("l_discount"))),
        )])
        .group_by(
            &["n_name", "l_shipdate"],
            vec![("revenue", AggFunc::Sum(col("vol")))],
        )
        .sort(
            &[("revenue", false), ("n_name", true), ("l_shipdate", true)],
            Some(20),
        ),
    ));

    out.push(q(
        "H08",
        PlanNode::scan("lineitem", &["l_partkey", "l_extendedprice", "l_discount"])
            .hash_join(
                PlanNode::scan("part", &["p_partkey", "p_type"])
                    .filter(col("p_type").starts_with(lit_str("MEDIUM"))),
                &["l_partkey"],
                &["p_partkey"],
                &["p_type"],
            )
            .map(vec![(
                "vol",
                col("l_extendedprice").mul(lit_dec(100, 2).sub(col("l_discount"))),
            )])
            .group_by(&["p_type"], vec![("volume", AggFunc::Sum(col("vol")))]),
    ));

    out.push(q(
        "H09",
        PlanNode::scan(
            "lineitem",
            &["l_partkey", "l_suppkey", "l_extendedprice", "l_quantity"],
        )
        .hash_join(
            PlanNode::scan("part", &["p_partkey", "p_name"])
                .filter(col("p_name").contains(lit_str("olive"))),
            &["l_partkey"],
            &["p_partkey"],
            &[],
        )
        .hash_join(
            PlanNode::scan("supplier", &["s_suppkey", "s_nationkey"]),
            &["l_suppkey"],
            &["s_suppkey"],
            &["s_nationkey"],
        )
        .hash_join(
            PlanNode::scan("nation", &["n_nationkey", "n_name"]),
            &["s_nationkey"],
            &["n_nationkey"],
            &["n_name"],
        )
        .group_by(
            &["n_name"],
            vec![
                ("total", AggFunc::Sum(col("l_extendedprice"))),
                ("qty", AggFunc::Sum(col("l_quantity"))),
            ],
        )
        .sort(&[("n_name", true)], None),
    ));

    out.push(q(
        "H10",
        PlanNode::scan(
            "lineitem",
            &[
                "l_orderkey",
                "l_extendedprice",
                "l_discount",
                "l_returnflag",
            ],
        )
        .filter(col("l_returnflag").eq(lit_str("R")))
        .hash_join(
            PlanNode::scan("orders", &["o_orderkey", "o_custkey"]),
            &["l_orderkey"],
            &["o_orderkey"],
            &["o_custkey"],
        )
        .hash_join(
            PlanNode::scan("customer", &["c_custkey", "c_name", "c_acctbal"]),
            &["o_custkey"],
            &["c_custkey"],
            &["c_name", "c_acctbal"],
        )
        .map(vec![(
            "rev",
            col("l_extendedprice").mul(lit_dec(100, 2).sub(col("l_discount"))),
        )])
        .group_by(
            &["c_name", "c_acctbal"],
            vec![("revenue", AggFunc::Sum(col("rev")))],
        )
        .sort(&[("revenue", false), ("c_name", true)], Some(20)),
    ));

    out.push(q(
        "H11",
        PlanNode::scan("supplier", &["s_suppkey", "s_nationkey", "s_acctbal"])
            .hash_join(
                PlanNode::scan("nation", &["n_nationkey", "n_name"])
                    .filter(col("n_name").eq(lit_str("GERMANY"))),
                &["s_nationkey"],
                &["n_nationkey"],
                &[],
            )
            .group_by(
                &["s_suppkey"],
                vec![("value", AggFunc::Sum(col("s_acctbal")))],
            )
            .sort(&[("value", false), ("s_suppkey", true)], Some(15)),
    ));

    out.push(q(
        "H12",
        PlanNode::scan(
            "lineitem",
            &["l_orderkey", "l_shipmode", "l_receiptdate", "l_commitdate"],
        )
        .filter(
            col("l_shipmode")
                .eq(lit_str("MAIL"))
                .or(col("l_shipmode").eq(lit_str("SHIP")))
                .and(col("l_commitdate").lt(col("l_receiptdate"))),
        )
        .hash_join(
            PlanNode::scan("orders", &["o_orderkey", "o_orderpriority"]),
            &["l_orderkey"],
            &["o_orderkey"],
            &["o_orderpriority"],
        )
        .group_by(
            &["l_shipmode", "o_orderpriority"],
            vec![("n", AggFunc::CountStar)],
        )
        .sort(&[("l_shipmode", true), ("o_orderpriority", true)], None),
    ));

    out.push(q(
        "H13",
        PlanNode::scan("orders", &["o_custkey"])
            .group_by(&["o_custkey"], vec![("c_count", AggFunc::CountStar)])
            .group_by(&["c_count"], vec![("custdist", AggFunc::CountStar)])
            .sort(&[("custdist", false), ("c_count", false)], None),
    ));

    out.push(q(
        "H14",
        PlanNode::scan(
            "lineitem",
            &["l_partkey", "l_extendedprice", "l_discount", "l_shipdate"],
        )
        .filter(
            col("l_shipdate")
                .ge(lit_i32(9_100))
                .and(col("l_shipdate").lt(lit_i32(9_131))),
        )
        .hash_join(
            PlanNode::scan("part", &["p_partkey", "p_type"]),
            &["l_partkey"],
            &["p_partkey"],
            &["p_type"],
        )
        .map(vec![(
            "rev",
            col("l_extendedprice").mul(lit_dec(100, 2).sub(col("l_discount"))),
        )])
        .group_by(
            &["p_type"],
            vec![
                ("revenue", AggFunc::Sum(col("rev"))),
                ("n", AggFunc::CountStar),
            ],
        )
        .sort(&[("p_type", true)], None),
    ));

    out.push(q(
        "H15",
        PlanNode::scan(
            "lineitem",
            &["l_suppkey", "l_extendedprice", "l_discount", "l_shipdate"],
        )
        .filter(col("l_shipdate").ge(lit_i32(9_700)))
        .map(vec![(
            "rev",
            col("l_extendedprice").mul(lit_dec(100, 2).sub(col("l_discount"))),
        )])
        .group_by(
            &["l_suppkey"],
            vec![("total_rev", AggFunc::Sum(col("rev")))],
        )
        .sort(&[("total_rev", false), ("l_suppkey", true)], Some(1)),
    ));

    out.push(q(
        "H16",
        PlanNode::scan("part", &["p_brand", "p_type", "p_size"])
            .filter(
                col("p_brand")
                    .ne(lit_str("Brand#33"))
                    .and(col("p_size").lt(lit_i32(26))),
            )
            .group_by(
                &["p_brand", "p_type", "p_size"],
                vec![("n", AggFunc::CountStar)],
            )
            .sort(
                &[
                    ("n", false),
                    ("p_brand", true),
                    ("p_type", true),
                    ("p_size", true),
                ],
                Some(25),
            ),
    ));

    out.push(q(
        "H17",
        PlanNode::scan("lineitem", &["l_partkey", "l_quantity", "l_extendedprice"])
            .hash_join(
                PlanNode::scan("part", &["p_partkey", "p_brand", "p_container"]).filter(
                    col("p_brand")
                        .eq(lit_str("Brand#22"))
                        .and(col("p_container").eq(lit_str("MED BOX"))),
                ),
                &["l_partkey"],
                &["p_partkey"],
                &[],
            )
            .filter(col("l_quantity").lt(lit_dec(1_000, 2)))
            .group_by(
                &[],
                vec![
                    ("total", AggFunc::Sum(col("l_extendedprice"))),
                    ("n", AggFunc::CountStar),
                    ("avg_qty", AggFunc::Avg(col("l_quantity"))),
                ],
            ),
    ));

    out.push(q(
        "H18",
        PlanNode::scan("lineitem", &["l_orderkey", "l_quantity"])
            .group_by(
                &["l_orderkey"],
                vec![("sum_qty", AggFunc::Sum(col("l_quantity")))],
            )
            .filter(col("sum_qty").gt(lit_dec(20_000, 2)))
            .hash_join(
                PlanNode::scan("orders", &["o_orderkey", "o_custkey", "o_totalprice"]),
                &["l_orderkey"],
                &["o_orderkey"],
                &["o_custkey", "o_totalprice"],
            )
            .sort(&[("o_totalprice", false), ("l_orderkey", true)], Some(10)),
    ));

    out.push(q(
        "H19",
        PlanNode::scan(
            "lineitem",
            &["l_partkey", "l_quantity", "l_extendedprice", "l_discount"],
        )
        .hash_join(
            PlanNode::scan("part", &["p_partkey", "p_container", "p_size"]).filter(
                col("p_size")
                    .ge(lit_i32(1))
                    .and(col("p_size").le(lit_i32(15))),
            ),
            &["l_partkey"],
            &["p_partkey"],
            &["p_container"],
        )
        .filter(
            col("l_quantity")
                .ge(lit_dec(100, 2))
                .and(col("l_quantity").le(lit_dec(3_000, 2))),
        )
        .map(vec![(
            "rev",
            col("l_extendedprice").mul(lit_dec(100, 2).sub(col("l_discount"))),
        )])
        .group_by(&[], vec![("revenue", AggFunc::Sum(col("rev")))]),
    ));

    out.push(q(
        "H20",
        PlanNode::scan("lineitem", &["l_partkey", "l_suppkey", "l_quantity"])
            .group_by(
                &["l_partkey", "l_suppkey"],
                vec![("qty", AggFunc::Sum(col("l_quantity")))],
            )
            .hash_join(
                PlanNode::scan("supplier", &["s_suppkey", "s_name", "s_nationkey"]),
                &["l_suppkey"],
                &["s_suppkey"],
                &["s_name"],
            )
            .filter(col("qty").gt(lit_dec(5_000, 2)))
            .group_by(&["s_name"], vec![("parts", AggFunc::CountStar)])
            .sort(&[("s_name", true)], None),
    ));

    out.push(q(
        "H21",
        PlanNode::scan("lineitem", &["l_suppkey", "l_receiptdate", "l_commitdate"])
            .filter(col("l_receiptdate").gt(col("l_commitdate")))
            .hash_join(
                PlanNode::scan("supplier", &["s_suppkey", "s_name", "s_nationkey"]).hash_join(
                    PlanNode::scan("nation", &["n_nationkey", "n_name"])
                        .filter(col("n_name").eq(lit_str("SAUDI ARABIA"))),
                    &["s_nationkey"],
                    &["n_nationkey"],
                    &[],
                ),
                &["l_suppkey"],
                &["s_suppkey"],
                &["s_name"],
            )
            .group_by(&["s_name"], vec![("numwait", AggFunc::CountStar)])
            .sort(&[("numwait", false), ("s_name", true)], Some(10)),
    ));

    out.push(q(
        "H22",
        PlanNode::scan("customer", &["c_custkey", "c_acctbal", "c_nationkey"])
            .filter(col("c_acctbal").gt(lit_dec(0, 2)))
            .group_by(
                &["c_nationkey"],
                vec![
                    ("numcust", AggFunc::CountStar),
                    ("totacctbal", AggFunc::Sum(col("c_acctbal"))),
                    ("avgbal", AggFunc::Avg(col("c_acctbal"))),
                ],
            )
            .sort(&[("c_nationkey", true)], None),
    ));

    // Two more scan variants to reach 22 (H02/H02b analogs: part lookup).
    out.insert(
        1,
        q(
            "H02",
            PlanNode::scan("part", &["p_partkey", "p_brand", "p_size", "p_retailprice"])
                .filter(col("p_size").eq(lit_i32(25)))
                .hash_join(
                    PlanNode::scan("supplier", &["s_suppkey", "s_acctbal", "s_name"]),
                    &["p_partkey"],
                    &["s_suppkey"],
                    &["s_acctbal", "s_name"],
                )
                .sort(&[("s_acctbal", false), ("p_partkey", true)], Some(10)),
        ),
    );

    assert_eq!(out.len(), 22);
    out
}
