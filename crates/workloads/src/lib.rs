//! Benchmark query suites.
//!
//! Two suites, mirroring the paper's workloads:
//!
//! * [`hlike_suite`] — 22 queries shaped after TPC-H: scan-heavy decimal
//!   aggregation, selective filters, join chains through the dimension
//!   tables, group-bys and top-k sorts.
//! * [`dslike_suite`] — 103 procedurally generated queries shaped after
//!   TPC-DS: three sales fact tables joined against shared dimensions,
//!   with seeded-random predicate/aggregation/sort structure. The
//!   generator is deterministic, so "query 17" is the same plan on every
//!   run.
//!
//! Both suites only reference the schemas produced by
//! [`qc_storage::gen_hlike`] / [`qc_storage::gen_dslike`].

mod dslike;
mod hlike;

pub use dslike::dslike_suite;
pub use hlike::hlike_suite;

use qc_plan::PlanNode;

/// A named benchmark query.
#[derive(Debug, Clone)]
pub struct BenchQuery {
    /// Display name (e.g. `"H01"` or `"DS042"`).
    pub name: String,
    /// The logical plan.
    pub plan: PlanNode,
}

#[cfg(test)]
mod tests {
    use super::*;
    use qc_plan::reference;
    use qc_storage::{gen_dslike, gen_hlike};

    #[test]
    fn hlike_suite_has_22_valid_queries() {
        let db = gen_hlike(0.02);
        let suite = hlike_suite();
        assert_eq!(suite.len(), 22);
        for q in &suite {
            let catalog = |t: &str| {
                db.table(t)
                    .map(|t| t.schema.iter().map(|(n, ty)| (n.to_string(), ty)).collect())
            };
            q.plan
                .schema(&catalog)
                .unwrap_or_else(|e| panic!("{}: {e}", q.name));
        }
    }

    #[test]
    fn dslike_suite_has_103_valid_executable_queries() {
        let db = gen_dslike(0.02);
        let suite = dslike_suite();
        assert_eq!(suite.len(), 103);
        for q in &suite {
            let rows =
                reference::execute(&q.plan, &db).unwrap_or_else(|e| panic!("{}: {e}", q.name));
            let _ = rows;
        }
    }

    #[test]
    fn dslike_suite_is_deterministic() {
        let a = dslike_suite();
        let b = dslike_suite();
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.name, y.name);
            assert_eq!(format!("{:?}", x.plan), format!("{:?}", y.plan));
        }
    }

    #[test]
    fn suites_cover_all_operator_kinds() {
        let suite = dslike_suite();
        let debug: Vec<String> = suite.iter().map(|q| format!("{:?}", q.plan)).collect();
        assert!(debug.iter().any(|d| d.contains("HashJoin")));
        assert!(debug.iter().any(|d| d.contains("GroupBy")));
        assert!(debug.iter().any(|d| d.contains("Sort")));
        assert!(debug.iter().any(|d| d.contains("LitStr")));
    }
}
