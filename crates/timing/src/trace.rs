//! Scoped timers recording into a shared trace.

use std::cell::RefCell;
use std::collections::HashMap;
use std::rc::Rc;
use std::time::{Duration, Instant};

use crate::report::Report;

/// Accumulated time per phase path (e.g. `"regalloc/liveness"`).
#[derive(Debug, Default)]
struct TraceData {
    /// Phase path -> (total duration, number of scope entries).
    phases: HashMap<String, (Duration, u64)>,
    /// Stack of currently open phase names, used to build nested paths.
    stack: Vec<String>,
    /// Number of individual time measurements taken (paper Sec. V-B notes
    /// the measurement count itself: 1.27M/467k events).
    events: u64,
}

/// A time trace collecting hierarchical phase timings for one compilation.
///
/// Phases nest: entering `"liveness"` while `"regalloc"` is open records
/// under the path `"regalloc/liveness"`. Scopes created from the same trace
/// must be dropped in LIFO order (guaranteed by normal lexical scoping).
///
/// Cloning a `TimeTrace` is cheap and yields a handle onto the same
/// underlying data, so a back-end can pass the trace down into its passes.
#[derive(Debug, Clone, Default)]
pub struct TimeTrace {
    data: Rc<RefCell<TraceData>>,
    enabled: bool,
}

impl TimeTrace {
    /// Creates an enabled trace.
    pub fn new() -> Self {
        TimeTrace {
            data: Rc::default(),
            enabled: true,
        }
    }

    /// Creates a disabled trace: scopes become no-ops with near-zero cost.
    ///
    /// Back-ends take a `TimeTrace` unconditionally; harnesses that do not
    /// need breakdowns pass a disabled trace to avoid measurement overhead
    /// (the paper reports up to 2% overhead from time tracing).
    pub fn disabled() -> Self {
        TimeTrace {
            data: Rc::default(),
            enabled: false,
        }
    }

    /// Returns whether this trace records timings.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a top-level-or-nested phase scope; the phase ends when the
    /// returned guard is dropped.
    pub fn scope(&self, name: &str) -> PhaseGuard {
        if !self.enabled {
            return PhaseGuard {
                trace: None,
                start: None,
            };
        }
        self.data.borrow_mut().stack.push(name.to_string());
        PhaseGuard {
            trace: Some(self.clone()),
            start: Some(Instant::now()),
        }
    }

    /// Records a pre-measured duration under `name` (nested in the current
    /// stack), for callers that measure time themselves.
    pub fn record(&self, name: &str, d: Duration) {
        if !self.enabled {
            return;
        }
        let mut data = self.data.borrow_mut();
        let path = Self::path_of(&data.stack, name);
        let entry = data.phases.entry(path).or_default();
        entry.0 += d;
        entry.1 += 1;
        data.events += 1;
    }

    fn path_of(stack: &[String], name: &str) -> String {
        if stack.is_empty() {
            name.to_string()
        } else {
            let mut p = stack.join("/");
            p.push('/');
            p.push_str(name);
            p
        }
    }

    fn close_scope(&self, start: Instant) {
        let mut data = self.data.borrow_mut();
        let name = data.stack.pop().expect("phase stack underflow");
        let path = Self::path_of(&data.stack, &name);
        let entry = data.phases.entry(path).or_default();
        entry.0 += start.elapsed();
        entry.1 += 1;
        data.events += 1;
    }

    /// Number of recorded measurement events so far.
    pub fn event_count(&self) -> u64 {
        self.data.borrow().events
    }

    /// Produces an immutable report snapshot of everything recorded so far.
    ///
    /// # Panics
    /// Panics if called while scopes are still open.
    pub fn report(&self) -> Report {
        let data = self.data.borrow();
        assert!(
            data.stack.is_empty(),
            "report() with open phase scopes: {:?}",
            data.stack
        );
        Report::from_phases(
            data.phases
                .iter()
                .map(|(k, &(d, n))| (k.clone(), d, n))
                .collect(),
        )
    }

    /// Merges all phases of `other` into `self` (used to aggregate traces
    /// across many compiled functions).
    pub fn merge(&self, other: &Report) {
        if !self.enabled {
            return;
        }
        let mut data = self.data.borrow_mut();
        for row in other.rows() {
            let entry = data.phases.entry(row.path.clone()).or_default();
            entry.0 += row.total;
            entry.1 += row.count;
        }
    }
}

/// RAII guard closing a phase scope on drop. Created by [`TimeTrace::scope`].
#[derive(Debug)]
pub struct PhaseGuard {
    trace: Option<TimeTrace>,
    start: Option<Instant>,
}

impl Drop for PhaseGuard {
    fn drop(&mut self) {
        if let (Some(trace), Some(start)) = (self.trace.take(), self.start.take()) {
            trace.close_scope(start);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::thread::sleep;

    #[test]
    fn records_flat_phase() {
        let t = TimeTrace::new();
        {
            let _g = t.scope("parse");
            sleep(Duration::from_millis(2));
        }
        let r = t.report();
        assert!(r.total("parse").unwrap() >= Duration::from_millis(2));
        assert_eq!(r.count("parse"), 1);
    }

    #[test]
    fn nested_scopes_build_paths() {
        let t = TimeTrace::new();
        {
            let _a = t.scope("regalloc");
            {
                let _b = t.scope("liveness");
            }
            {
                let _b = t.scope("assign");
            }
        }
        let r = t.report();
        assert!(r.total("regalloc").is_some());
        assert!(r.total("regalloc/liveness").is_some());
        assert!(r.total("regalloc/assign").is_some());
        assert!(r.total("liveness").is_none());
    }

    #[test]
    fn disabled_trace_records_nothing() {
        let t = TimeTrace::disabled();
        {
            let _g = t.scope("parse");
        }
        t.record("x", Duration::from_secs(1));
        assert_eq!(t.report().rows().len(), 0);
        assert_eq!(t.event_count(), 0);
    }

    #[test]
    fn record_explicit_duration() {
        let t = TimeTrace::new();
        t.record("emit", Duration::from_millis(5));
        t.record("emit", Duration::from_millis(7));
        let r = t.report();
        assert_eq!(r.total("emit").unwrap(), Duration::from_millis(12));
        assert_eq!(r.count("emit"), 2);
    }

    #[test]
    fn merge_aggregates_reports() {
        let t1 = TimeTrace::new();
        t1.record("isel", Duration::from_millis(3));
        let t2 = TimeTrace::new();
        t2.record("isel", Duration::from_millis(4));
        t2.record("emit", Duration::from_millis(1));
        t1.merge(&t2.report());
        let r = t1.report();
        assert_eq!(r.total("isel").unwrap(), Duration::from_millis(7));
        assert_eq!(r.total("emit").unwrap(), Duration::from_millis(1));
    }

    #[test]
    fn scopes_on_clone_share_data() {
        let t = TimeTrace::new();
        let t2 = t.clone();
        {
            let _g = t2.scope("shared");
        }
        assert!(t.report().total("shared").is_some());
    }

    #[test]
    #[should_panic(expected = "open phase scopes")]
    fn report_with_open_scope_panics() {
        let t = TimeTrace::new();
        let _g = t.scope("open");
        let _ = t.report();
    }

    #[test]
    fn event_count_tracks_measurements() {
        let t = TimeTrace::new();
        for _ in 0..5 {
            let _g = t.scope("p");
        }
        assert_eq!(t.event_count(), 5);
    }
}
