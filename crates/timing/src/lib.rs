//! Hierarchical phase timing for compile-time analysis.
//!
//! This crate is the reproduction's analog of the instrumentation the paper
//! relies on: GCC's `-ftime-report`, LLVM's time-trace infrastructure, and
//! the custom phase timers added to Cranelift and DirectEmit. Every back-end
//! in this workspace reports where its compile time goes through a
//! [`TimeTrace`], and the benchmark harness aggregates those traces into the
//! per-phase breakdowns of Table I and Figures 2–5.
//!
//! # Example
//!
//! ```
//! use qc_timing::TimeTrace;
//!
//! let trace = TimeTrace::new();
//! {
//!     let _isel = trace.scope("isel");
//!     // ... do instruction selection ...
//! }
//! {
//!     let _ra = trace.scope("regalloc");
//! }
//! let report = trace.report();
//! assert!(report.total("isel").is_some());
//! ```

mod report;
mod trace;

pub use report::{PhaseRow, Report};
pub use trace::{PhaseGuard, TimeTrace};

use std::time::Duration;

/// Formats a [`Duration`] with millisecond precision for harness output.
///
/// # Example
/// ```
/// use std::time::Duration;
/// assert_eq!(qc_timing::fmt_duration(Duration::from_micros(1500)), "1.500ms");
/// ```
pub fn fmt_duration(d: Duration) -> String {
    if d >= Duration::from_secs(1) {
        format!("{:.3}s", d.as_secs_f64())
    } else {
        format!("{:.3}ms", d.as_secs_f64() * 1e3)
    }
}
