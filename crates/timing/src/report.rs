//! Immutable snapshots of recorded phase timings.

use std::collections::BTreeMap;
use std::fmt;
use std::time::Duration;

/// One row of a [`Report`]: a phase path with its accumulated time.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseRow {
    /// Slash-separated phase path, e.g. `"regalloc/liveness"`.
    pub path: String,
    /// Total time accumulated across all entries of this phase.
    pub total: Duration,
    /// Number of times the phase was entered.
    pub count: u64,
}

impl PhaseRow {
    /// Depth of the phase in the hierarchy (0 for top-level phases).
    pub fn depth(&self) -> usize {
        self.path.matches('/').count()
    }

    /// Last path component, e.g. `"liveness"` for `"regalloc/liveness"`.
    pub fn leaf(&self) -> &str {
        self.path.rsplit('/').next().unwrap_or(&self.path)
    }
}

/// An immutable, sorted snapshot of phase timings.
///
/// Produced by [`crate::TimeTrace::report`]. Rows are sorted by path, so
/// children directly follow their parent.
#[derive(Debug, Clone, Default)]
pub struct Report {
    rows: BTreeMap<String, (Duration, u64)>,
}

impl Report {
    pub(crate) fn from_phases(phases: Vec<(String, Duration, u64)>) -> Self {
        let mut rows = BTreeMap::new();
        for (path, d, n) in phases {
            let e = rows.entry(path).or_insert((Duration::ZERO, 0));
            e.0 += d;
            e.1 += n;
        }
        Report { rows }
    }

    /// All rows, sorted by path.
    pub fn rows(&self) -> Vec<PhaseRow> {
        self.rows
            .iter()
            .map(|(path, &(total, count))| PhaseRow {
                path: path.clone(),
                total,
                count,
            })
            .collect()
    }

    /// Total time of one phase path, if recorded.
    pub fn total(&self, path: &str) -> Option<Duration> {
        self.rows.get(path).map(|&(d, _)| d)
    }

    /// Entry count of one phase path (0 if never recorded).
    pub fn count(&self, path: &str) -> u64 {
        self.rows.get(path).map(|&(_, n)| n).unwrap_or(0)
    }

    /// Sum of all *top-level* phases. Nested phases are already contained in
    /// their parents' time and therefore not added again.
    pub fn grand_total(&self) -> Duration {
        self.rows
            .iter()
            .filter(|(p, _)| !p.contains('/'))
            .map(|(_, &(d, _))| d)
            .sum()
    }

    /// Fraction of [`Report::grand_total`] spent in `path` (0.0 if unknown
    /// or the report is empty).
    pub fn fraction(&self, path: &str) -> f64 {
        let total = self.grand_total().as_secs_f64();
        if total == 0.0 {
            return 0.0;
        }
        self.total(path)
            .map(|d| d.as_secs_f64() / total)
            .unwrap_or(0.0)
    }

    /// Returns a new report containing only rows below `prefix` (exclusive),
    /// with the prefix stripped. Useful to zoom into e.g. `"regalloc"`.
    pub fn subtree(&self, prefix: &str) -> Report {
        let mut rows = BTreeMap::new();
        let pfx = format!("{prefix}/");
        for (path, &v) in &self.rows {
            if let Some(rest) = path.strip_prefix(&pfx) {
                rows.insert(rest.to_string(), v);
            }
        }
        Report { rows }
    }

    /// Renders the report as an indented text table with percentages of the
    /// grand total, suitable for harness output.
    pub fn render(&self) -> String {
        format!("{self}")
    }
}

impl fmt::Display for Report {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let total = self.grand_total();
        writeln!(
            f,
            "{:<44} {:>12} {:>8} {:>8}",
            "phase", "total", "count", "%"
        )?;
        for row in self.rows() {
            let pct = if total.is_zero() {
                0.0
            } else {
                100.0 * row.total.as_secs_f64() / total.as_secs_f64()
            };
            let indent = "  ".repeat(row.depth());
            writeln!(
                f,
                "{:<44} {:>12} {:>8} {:>7.1}%",
                format!("{indent}{}", row.leaf()),
                crate::fmt_duration(row.total),
                row.count,
                pct
            )?;
        }
        writeln!(f, "{:<44} {:>12}", "TOTAL", crate::fmt_duration(total))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn report() -> Report {
        Report::from_phases(vec![
            ("isel".into(), Duration::from_millis(30), 3),
            ("regalloc".into(), Duration::from_millis(60), 3),
            ("regalloc/liveness".into(), Duration::from_millis(20), 3),
            ("regalloc/assign".into(), Duration::from_millis(35), 3),
        ])
    }

    #[test]
    fn grand_total_counts_only_top_level() {
        assert_eq!(report().grand_total(), Duration::from_millis(90));
    }

    #[test]
    fn fraction_of_total() {
        let r = report();
        let f = r.fraction("regalloc");
        assert!((f - 60.0 / 90.0).abs() < 1e-9, "{f}");
        assert_eq!(r.fraction("missing"), 0.0);
    }

    #[test]
    fn subtree_strips_prefix() {
        let sub = report().subtree("regalloc");
        assert_eq!(sub.total("liveness").unwrap(), Duration::from_millis(20));
        assert_eq!(sub.total("assign").unwrap(), Duration::from_millis(35));
        assert!(sub.total("regalloc").is_none());
        assert_eq!(sub.grand_total(), Duration::from_millis(55));
    }

    #[test]
    fn rows_are_sorted_and_describe_depth() {
        let rows = report().rows();
        let paths: Vec<_> = rows.iter().map(|r| r.path.as_str()).collect();
        assert_eq!(
            paths,
            vec!["isel", "regalloc", "regalloc/assign", "regalloc/liveness"]
        );
        assert_eq!(rows[3].depth(), 1);
        assert_eq!(rows[3].leaf(), "liveness");
    }

    #[test]
    fn render_contains_phases_and_percent() {
        let s = report().render();
        assert!(s.contains("liveness"));
        assert!(s.contains('%'));
        assert!(s.contains("TOTAL"));
    }

    #[test]
    fn empty_report_renders() {
        let r = Report::default();
        assert_eq!(r.grand_total(), Duration::ZERO);
        assert!(r.render().contains("TOTAL"));
    }

    #[test]
    fn from_phases_merges_duplicates() {
        let r = Report::from_phases(vec![
            ("a".into(), Duration::from_millis(1), 1),
            ("a".into(), Duration::from_millis(2), 2),
        ]);
        assert_eq!(r.total("a").unwrap(), Duration::from_millis(3));
        assert_eq!(r.count("a"), 3);
    }
}
