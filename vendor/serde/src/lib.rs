//! Offline placeholder for `serde`.
//!
//! The workspace declares serde for planned result-export work but no
//! crate uses it yet; this stub satisfies dependency resolution
//! without registry access. The `derive` feature exists and is a
//! no-op. Replace with the real crate once serialization lands.

#![deny(missing_docs)]

/// Marker for serializable types (no-op stand-in).
pub trait Serialize {}

/// Marker for deserializable types (no-op stand-in).
pub trait Deserialize<'de>: Sized {}
