//! Offline stand-in for the `rand 0.8` API subset this workspace uses.
//!
//! The build environment has no registry access, so the workspace pins
//! this vendored implementation instead. It covers exactly what the
//! data generators and tests call: `rngs::StdRng`, `SeedableRng::
//! seed_from_u64`, `Rng::gen_range` over integer `Range`/
//! `RangeInclusive`, and `Rng::gen_bool`. The generator is a fixed
//! SplitMix64 chain, so all derived data sets are deterministic across
//! platforms — which is all the paper reproduction needs (the exact
//! stream differs from upstream `StdRng`, but every consumer seeds
//! explicitly and only relies on determinism, not on a specific
//! stream).

#![deny(missing_docs)]

use std::ops::{Range, RangeInclusive};

/// Seedable deterministic generators, mirroring `rand::rngs`.
pub mod rngs {
    /// A deterministic 64-bit PRNG (SplitMix64), standing in for
    /// `rand::rngs::StdRng`.
    #[derive(Clone, Debug)]
    pub struct StdRng {
        pub(crate) state: u64,
    }
}

use rngs::StdRng;

/// Construction of a generator from a seed, mirroring
/// `rand::SeedableRng` (only `seed_from_u64` is provided).
pub trait SeedableRng: Sized {
    /// Creates a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

impl SeedableRng for StdRng {
    fn seed_from_u64(seed: u64) -> StdRng {
        // Pre-advance once so that seed 0 does not start at state 0.
        let mut rng = StdRng { state: seed };
        let _ = rng.next_u64();
        rng
    }
}

impl StdRng {
    fn next_u64(&mut self) -> u64 {
        // SplitMix64 (public domain reference constants).
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }
}

/// Ranges a value can be drawn from, mirroring the sampling half of
/// `rand::distributions::uniform::SampleRange`.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    fn sample_single(self, rng: &mut StdRng) -> T;
}

macro_rules! impl_sample_range {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single(self, rng: &mut StdRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let off = rng.next_u128() % span;
                self.start.wrapping_add(off as $t)
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single(self, rng: &mut StdRng) -> $t {
                let (start, end) = self.into_inner();
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    // Full u128 domain: every draw is in range.
                    return rng.next_u128() as $t;
                }
                let off = rng.next_u128() % span;
                start.wrapping_add(off as $t)
            }
        }
    )*};
}

impl_sample_range!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);

/// Value-drawing interface, mirroring the `rand::Rng` extension trait.
pub trait Rng {
    /// Returns the next raw 64-bit output of the generator.
    fn next_u64(&mut self) -> u64;

    /// Draws a value uniformly from `range` (`a..b` or `a..=b`).
    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
        Self: Sized;

    /// Returns `true` with probability `p` (`0.0 ..= 1.0`).
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "gen_bool probability out of range");
        // 53 uniform mantissa bits, matching f64 precision.
        let unit = (self.next_u64() >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

impl Rng for StdRng {
    fn next_u64(&mut self) -> u64 {
        StdRng::next_u64(self)
    }

    fn gen_range<T, R>(&mut self, range: R) -> T
    where
        R: SampleRange<T>,
    {
        range.sample_single(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_across_instances() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: i64 = rng.gen_range(-5..5);
            assert!((-5..5).contains(&v));
            let w: i128 = rng.gen_range(-99_999..999_999);
            assert!((-99_999..999_999).contains(&w));
            let u: usize = rng.gen_range(1..=3);
            assert!((1..=3).contains(&u));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }
}
