//! The [`Strategy`] trait and combinators (sampling only, no
//! shrinking).

use std::ops::{Range, RangeInclusive};
use std::rc::Rc;

use crate::test_runner::TestRng;

/// A recipe for generating values of one type.
///
/// Mirrors `proptest::strategy::Strategy` but produces plain values:
/// `sample` draws one value, and the combinators (`prop_map`,
/// `prop_recursive`, `boxed`) compose recipes structurally.
pub trait Strategy {
    /// The type of value this strategy generates.
    type Value;

    /// Draws one value.
    fn sample(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Builds a recursive strategy: `self` generates the leaves, and
    /// `recurse` wraps an inner strategy into one more level of
    /// structure. Recursion is bounded by `depth`; `_desired_size` and
    /// `_expected_branch_size` are accepted for API compatibility but
    /// not used by this sampler.
    fn prop_recursive<R, F>(
        self,
        depth: u32,
        _desired_size: u32,
        _expected_branch_size: u32,
        recurse: F,
    ) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
        Self::Value: 'static,
        R: Strategy<Value = Self::Value> + 'static,
        F: Fn(BoxedStrategy<Self::Value>) -> R,
    {
        let leaf = self.boxed();
        let mut current = leaf.clone();
        for _ in 0..depth {
            // Each level flips between terminating at a leaf and
            // recursing one level deeper, bounding the tree depth
            // while still exercising nested shapes.
            let deeper = recurse(current).boxed();
            current = Union::new(vec![leaf.clone(), deeper.clone(), deeper]).boxed();
        }
        current
    }

    /// Type-erases the strategy.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Rc::new(self))
    }
}

/// A cheaply clonable, type-erased [`Strategy`].
pub struct BoxedStrategy<T>(Rc<dyn Strategy<Value = T>>);

impl<T> Clone for BoxedStrategy<T> {
    fn clone(&self) -> BoxedStrategy<T> {
        BoxedStrategy(Rc::clone(&self.0))
    }
}

impl<T> Strategy for BoxedStrategy<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        self.0.sample(rng)
    }
}

/// Strategy returned by [`Strategy::prop_map`].
#[derive(Clone, Debug)]
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S, F, U> Strategy for Map<S, F>
where
    S: Strategy,
    F: Fn(S::Value) -> U,
{
    type Value = U;

    fn sample(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.sample(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn sample(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice among alternative strategies (the [`prop_oneof!`]
/// expansion).
///
/// [`prop_oneof!`]: crate::prop_oneof
pub struct Union<T> {
    alternatives: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Builds a union over the given (non-empty) alternatives.
    pub fn new(alternatives: Vec<BoxedStrategy<T>>) -> Union<T> {
        assert!(!alternatives.is_empty(), "prop_oneof! needs at least one alternative");
        Union { alternatives }
    }
}

impl<T> Clone for Union<T> {
    fn clone(&self) -> Union<T> {
        Union { alternatives: self.alternatives.clone() }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        let idx = rng.below(self.alternatives.len() as u64) as usize;
        self.alternatives[idx].sample(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as u128).wrapping_sub(self.start as u128);
                let off = rng.next_u128() % span;
                self.start.wrapping_add(off as $t)
            }
        }

        impl Strategy for RangeInclusive<$t> {
            type Value = $t;

            fn sample(&self, rng: &mut TestRng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as u128).wrapping_sub(start as u128).wrapping_add(1);
                if span == 0 {
                    return rng.next_u128() as $t;
                }
                let off = rng.next_u128() % span;
                start.wrapping_add(off as $t)
            }
        }
    )*};
}

impl_range_strategy!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);

macro_rules! impl_tuple_strategy {
    ($(($($name:ident . $idx:tt),+))*) => {$(
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);

            fn sample(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.sample(rng),)+)
            }
        }
    )*};
}

impl_tuple_strategy! {
    (A.0)
    (A.0, B.1)
    (A.0, B.1, C.2)
    (A.0, B.1, C.2, D.3)
    (A.0, B.1, C.2, D.3, E.4)
    (A.0, B.1, C.2, D.3, E.4, F.5)
}
