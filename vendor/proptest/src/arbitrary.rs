//! `any::<T>()` and the [`Arbitrary`] trait for primitive types.

use std::marker::PhantomData;

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

/// Types with a canonical full-domain strategy.
pub trait Arbitrary: Sized {
    /// Draws one arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

/// The strategy returned by [`any`].
#[derive(Clone, Copy, Debug)]
pub struct Any<T>(PhantomData<T>);

/// Full-domain strategy for `T`, mirroring `proptest::arbitrary::any`.
///
/// Integer domains are edge-biased: roughly one draw in eight yields a
/// boundary value (0, ±1, `MIN`, `MAX`), which keeps overflow paths
/// well covered without shrinking.
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(PhantomData)
}

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;

    fn sample(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                if rng.below(8) == 0 {
                    const EDGES: [$t; 5] = [0, 1, <$t>::MAX, <$t>::MIN, <$t>::MAX.wrapping_add(2)];
                    EDGES[rng.below(EDGES.len() as u64) as usize]
                } else {
                    rng.next_u128() as $t
                }
            }
        }
    )*};
}

impl_arbitrary_int!(i8, i16, i32, i64, i128, isize, u8, u16, u32, u64, u128, usize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    fn arbitrary(rng: &mut TestRng) -> f64 {
        if rng.below(8) == 0 {
            const EDGES: [f64; 6] = [0.0, -0.0, 1.0, -1.0, f64::INFINITY, f64::NEG_INFINITY];
            EDGES[rng.below(EDGES.len() as u64) as usize]
        } else {
            f64::from_bits(rng.next_u64())
        }
    }
}
