//! String strategies from regex-like patterns.
//!
//! A `&str` literal is itself a strategy in proptest, interpreted as a
//! regex. This sampler supports the pattern subset the workspace uses:
//! a sequence of elements, each a literal character or a `[..]`
//! character class (with `a-b` ranges), optionally followed by a
//! `{min,max}`, `{n}`, `*`, `+`, or `?` repetition.

use crate::strategy::Strategy;
use crate::test_runner::TestRng;

const UNBOUNDED_MAX: usize = 16;

#[derive(Clone, Debug)]
enum Element {
    Literal(char),
    Class(Vec<(char, char)>),
}

impl Element {
    fn sample(&self, rng: &mut TestRng) -> char {
        match self {
            Element::Literal(c) => *c,
            Element::Class(ranges) => {
                let total: u64 = ranges.iter().map(|&(lo, hi)| hi as u64 - lo as u64 + 1).sum();
                let mut pick = rng.below(total);
                for &(lo, hi) in ranges {
                    let span = hi as u64 - lo as u64 + 1;
                    if pick < span {
                        return char::from_u32(lo as u32 + pick as u32).unwrap_or(lo);
                    }
                    pick -= span;
                }
                unreachable!("pick below total")
            }
        }
    }
}

fn parse(pattern: &str) -> Vec<(Element, usize, usize)> {
    let mut chars = pattern.chars().peekable();
    let mut out = Vec::new();
    while let Some(c) = chars.next() {
        let elem = match c {
            '[' => {
                let mut ranges = Vec::new();
                let mut items: Vec<char> = Vec::new();
                for d in chars.by_ref() {
                    if d == ']' {
                        break;
                    }
                    items.push(d);
                }
                let mut i = 0;
                while i < items.len() {
                    if i + 2 < items.len() && items[i + 1] == '-' {
                        ranges.push((items[i], items[i + 2]));
                        i += 3;
                    } else if i + 2 == items.len() && items[i + 1] == '-' {
                        ranges.push((items[i], items[i + 1]));
                        i += 3;
                    } else {
                        ranges.push((items[i], items[i]));
                        i += 1;
                    }
                }
                assert!(!ranges.is_empty(), "empty character class in pattern {pattern:?}");
                Element::Class(ranges)
            }
            '\\' => Element::Literal(chars.next().expect("dangling escape")),
            '.' => Element::Class(vec![(' ', '~')]),
            other => Element::Literal(other),
        };
        let (min, max) = match chars.peek() {
            Some('{') => {
                chars.next();
                let mut body = String::new();
                for d in chars.by_ref() {
                    if d == '}' {
                        break;
                    }
                    body.push(d);
                }
                match body.split_once(',') {
                    Some((lo, hi)) => {
                        let lo: usize = lo.trim().parse().expect("bad repetition bound");
                        let hi: usize = if hi.trim().is_empty() {
                            lo + UNBOUNDED_MAX
                        } else {
                            hi.trim().parse().expect("bad repetition bound")
                        };
                        (lo, hi)
                    }
                    None => {
                        let n: usize = body.trim().parse().expect("bad repetition count");
                        (n, n)
                    }
                }
            }
            Some('*') => {
                chars.next();
                (0, UNBOUNDED_MAX)
            }
            Some('+') => {
                chars.next();
                (1, UNBOUNDED_MAX)
            }
            Some('?') => {
                chars.next();
                (0, 1)
            }
            _ => (1, 1),
        };
        assert!(min <= max, "inverted repetition in pattern {pattern:?}");
        out.push((elem, min, max));
    }
    out
}

impl Strategy for &'static str {
    type Value = String;

    fn sample(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for (elem, min, max) in parse(self) {
            let n = min + rng.below((max - min + 1) as u64) as usize;
            for _ in 0..n {
                out.push(elem.sample(rng));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::test_runner::TestRng;

    #[test]
    fn printable_class_with_bounds() {
        let mut rng = TestRng::deterministic("string-pattern");
        let mut seen_empty = false;
        for _ in 0..200 {
            let s = Strategy::sample(&"[ -~]{0,40}", &mut rng);
            assert!(s.len() <= 40);
            assert!(s.bytes().all(|b| (0x20..=0x7E).contains(&b)));
            seen_empty |= s.is_empty();
        }
        assert!(seen_empty, "zero-length strings must occur");
    }

    #[test]
    fn literals_and_counts() {
        let mut rng = TestRng::deterministic("string-literal");
        assert_eq!(Strategy::sample(&"abc", &mut rng), "abc");
        assert_eq!(Strategy::sample(&"a{3}", &mut rng), "aaa");
    }
}
