//! Test configuration and the deterministic sampling generator.

/// Per-test configuration (only `cases` is honoured).
#[derive(Clone, Debug)]
pub struct ProptestConfig {
    /// Number of random cases each property runs.
    pub cases: u32,
}

impl ProptestConfig {
    /// Configuration running `cases` random cases per property.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        ProptestConfig { cases: 256 }
    }
}

/// Deterministic SplitMix64 generator seeding each property from its
/// fully-qualified test name, so runs are reproducible without any
/// persistence files.
#[derive(Clone, Debug)]
pub struct TestRng {
    state: u64,
}

impl TestRng {
    /// Creates a generator seeded from `label` (FNV-1a of the bytes).
    pub fn deterministic(label: &str) -> TestRng {
        let mut h: u64 = 0xCBF2_9CE4_8422_2325;
        for b in label.bytes() {
            h ^= b as u64;
            h = h.wrapping_mul(0x0000_0100_0000_01B3);
        }
        TestRng { state: h }
    }

    /// Next raw 64-bit output.
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    /// Next raw 128-bit output.
    pub fn next_u128(&mut self) -> u128 {
        ((self.next_u64() as u128) << 64) | self.next_u64() as u128
    }

    /// Uniform draw from `[0, bound)` (`bound > 0`).
    pub fn below(&mut self, bound: u64) -> u64 {
        debug_assert!(bound > 0);
        self.next_u64() % bound
    }
}
