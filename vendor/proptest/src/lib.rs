//! Offline stand-in for the `proptest 1.x` API subset this workspace
//! uses.
//!
//! The build environment has no registry access, so the workspace pins
//! this vendored implementation. It keeps the public surface the test
//! suites depend on — the [`proptest!`] macro with
//! `#![proptest_config(..)]`, [`Strategy`] with `prop_map`/
//! `prop_recursive`/`boxed`, [`prop_oneof!`], `any::<T>()`, range and
//! tuple strategies, regex-lite string strategies, and
//! `prop::collection::vec` — while replacing the engine with a plain
//! seeded sampler: each test body runs `cases` times on freshly drawn
//! inputs. Failing inputs are reported through the panic message but
//! are **not shrunk**; determinism comes from a per-test seed derived
//! from the test's module path.

#![deny(missing_docs)]

pub mod arbitrary;
pub mod collection;
pub mod strategy;
pub mod string;
pub mod test_runner;

/// Namespace mirror so `prop::collection::vec(..)` works after
/// `use proptest::prelude::*`.
pub mod prop {
    pub use crate::collection;
}

/// The glob-import surface, mirroring `proptest::prelude`.
pub mod prelude {
    pub use crate::arbitrary::{any, Arbitrary};
    pub use crate::prop;
    pub use crate::strategy::{BoxedStrategy, Just, Strategy};
    pub use crate::test_runner::ProptestConfig;
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Defines `#[test]` functions whose arguments are drawn from
/// strategies; each body runs once per configured case.
///
/// Supported grammar (the subset the workspace uses):
///
/// ```ignore
/// proptest! {
///     #![proptest_config(ProptestConfig::with_cases(64))] // optional
///     #[test]
///     fn name(a in strategy_a, b in strategy_b) { .. }
/// }
/// ```
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_fns! {
            ($crate::test_runner::ProptestConfig::default()) $($rest)*
        }
    };
}

/// Implementation detail of [`proptest!`]: expands one test function
/// at a time.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_fns {
    (($cfg:expr)) => {};
    (($cfg:expr)
     $(#[$meta:meta])*
     fn $name:ident($($arg:pat in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*) => {
        $(#[$meta])*
        fn $name() {
            let __config = $cfg;
            let mut __rng = $crate::test_runner::TestRng::deterministic(concat!(
                module_path!(),
                "::",
                stringify!($name)
            ));
            for __case in 0..__config.cases {
                $(let $arg = $crate::strategy::Strategy::sample(&($strat), &mut __rng);)+
                $body
            }
        }
        $crate::__proptest_fns! { ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test (panics on failure, no
/// shrinking).
#[macro_export]
macro_rules! prop_assert {
    ($($tt:tt)*) => { assert!($($tt)*) };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($tt:tt)*) => { assert_eq!($($tt)*) };
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($tt:tt)*) => { assert_ne!($($tt)*) };
}

/// Builds a strategy choosing uniformly among the given alternative
/// strategies (all must share one value type).
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($strat)),+
        ])
    };
}
