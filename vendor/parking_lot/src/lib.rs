//! Offline stand-in for `parking_lot`.
//!
//! Declared for the planned parallel pipeline compilation (see
//! ROADMAP.md). Provides the non-poisoning `Mutex`/`RwLock` API shape
//! on top of `std::sync` so future code compiles unchanged against the
//! real crate: lock acquisition returns guards directly and a
//! poisoned std lock panics (matching parking_lot's abort-on-poison
//! absence semantics closely enough for this workspace).

#![deny(missing_docs)]

pub use std::sync::{MutexGuard, RwLockReadGuard, RwLockWriteGuard};

/// Non-poisoning mutual-exclusion lock (std-backed).
#[derive(Debug, Default)]
pub struct Mutex<T>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> Mutex<T> {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Acquires the lock, blocking until available.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().expect("mutex poisoned")
    }

    /// Returns the inner value, consuming the lock.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("mutex poisoned")
    }
}

/// Non-poisoning reader-writer lock (std-backed).
#[derive(Debug, Default)]
pub struct RwLock<T>(std::sync::RwLock<T>);

impl<T> RwLock<T> {
    /// Creates a lock holding `value`.
    pub fn new(value: T) -> RwLock<T> {
        RwLock(std::sync::RwLock::new(value))
    }

    /// Acquires shared read access.
    pub fn read(&self) -> RwLockReadGuard<'_, T> {
        self.0.read().expect("rwlock poisoned")
    }

    /// Acquires exclusive write access.
    pub fn write(&self) -> RwLockWriteGuard<'_, T> {
        self.0.write().expect("rwlock poisoned")
    }

    /// Returns the inner value, consuming the lock.
    pub fn into_inner(self) -> T {
        self.0.into_inner().expect("rwlock poisoned")
    }
}
