//! Offline stand-in for the `criterion 0.5` API subset this workspace
//! uses.
//!
//! The build environment has no registry access, so the workspace pins
//! this vendored implementation. It keeps the bench-target surface
//! (`criterion_group!`, `criterion_main!`, [`Criterion`],
//! `benchmark_group`, `bench_function`, `Bencher::iter`) and measures
//! plain wall-clock medians, printing one line per benchmark. There is
//! no statistical analysis, HTML report, or baseline comparison.

#![deny(missing_docs)]

use std::time::Instant;

/// Entry point handed to each benchmark function.
#[derive(Debug, Default)]
pub struct Criterion {
    _private: (),
}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { _criterion: self, name: name.to_string() }
    }

    /// Runs a single ungrouped benchmark.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Criterion
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(name, f);
        self
    }
}

/// A named collection of benchmarks sharing a report prefix.
#[derive(Debug)]
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Runs one benchmark within the group.
    pub fn bench_function<F>(&mut self, name: &str, f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        run_bench(&format!("{}/{}", self.name, name), f);
        self
    }

    /// Ends the group (accepted for API compatibility).
    pub fn finish(self) {}
}

/// Timing harness passed to the benchmark closure.
#[derive(Debug, Default)]
pub struct Bencher {
    nanos_per_iter: f64,
}

impl Bencher {
    /// Measures `routine`, retaining the median of several timed
    /// batches.
    pub fn iter<O, F>(&mut self, mut routine: F)
    where
        F: FnMut() -> O,
    {
        // Warm-up, and an estimate of the per-iteration cost.
        let warmup = Instant::now();
        std::hint::black_box(routine());
        let estimate = warmup.elapsed().as_nanos().max(1);
        // Aim each batch at roughly 20ms, capped for very slow bodies.
        let per_batch = ((20_000_000 / estimate) as u64).clamp(1, 10_000);
        let mut samples = Vec::with_capacity(9);
        for _ in 0..9 {
            let start = Instant::now();
            for _ in 0..per_batch {
                std::hint::black_box(routine());
            }
            samples.push(start.elapsed().as_nanos() as f64 / per_batch as f64);
        }
        samples.sort_by(f64::total_cmp);
        self.nanos_per_iter = samples[samples.len() / 2];
    }
}

fn run_bench<F>(name: &str, mut f: F)
where
    F: FnMut(&mut Bencher),
{
    let mut bencher = Bencher::default();
    f(&mut bencher);
    println!("bench {name:<40} {:>14.1} ns/iter", bencher.nanos_per_iter);
}

/// Bundles benchmark functions into one callable group, mirroring
/// `criterion::criterion_group!`.
#[macro_export]
macro_rules! criterion_group {
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Generates `fn main` running the given groups, mirroring
/// `criterion::criterion_main!`.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}
