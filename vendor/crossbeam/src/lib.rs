//! Offline placeholder for `crossbeam`.
//!
//! Provides the two pieces the engine's compilation service uses:
//! scoped threads (forwarded to `std::thread::scope`) and MPMC
//! channels with the `crossbeam::channel` API shape, implemented on a
//! mutex-protected deque with a condition variable. The semantics the
//! service relies on — cloneable senders *and* receivers, FIFO
//! delivery, disconnection errors once every peer on the other side is
//! gone — match upstream; performance characteristics do not, which is
//! irrelevant here because channel traffic is one message per compiled
//! pipeline, not per tuple.

#![deny(missing_docs)]

/// Scoped-thread utilities, mirroring `crossbeam::thread` on top of
/// `std::thread::scope`.
pub mod thread {
    /// Runs `f` with a scope in which spawned threads may borrow from
    /// the enclosing stack frame. Unlike upstream crossbeam this
    /// returns the closure result directly (std scopes propagate
    /// panics), wrapped in `Ok` for signature compatibility.
    pub fn scope<'env, F, T>(f: F) -> Result<T, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T,
    {
        Ok(std::thread::scope(f))
    }
}

/// Multi-producer multi-consumer FIFO channels, mirroring
/// `crossbeam::channel`.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    /// Error returned by [`Sender::send`] when every receiver is gone;
    /// carries the rejected message back to the caller.
    #[derive(Debug, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "sending on a disconnected channel")
        }
    }

    /// Error returned by [`Receiver::recv`] when the channel is empty
    /// and every sender is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            write!(f, "receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Error returned by [`Receiver::try_recv`].
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// The channel is currently empty but senders remain.
        Empty,
        /// The channel is empty and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for TryRecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            match self {
                TryRecvError::Empty => write!(f, "channel empty"),
                TryRecvError::Disconnected => write!(f, "channel disconnected"),
            }
        }
    }

    impl std::error::Error for TryRecvError {}

    /// The sending half of a channel. Cloneable; the channel
    /// disconnects for receivers once all clones are dropped.
    pub struct Sender<T> {
        shared: Arc<Shared<T>>,
    }

    /// The receiving half of a channel. Cloneable (MPMC); the channel
    /// disconnects for senders once all clones are dropped.
    pub struct Receiver<T> {
        shared: Arc<Shared<T>>,
    }

    /// Creates an unbounded FIFO channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (
            Sender {
                shared: Arc::clone(&shared),
            },
            Receiver { shared },
        )
    }

    impl<T> Sender<T> {
        /// Enqueues `msg`, waking one blocked receiver.
        ///
        /// # Errors
        /// Returns the message when every receiver has been dropped.
        pub fn send(&self, msg: T) -> Result<(), SendError<T>> {
            if self.shared.receivers.load(Ordering::Acquire) == 0 {
                return Err(SendError(msg));
            }
            let mut q = self.shared.queue.lock().expect("channel mutex poisoned");
            q.push_back(msg);
            drop(q);
            self.shared.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.shared.senders.fetch_add(1, Ordering::AcqRel);
            Sender {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.shared.senders.fetch_sub(1, Ordering::AcqRel) == 1 {
                // Last sender: wake all receivers so they observe the
                // disconnect instead of sleeping forever.
                self.shared.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives.
        ///
        /// # Errors
        /// Returns [`RecvError`] when the channel is empty and every
        /// sender has been dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut q = self.shared.queue.lock().expect("channel mutex poisoned");
            loop {
                if let Some(msg) = q.pop_front() {
                    return Ok(msg);
                }
                if self.shared.senders.load(Ordering::Acquire) == 0 {
                    return Err(RecvError);
                }
                q = self
                    .shared
                    .ready
                    .wait(q)
                    .expect("channel mutex poisoned");
            }
        }

        /// Dequeues a message without blocking.
        ///
        /// # Errors
        /// [`TryRecvError::Empty`] when no message is queued,
        /// [`TryRecvError::Disconnected`] when additionally every
        /// sender has been dropped.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut q = self.shared.queue.lock().expect("channel mutex poisoned");
            if let Some(msg) = q.pop_front() {
                return Ok(msg);
            }
            if self.shared.senders.load(Ordering::Acquire) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.shared.receivers.fetch_add(1, Ordering::AcqRel);
            Receiver {
                shared: Arc::clone(&self.shared),
            }
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.shared.receivers.fetch_sub(1, Ordering::AcqRel);
        }
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fifo_order_and_disconnect() {
            let (tx, rx) = unbounded();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
        }

        #[test]
        fn try_recv_distinguishes_empty_from_disconnected() {
            let (tx, rx) = unbounded::<i32>();
            assert_eq!(rx.try_recv(), Err(TryRecvError::Empty));
            drop(tx);
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn mpmc_across_threads() {
            let (tx, rx) = unbounded();
            let handles: Vec<_> = (0..4)
                .map(|_| {
                    let rx = rx.clone();
                    std::thread::spawn(move || {
                        let mut got = 0u64;
                        while let Ok(v) = rx.recv() {
                            got += v;
                        }
                        got
                    })
                })
                .collect();
            drop(rx);
            for v in 1..=100u64 {
                tx.send(v).unwrap();
            }
            drop(tx);
            let total: u64 = handles.into_iter().map(|h| h.join().unwrap()).sum();
            assert_eq!(total, 5050);
        }

        #[test]
        fn send_to_no_receivers_errors() {
            let (tx, rx) = unbounded();
            drop(rx);
            assert_eq!(tx.send(7), Err(SendError(7)));
        }
    }
}
