//! Offline placeholder for `crossbeam`.
//!
//! Declared by the engine crate for the planned parallel pipeline
//! compilation (see ROADMAP.md); nothing uses it yet. The stub
//! forwards scoped threads to `std` so that the planned work has a
//! functional seam without registry access.

#![deny(missing_docs)]

/// Scoped-thread utilities, mirroring `crossbeam::thread` on top of
/// `std::thread::scope`.
pub mod thread {
    /// Runs `f` with a scope in which spawned threads may borrow from
    /// the enclosing stack frame. Unlike upstream crossbeam this
    /// returns the closure result directly (std scopes propagate
    /// panics), wrapped in `Ok` for signature compatibility.
    pub fn scope<'env, F, T>(f: F) -> Result<T, Box<dyn std::any::Any + Send + 'static>>
    where
        F: for<'scope> FnOnce(&'scope std::thread::Scope<'scope, 'env>) -> T,
    {
        Ok(std::thread::scope(f))
    }
}
