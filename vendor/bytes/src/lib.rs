//! Offline placeholder for `bytes`.
//!
//! Reserved in the workspace dependency table for planned zero-copy
//! result buffers; no crate references it yet. This stub satisfies
//! resolution without registry access.

#![deny(missing_docs)]
