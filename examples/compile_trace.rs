//! Compile-time tracing: the instrumentation behind the paper's
//! breakdowns. Prints the full phase tree for the LLVM-analog in
//! optimized mode and for the Cranelift-analog.
//!
//! Run with: `cargo run --release --example compile_trace`

use qc_engine::{backends, Engine};
use qc_target::Isa;
use qc_timing::TimeTrace;

fn main() {
    let db = qc_storage::gen_hlike(0.2);
    let engine = Engine::new(&db);
    let query = qc_workloads::hlike_suite().remove(4); // H05: long join chain
    let prepared = engine.prepare(&query.plan, &query.name).expect("prepare");

    for backend in [backends::lvm_opt(Isa::Tx64), backends::clift(Isa::Tx64)] {
        let trace = TimeTrace::new();
        let _ = engine
            .compile(&prepared, backend.as_ref(), &trace)
            .expect("compile");
        println!(
            "== {} phase breakdown for {} ==",
            backend.name(),
            query.name
        );
        print!("{}", trace.report().render());
        println!("(measurement events: {})\n", trace.event_count());
    }
}
