//! Compile-time tracing: the instrumentation behind the paper's
//! breakdowns. Prints the full phase tree for the LLVM-analog in
//! optimized mode and for the Cranelift-analog.
//!
//! Run with: `cargo run --release --example compile_trace`

use qc_engine::{backends, Session};
use qc_target::Isa;
use qc_timing::TimeTrace;
use std::sync::Arc;

fn main() {
    let db = qc_storage::gen_hlike(0.2);
    let session = Session::new(&db);
    let query = qc_workloads::hlike_suite().remove(4); // H05: long join chain
    let stmt = session.statement(&query.plan).expect("prepare");

    for backend in [backends::lvm_opt(Isa::Tx64), backends::clift(Isa::Tx64)] {
        let backend: Arc<dyn qc_backend::Backend> = Arc::from(backend);
        let trace = TimeTrace::new();
        let _ = session
            .run(stmt.clone())
            .backend(Arc::clone(&backend))
            .trace(&trace)
            .direct()
            .compile()
            .expect("compile");
        println!(
            "== {} phase breakdown for {} ==",
            backend.name(),
            query.name
        );
        print!("{}", trace.report().render());
        println!("(measurement events: {})\n", trace.event_count());
    }
}
