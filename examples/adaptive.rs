//! Adaptive execution (paper Sec. III-C): compile with the cheap tier
//! first; re-compile with the optimizing tier when the size/work heuristic
//! predicts a win.
//!
//! Run with: `cargo run --release --example adaptive`

use qc_engine::{backends, AdaptiveExecution, Session};

fn main() {
    let db = qc_storage::gen_hlike(1.0);
    let session = Session::new(&db);
    let cheap = backends::direct_emit();
    let optimized = backends::lvm_opt(qc_target::Isa::Tx64);

    for (label, expected_executions) in [("one-shot query", 1), ("hot recurring query", 500)] {
        let query = qc_workloads::hlike_suite().remove(0); // H01
        let stmt = session.statement(&query.plan).expect("prepare");
        let policy = AdaptiveExecution {
            expected_executions,
            ..Default::default()
        };
        let (result, outcome) = policy
            .run(
                session.engine(),
                stmt.query(),
                cheap.as_ref(),
                optimized.as_ref(),
            )
            .expect("adaptive run");
        println!(
            "{label}: {outcome:?} — total compile {:?}, {} rows, {} cycles",
            result.compile_time,
            result.rows.len(),
            result.exec_stats.cycles
        );
    }
}
