//! Quickstart: load a synthetic database, run one query with two
//! back-ends, and compare compile time vs. execution cost.
//!
//! Run with: `cargo run --release --example quickstart`

use qc_engine::{backends, Session};
use qc_plan::{col, lit_dec, AggFunc, PlanNode};
use std::sync::Arc;

fn main() {
    // A TPC-H-shaped database at a small scale factor.
    let db = qc_storage::gen_hlike(0.5);
    let session = Session::new(&db);

    // SELECT l_returnflag, sum(l_extendedprice * (1 - l_discount)), count(*)
    // FROM lineitem WHERE l_quantity < 30 GROUP BY l_returnflag
    let plan = PlanNode::scan(
        "lineitem",
        &[
            "l_returnflag",
            "l_extendedprice",
            "l_discount",
            "l_quantity",
        ],
    )
    .filter(col("l_quantity").lt(lit_dec(3_000, 2)))
    .map(vec![(
        "rev",
        col("l_extendedprice").mul(lit_dec(100, 2).sub(col("l_discount"))),
    )])
    .group_by(
        &["l_returnflag"],
        vec![
            ("revenue", AggFunc::Sum(col("rev"))),
            ("n", AggFunc::CountStar),
        ],
    )
    .sort(&[("l_returnflag", true)], None);

    for backend in [backends::interpreter(), backends::direct_emit()] {
        let backend: Arc<dyn qc_backend::Backend> = Arc::from(backend);
        let result = session
            .prepare(&plan)
            .expect("plan prepares")
            .backend(Arc::clone(&backend))
            .execute()
            .expect("query runs");
        println!("== {} ==", backend.name());
        println!(
            "compiled in {:?}, executed in {} model cycles",
            result.compile_time, result.exec_stats.cycles
        );
        for row in &result.rows {
            let cells: Vec<String> = row.iter().map(ToString::to_string).collect();
            println!("  {}", cells.join(" | "));
        }
    }
}
