//! Back-end tour: compile the same query with every back-end on both
//! target ISAs and print the paper's core tradeoff — compile time versus
//! generated-code quality (execution cycles) versus code size.
//!
//! Run with: `cargo run --release --example backend_tour`

use qc_engine::{backends, Engine};
use qc_target::Isa;

fn main() {
    let db = qc_storage::gen_hlike(0.5);
    let engine = Engine::new(&db);
    let query = qc_workloads::hlike_suite().remove(2); // H03: joins + group + top-k
    let prepared = engine.prepare(&query.plan, &query.name).expect("prepare");
    println!(
        "query {} → {} pipelines, {} IR instructions\n",
        query.name,
        prepared.plan.pipelines.len(),
        prepared.ir_size()
    );
    println!(
        "{:<14} {:<6} {:>12} {:>14} {:>10}",
        "back-end", "isa", "compile", "exec cycles", "code bytes"
    );
    for isa in [Isa::Tx64, Isa::Ta64] {
        for backend in backends::all_for(isa) {
            let mut compiled = engine
                .compile(
                    &prepared,
                    backend.as_ref(),
                    &qc_timing::TimeTrace::disabled(),
                )
                .expect("compile");
            let result = engine.execute(&prepared, &mut compiled).expect("execute");
            println!(
                "{:<14} {:<6} {:>12?} {:>14} {:>10}",
                backend.name(),
                isa.name(),
                compiled.compile_time,
                result.exec_stats.cycles,
                compiled.compile_stats.code_bytes
            );
        }
    }
}
