//! Back-end tour: compile the same query with every back-end on both
//! target ISAs and print the paper's core tradeoff — compile time versus
//! generated-code quality (execution cycles) versus code size.
//!
//! Run with: `cargo run --release --example backend_tour`

use qc_engine::{backends, Session};
use qc_target::Isa;
use std::sync::Arc;

fn main() {
    let db = qc_storage::gen_hlike(0.5);
    let session = Session::new(&db);
    let query = qc_workloads::hlike_suite().remove(2); // H03: joins + group + top-k
    let stmt = session.statement(&query.plan).expect("prepare");
    println!(
        "query {} → {} pipelines, {} IR instructions\n",
        query.name,
        stmt.query().plan.pipelines.len(),
        stmt.ir_size()
    );
    println!(
        "{:<14} {:<6} {:>12} {:>14} {:>10}",
        "back-end", "isa", "compile", "exec cycles", "code bytes"
    );
    for isa in [Isa::Tx64, Isa::Ta64] {
        for backend in backends::all_for(isa) {
            let backend: Arc<dyn qc_backend::Backend> = Arc::from(backend);
            let run = session
                .run(stmt.clone())
                .backend(Arc::clone(&backend))
                .direct();
            let mut compiled = run.compile().expect("compile");
            let result = run.execute_compiled(&mut compiled).expect("execute");
            println!(
                "{:<14} {:<6} {:>12?} {:>14} {:>10}",
                backend.name(),
                isa.name(),
                compiled.compile_time,
                result.exec_stats.cycles,
                compiled.compile_stats.code_bytes
            );
        }
    }
}
